//! XML serialization: turn (a subtree of) a pre|size|level container back
//! into XML text with a single sequential scan.
//!
//! Generic over [`NodeRead`], so results render directly from the paged
//! store (pages are read on demand) as well as from flat [`Document`]s —
//! no materialized read copy is ever built for serialization.
//!
//! [`Document`]: crate::doc::Document

use crate::node::NodeKind;
use crate::read::NodeRead;

/// Escape character data for element content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape character data for attribute values (double-quoted).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Serialize the subtree rooted at `pre` into `out`.
pub fn serialize_node<D: NodeRead>(doc: &D, pre: u32, out: &mut String) {
    match doc.kind(pre) {
        NodeKind::Text => out.push_str(&escape_text(doc.text_of(pre))),
        NodeKind::Comment => {
            out.push_str("<!--");
            out.push_str(doc.text_of(pre));
            out.push_str("-->");
        }
        NodeKind::ProcessingInstruction => {
            out.push_str("<?");
            out.push_str(doc.name_of(pre));
            let content = doc.text_of(pre);
            if !content.is_empty() {
                out.push(' ');
                out.push_str(content);
            }
            out.push_str("?>");
        }
        NodeKind::Document => {
            for child in doc.children(pre) {
                serialize_node(doc, child, out);
            }
        }
        NodeKind::Element => {
            let name = doc.name_of(pre);
            out.push('<');
            out.push_str(name);
            for (aname, value) in doc.attrs(pre) {
                out.push(' ');
                out.push_str(aname);
                out.push_str("=\"");
                out.push_str(&escape_attr(value));
                out.push('"');
            }
            if doc.size(pre) == 0 {
                out.push_str("/>");
                return;
            }
            out.push('>');
            for child in doc.children(pre) {
                serialize_node(doc, child, out);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

/// Serialize a whole container (all fragments, in order).
pub fn serialize_document<D: NodeRead>(doc: &D) -> String {
    let mut out = String::new();
    for root in doc.root_pres() {
        serialize_node(doc, root, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shred::{shred, ShredOptions};

    #[test]
    fn roundtrip_simple_document() {
        let xml = r#"<r a="v &amp; w"><x>hi</x><y/><!--c--></r>"#;
        let d = shred("t", xml, &ShredOptions::default()).unwrap();
        let s = serialize_document(&d);
        assert_eq!(s, r#"<r a="v &amp; w"><x>hi</x><y/><!--c--></r>"#);
        // shredding the serialization again is a fixpoint
        let d2 = shred("t2", &s, &ShredOptions::default()).unwrap();
        assert_eq!(serialize_document(&d2), s);
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_text("a<b&c"), "a&lt;b&amp;c");
        assert_eq!(escape_attr("say \"hi\""), "say &quot;hi&quot;");
    }

    #[test]
    fn serialize_subtree_only() {
        let xml = "<a><b><c/></b><d/></a>";
        let d = shred("t", xml, &ShredOptions::default()).unwrap();
        let mut out = String::new();
        serialize_node(&d, 1, &mut out);
        assert_eq!(out, "<b><c/></b>");
    }
}
