//! Relational export of a shredded document with dictionary-encoded name
//! columns.
//!
//! The paper's storage layer keeps the structural `pre|size|level` table in
//! dense columns and the node names in an interned qname container
//! (Figure 9).  This module exposes that layout to the relational kernel:
//! [`DocumentColumns::new`] turns a [`Document`] into engine [`Table`]s whose
//! tag and attribute-name columns are [`Column::Dict`] over **shared sorted
//! dictionaries** — the representation the radix join's code-to-code fast
//! path and the code-based sort/rank/agg paths of `mxq-engine` consume.
//!
//! Within one export the structural table and the attribute table share
//! their dictionary instances (`Arc`), so a tag-to-tag or name-to-name
//! equi-join between them never touches a string.

use std::sync::Arc;

use mxq_engine::{Column, Dictionary, Table};

use crate::doc::Document;
use crate::node::NodeKind;
use crate::shred::{shred, ShredError, ShredOptions};

/// The relational image of one document container, with dictionary-encoded
/// string columns.
#[derive(Debug, Clone)]
pub struct DocumentColumns {
    /// Sorted dictionary over the element names of the document (plus the
    /// empty string used for non-element rows).
    pub tags: Arc<Dictionary>,
    /// Sorted dictionary over the attribute names of the document.
    pub attr_names: Arc<Dictionary>,
    /// The structural table: `pre | size | level | kind | name`, one row per
    /// node in document order; `name` is a [`Column::Dict`] over [`Self::tags`]
    /// (non-elements carry the empty string).
    pub structural: Table,
    /// The attribute table: `owner | name | value`, one row per attribute in
    /// owner order; `name` is a [`Column::Dict`] over [`Self::attr_names`].
    pub attributes: Table,
}

/// Integer encoding of [`NodeKind`] used in the `kind` column.
pub fn kind_code(kind: NodeKind) -> i64 {
    match kind {
        NodeKind::Document => 0,
        NodeKind::Element => 1,
        NodeKind::Text => 2,
        NodeKind::Comment => 3,
        NodeKind::ProcessingInstruction => 4,
    }
}

impl DocumentColumns {
    /// Export a document into its relational, dictionary-encoded image.
    pub fn new(doc: &Document) -> DocumentColumns {
        let n = doc.len() as u32;
        let mut pre = Vec::with_capacity(doc.len());
        let mut size = Vec::with_capacity(doc.len());
        let mut level = Vec::with_capacity(doc.len());
        let mut kind = Vec::with_capacity(doc.len());
        let mut names: Vec<Arc<str>> = Vec::with_capacity(doc.len());
        for v in 0..n {
            pre.push(v as i64);
            size.push(doc.size(v) as i64);
            level.push(doc.level(v) as i64);
            kind.push(kind_code(doc.kind(v)));
            names.push(match doc.kind(v) {
                NodeKind::Element => Arc::from(doc.name_of(v)),
                _ => Arc::from(""),
            });
        }
        let (tag_codes, tags) = Dictionary::encode(names);

        let attrs = doc.all_attributes();
        let owner: Vec<i64> = attrs.iter().map(|a| a.owner as i64).collect();
        let values: Vec<Arc<str>> = attrs.iter().map(|a| a.value.clone()).collect();
        let (attr_codes, attr_names) = Dictionary::encode(attrs.iter().map(|a| a.name.clone()));

        let structural = Table::from_columns(vec![
            ("pre", Column::Int(pre)),
            ("size", Column::Int(size)),
            ("level", Column::Int(level)),
            ("kind", Column::Int(kind)),
            (
                "name",
                Column::Dict {
                    codes: tag_codes,
                    dict: tags.clone(),
                },
            ),
        ])
        .expect("structural columns have equal length");
        let attributes = Table::from_columns(vec![
            ("owner", Column::Int(owner)),
            (
                "name",
                Column::Dict {
                    codes: attr_codes,
                    dict: attr_names.clone(),
                },
            ),
            ("value", Column::Str(values)),
        ])
        .expect("attribute columns have equal length");

        DocumentColumns {
            tags,
            attr_names,
            structural,
            attributes,
        }
    }

    /// A `Dict` column (over [`Self::tags`]) holding the names of an
    /// arbitrary selection of nodes — shares the export's dictionary, so
    /// joining it against the structural `name` column is code-to-code.
    pub fn names_of(&self, doc: &Document, pres: &[u32]) -> Column {
        let codes = pres
            .iter()
            .map(|&p| {
                let name = match doc.kind(p) {
                    NodeKind::Element => doc.name_of(p),
                    _ => "",
                };
                self.tags
                    .code_of(name)
                    .expect("export dictionary covers every element name")
            })
            .collect();
        Column::Dict {
            codes,
            dict: self.tags.clone(),
        }
    }
}

/// Shred an XML text and export it in one step: the document plus its
/// dictionary-encoded relational image.
pub fn shred_to_columns(
    name: &str,
    xml: &str,
    opts: &ShredOptions,
) -> Result<(Document, DocumentColumns), ShredError> {
    let doc = shred(name, xml, opts)?;
    let cols = DocumentColumns::new(&doc);
    Ok((doc, cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxq_engine::join::radix_hash_join;

    const XML: &str = r#"<site><item id="1"><name>a</name></item><item id="2"/></site>"#;

    #[test]
    fn export_shapes_and_dictionaries() {
        let (doc, cols) = shred_to_columns("t", XML, &ShredOptions::default()).unwrap();
        assert_eq!(cols.structural.nrows(), doc.len());
        assert_eq!(cols.attributes.nrows(), doc.attr_count());
        // tag dictionary: "", item, name, site — sorted
        let tags: Vec<&str> = cols.tags.iter().map(|s| s.as_ref()).collect();
        assert_eq!(tags, ["", "item", "name", "site"]);
        assert!(matches!(
            cols.structural.column("name").unwrap(),
            Column::Dict { .. }
        ));
        assert!(matches!(
            cols.attributes.column("name").unwrap(),
            Column::Dict { .. }
        ));
        // structural row 0 is the root element
        assert_eq!(
            cols.structural
                .column("name")
                .unwrap()
                .item(0)
                .string_value(),
            "site"
        );
        assert_eq!(
            cols.structural.column("kind").unwrap().as_int().unwrap()[0],
            1
        );
    }

    #[test]
    fn shared_dictionary_enables_code_joins() {
        let (doc, cols) = shred_to_columns("t", XML, &ShredOptions::default()).unwrap();
        let probe = cols.names_of(&doc, doc.elements_named("item"));
        let (probe_codes, probe_dict) = probe.dict_parts().unwrap();
        let (_, struct_dict) = cols
            .structural
            .column("name")
            .unwrap()
            .dict_parts()
            .unwrap();
        assert!(Arc::ptr_eq(probe_dict, struct_dict), "dictionary is shared");
        assert_eq!(probe_codes.len(), 2);
        // joining the probe against the structural name column finds exactly
        // the two <item> rows
        let (l, r) = radix_hash_join(&probe, cols.structural.column("name").unwrap());
        assert_eq!(l.len(), 4, "2 probes × 2 matching rows");
        assert!(r.iter().all(|&row| cols
            .structural
            .column("name")
            .unwrap()
            .item(row)
            .string_value()
            == "item"));
    }
}
