//! Relational export of a document with dictionary-encoded name columns —
//! maintained **incrementally** by the paged update path, stored in
//! **fixed-size chunks** so maintenance never memmoves the whole image.
//!
//! The paper's storage layer keeps the structural `pre|size|level` table in
//! dense columns and the node names in an interned qname container
//! (Figure 9).  [`DocumentColumns`] is that layout, cut into chunks of a
//! power-of-two row target (MonetDB/X100-style): each chunk holds its
//! own `size`/`level`/`kind`/name-code vectors plus the `owner|name|value`
//! attribute rows of *its* nodes (owners stored chunk-locally), with the
//! tag and attribute-name columns encoded against **shared sorted
//! dictionaries**.
//!
//! Since PR 5 this image is the *canonical structural read path* of the
//! paged store: [`crate::update::PagedDocument`] patches it in lockstep
//! with every applied update primitive (row splices, ancestor `size`
//! deltas, in-place renames and attribute patches), merging new names into
//! the dictionaries (with a code remap) only when an update introduces a
//! string the dictionary has never seen.  Chunking is what makes the patch
//! cheap: a row splice lands in exactly one chunk, shifts only that
//! chunk's rows and chunk-local attribute owners, and then fixes up the
//! O(#chunks) start index — O(chunk), not O(document).  An oversized
//! chunk splits back into row-target pieces, so chunks stay bounded and
//! double as the work unit for batch-at-a-time and parallel kernels.
//!
//! Every chunk also carries summaries — min/max level, a node-kind mask
//! and a name-code bucket bitmask — maintained on each patch, so backward
//! parent scans ([`DocumentColumns::anchor_before`]) and kind/name probes
//! skip whole chunks that cannot contain a match.
//!
//! The engine [`Table`]s exposed to the relational kernel are assembled
//! lazily from the chunks and cached until the next patch.  Within one
//! export the structural and the attribute table share their dictionary
//! instances (`Arc`), so tag-to-tag and name-to-name equi-joins between
//! them never touch a string.

use std::sync::{Arc, OnceLock};

use mxq_engine::{Column, Dictionary, Table};

use crate::doc::Document;
use crate::node::NodeKind;
use crate::read::{AttrsIter, NodeRead};
use crate::shred::{shred, ShredError, ShredOptions};
use crate::update::Tuple;

/// Default chunk row target: power-of-two, sized so a chunk's columns fit
/// comfortably in L1/L2 while keeping the start index tiny.
pub const DEFAULT_CHUNK_ROWS: usize = 1024;

/// Integer encoding of [`NodeKind`] used in the `kind` column.
pub fn kind_code(kind: NodeKind) -> i64 {
    match kind {
        NodeKind::Document => 0,
        NodeKind::Element => 1,
        NodeKind::Text => 2,
        NodeKind::Comment => 3,
        NodeKind::ProcessingInstruction => 4,
    }
}

/// Inverse of [`kind_code`].
pub fn code_kind(code: i64) -> NodeKind {
    match code {
        0 => NodeKind::Document,
        1 => NodeKind::Element,
        2 => NodeKind::Text,
        3 => NodeKind::Comment,
        4 => NodeKind::ProcessingInstruction,
        _ => panic!("invalid node-kind code {code}"),
    }
}

/// One fixed-size piece of the column image: a run of consecutive node
/// rows plus the attribute rows they own (owners are chunk-local offsets,
/// so a splice renumbers inside the chunk only).
#[derive(Debug, Clone, Default)]
struct Chunk {
    size: Vec<i64>,
    level: Vec<i64>,
    kind: Vec<i64>,
    name_code: Vec<u32>,
    /// Attribute rows of this chunk's nodes, owner-ordered; the owner is
    /// the node's offset *within this chunk*.
    attr_owner: Vec<u32>,
    attr_name_code: Vec<u32>,
    attr_value_code: Vec<u32>,
    /// Summaries, rebuilt on every structural patch of the chunk.
    min_level: i64,
    max_level: i64,
    kind_mask: u8,
    /// Bit `code % 64` set for every name code in the chunk (conservative
    /// — a set bit means "may contain").
    name_buckets: u64,
}

impl Chunk {
    fn len(&self) -> usize {
        self.size.len()
    }

    fn rebuild_summary(&mut self) {
        self.min_level = self.level.iter().copied().min().unwrap_or(i64::MAX);
        self.max_level = self.level.iter().copied().max().unwrap_or(i64::MIN);
        self.kind_mask = self.kind.iter().fold(0u8, |m, &k| m | (1u8 << k));
        self.name_buckets = self
            .name_code
            .iter()
            .fold(0u64, |m, &c| m | (1u64 << (c % 64)));
    }

    /// Chunk-local attribute row range of the node at local offset `l`.
    fn attr_range(&self, l: usize) -> std::ops::Range<usize> {
        let start = self.attr_owner.partition_point(|&o| (o as usize) < l);
        let end = self.attr_owner.partition_point(|&o| (o as usize) <= l);
        start..end
    }
}

/// The chunked relational image of one document container, with
/// dictionary-encoded string columns (see the module docs).
#[derive(Debug, Clone)]
pub struct DocumentColumns {
    /// Sorted dictionary over the element names (plus the empty string used
    /// for non-element rows).  Grows monotonically under incremental
    /// maintenance: names deleted from the document may linger as unused
    /// entries — harmless, since code order still equals string order.
    tags: Arc<Dictionary>,
    /// Sorted dictionary over the attribute names.
    attr_names: Arc<Dictionary>,
    /// Sorted dictionary over the attribute *values* — mixed content (ids,
    /// keywords, numeric strings side by side), so joins over it go through
    /// the per-code numeric keys of [`Dictionary::numeric_key_of`].
    attr_values: Arc<Dictionary>,
    chunks: Vec<Chunk>,
    /// `starts[i]` = pre of the first row of chunk `i` (prefix sums; the
    /// per-chunk min/max pre follow as `starts[i]..starts[i]+len`).
    starts: Vec<usize>,
    /// Power-of-two row target per chunk; a chunk splits once it exceeds
    /// twice this.
    chunk_rows: usize,
    /// True while every chunk except the last holds exactly `chunk_rows`
    /// rows (any freshly built image); lets [`DocumentColumns::locate`]
    /// compute the chunk index with a shift instead of a binary search.
    uniform: bool,
    len: usize,
    attr_count: usize,
    /// Lazily assembled engine tables over the image, cached separately so
    /// a consumer of only one table never pays for assembling the other.
    structural_table: OnceLock<Table>,
    attribute_table: OnceLock<Table>,
}

impl Default for DocumentColumns {
    fn default() -> DocumentColumns {
        DocumentColumns {
            tags: Dictionary::new(Vec::<Arc<str>>::new()),
            attr_names: Dictionary::new(Vec::<Arc<str>>::new()),
            attr_values: Dictionary::new(Vec::<Arc<str>>::new()),
            chunks: Vec::new(),
            starts: Vec::new(),
            chunk_rows: DEFAULT_CHUNK_ROWS,
            uniform: true,
            len: 0,
            attr_count: 0,
            structural_table: OnceLock::new(),
            attribute_table: OnceLock::new(),
        }
    }
}

impl DocumentColumns {
    /// Export a container into its relational, dictionary-encoded chunked
    /// image at the default chunk size.
    pub fn new<D: NodeRead>(doc: &D) -> DocumentColumns {
        Self::with_chunk_rows(doc, DEFAULT_CHUNK_ROWS)
    }

    /// Export with an explicit chunk row target (must be a power of two).
    pub fn with_chunk_rows<D: NodeRead>(doc: &D, chunk_rows: usize) -> DocumentColumns {
        assert!(
            chunk_rows.is_power_of_two(),
            "chunk_rows must be a power of two, got {chunk_rows}"
        );
        let n = doc.len() as u32;
        let mut names: Vec<Arc<str>> = Vec::with_capacity(doc.len());
        let mut attr_namev: Vec<Arc<str>> = Vec::new();
        let mut attr_value: Vec<Arc<str>> = Vec::new();
        let mut attr_per_node: Vec<u32> = Vec::with_capacity(doc.len());
        for v in 0..n {
            names.push(match doc.kind(v) {
                NodeKind::Element => Arc::from(doc.name_of(v)),
                _ => Arc::from(""),
            });
            let mut count = 0u32;
            for (aname, avalue) in doc.attrs(v) {
                attr_namev.push(aname.clone());
                attr_value.push(avalue.clone());
                count += 1;
            }
            attr_per_node.push(count);
        }
        let (name_code, tags) = Dictionary::encode(names);
        let (attr_name_code, attr_names) = Dictionary::encode(attr_namev);
        let (attr_value_code, attr_values) = Dictionary::encode(attr_value);

        let mut cols = DocumentColumns {
            tags,
            attr_names,
            attr_values,
            chunk_rows,
            ..DocumentColumns::default()
        };
        let mut attr_at = 0usize;
        let mut start = 0usize;
        while start < doc.len() {
            let end = (start + chunk_rows).min(doc.len());
            let mut chunk = Chunk {
                size: (start..end).map(|v| doc.size(v as u32) as i64).collect(),
                level: (start..end).map(|v| doc.level(v as u32) as i64).collect(),
                kind: (start..end)
                    .map(|v| kind_code(doc.kind(v as u32)))
                    .collect(),
                name_code: name_code[start..end].to_vec(),
                ..Chunk::default()
            };
            for (local, v) in (start..end).enumerate() {
                for _ in 0..attr_per_node[v] {
                    chunk.attr_owner.push(local as u32);
                    chunk.attr_name_code.push(attr_name_code[attr_at]);
                    chunk.attr_value_code.push(attr_value_code[attr_at]);
                    attr_at += 1;
                }
            }
            chunk.rebuild_summary();
            cols.chunks.push(chunk);
            start = end;
        }
        cols.rebuild_starts();
        cols
    }

    /// Rebuild the same content at a different chunk row target (must be a
    /// power of two) — dictionaries and codes are reused as-is.
    pub fn rechunked(&self, chunk_rows: usize) -> DocumentColumns {
        assert!(
            chunk_rows.is_power_of_two(),
            "chunk_rows must be a power of two, got {chunk_rows}"
        );
        let mut merged = Chunk::default();
        for (ci, c) in self.chunks.iter().enumerate() {
            let base = self.starts[ci] as u32;
            merged.size.extend_from_slice(&c.size);
            merged.level.extend_from_slice(&c.level);
            merged.kind.extend_from_slice(&c.kind);
            merged.name_code.extend_from_slice(&c.name_code);
            merged.attr_owner.extend(c.attr_owner.iter().map(|&o| {
                // re-anchor chunk-local owners to the merged chunk
                base + o
            }));
            merged.attr_name_code.extend_from_slice(&c.attr_name_code);
            merged.attr_value_code.extend_from_slice(&c.attr_value_code);
        }
        let mut out = DocumentColumns {
            tags: self.tags.clone(),
            attr_names: self.attr_names.clone(),
            attr_values: self.attr_values.clone(),
            chunk_rows,
            ..DocumentColumns::default()
        };
        if merged.len() > 0 {
            merged.rebuild_summary();
            out.chunks.push(merged);
            out.rebuild_starts();
            if out.chunks[0].len() > chunk_rows {
                out.split_chunk(0);
                out.rebuild_starts();
            }
        }
        out
    }

    /// Number of node rows in the image.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the image holds no node rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of attribute rows.
    pub fn attr_count(&self) -> usize {
        self.attr_count
    }

    /// The element-name dictionary.
    pub fn tags(&self) -> &Arc<Dictionary> {
        &self.tags
    }

    /// The attribute-name dictionary.
    pub fn attr_names(&self) -> &Arc<Dictionary> {
        &self.attr_names
    }

    /// The attribute-value dictionary.
    pub fn attr_values(&self) -> &Arc<Dictionary> {
        &self.attr_values
    }

    // -- chunk geometry and summaries -------------------------------------

    /// The configured power-of-two chunk row target.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Number of chunks in the image.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// `(first pre, row count)` of chunk `i`.
    pub fn chunk_span(&self, i: usize) -> (u32, usize) {
        (self.starts[i] as u32, self.chunks[i].len())
    }

    /// `(min, max)` level over the rows of chunk `i`.
    pub fn chunk_levels(&self, i: usize) -> (u16, u16) {
        (
            self.chunks[i].min_level as u16,
            self.chunks[i].max_level as u16,
        )
    }

    /// True when chunk `i` may contain a node of `kind` (exact).
    pub fn chunk_has_kind(&self, i: usize, kind: NodeKind) -> bool {
        self.chunks[i].kind_mask & (1u8 << kind_code(kind)) != 0
    }

    /// True when chunk `i` may contain name code `code` (conservative:
    /// a 64-bucket bitmask over `code % 64`).
    pub fn chunk_may_contain_name_code(&self, i: usize, code: u32) -> bool {
        self.chunks[i].name_buckets & (1u64 << (code % 64)) != 0
    }

    /// Chunk index and chunk-local offset of row `pre`.
    #[inline]
    fn locate(&self, pre: u32) -> (usize, usize) {
        let pre = pre as usize;
        debug_assert!(pre < self.len, "pre {pre} out of bounds {}", self.len);
        // uniform geometry (every chunk but the last holds exactly
        // `chunk_rows` rows — true for any freshly built image): the chunk
        // index is a shift, no binary search on the hot structural path
        let ci = if self.uniform {
            (pre >> self.chunk_rows.trailing_zeros()).min(self.chunks.len() - 1)
        } else {
            self.starts.partition_point(|&s| s <= pre) - 1
        };
        (ci, pre - self.starts[ci])
    }

    fn rebuild_starts(&mut self) {
        self.starts.clear();
        let mut rows = 0usize;
        let mut attrs = 0usize;
        for c in &self.chunks {
            self.starts.push(rows);
            rows += c.len();
            attrs += c.attr_owner.len();
        }
        self.len = rows;
        self.attr_count = attrs;
        self.uniform = self
            .chunks
            .split_last()
            .is_none_or(|(_, init)| init.iter().all(|c| c.len() == self.chunk_rows));
    }

    /// Split chunk `ci` back into row-target pieces (callers rebuild the
    /// start index afterwards).
    fn split_chunk(&mut self, ci: usize) {
        let chunk = self.chunks.remove(ci);
        let n = chunk.len();
        let mut pieces = Vec::with_capacity(n.div_ceil(self.chunk_rows));
        let mut a = 0usize;
        while a < n {
            let b = (a + self.chunk_rows).min(n);
            let aa = chunk.attr_owner.partition_point(|&o| (o as usize) < a);
            let ab = chunk.attr_owner.partition_point(|&o| (o as usize) < b);
            let mut piece = Chunk {
                size: chunk.size[a..b].to_vec(),
                level: chunk.level[a..b].to_vec(),
                kind: chunk.kind[a..b].to_vec(),
                name_code: chunk.name_code[a..b].to_vec(),
                attr_owner: chunk.attr_owner[aa..ab]
                    .iter()
                    .map(|&o| o - a as u32)
                    .collect(),
                attr_name_code: chunk.attr_name_code[aa..ab].to_vec(),
                attr_value_code: chunk.attr_value_code[aa..ab].to_vec(),
                ..Chunk::default()
            };
            piece.rebuild_summary();
            pieces.push(piece);
            a = b;
        }
        self.chunks.splice(ci..ci, pieces);
    }

    // -- dense structural read path ---------------------------------------

    /// Subtree size at `pre`.
    #[inline]
    pub fn node_size(&self, pre: u32) -> u32 {
        let (ci, l) = self.locate(pre);
        self.chunks[ci].size[l] as u32
    }

    /// Level (depth) at `pre`.
    #[inline]
    pub fn node_level(&self, pre: u32) -> u16 {
        let (ci, l) = self.locate(pre);
        self.chunks[ci].level[l] as u16
    }

    /// Node kind at `pre`.
    #[inline]
    pub fn node_kind(&self, pre: u32) -> NodeKind {
        let (ci, l) = self.locate(pre);
        code_kind(self.chunks[ci].kind[l])
    }

    /// Name code at `pre` (a [`Self::tags`] code; non-elements carry the
    /// code of the empty string).
    #[inline]
    pub fn node_name_code(&self, pre: u32) -> u32 {
        let (ci, l) = self.locate(pre);
        self.chunks[ci].name_code[l]
    }

    /// Element name / empty string at `pre`, decoded.
    #[inline]
    pub fn node_name(&self, pre: u32) -> &str {
        self.tags.str_of(self.node_name_code(pre))
    }

    /// Closest node before position `pos` whose level is strictly below
    /// `level` — the backward parent/anchor scan.  Whole chunks whose
    /// minimum level is not below `level` are skipped via the summaries.
    pub fn anchor_before(&self, pos: u32, level: u16) -> Option<u32> {
        if level == 0 || pos == 0 || self.len == 0 {
            return None;
        }
        let lvl = level as i64;
        let (mut ci, l) = self.locate(pos.min(self.len as u32) - 1);
        let mut hi = l + 1; // exclusive local upper bound
        loop {
            let chunk = &self.chunks[ci];
            if chunk.min_level < lvl {
                for v in (0..hi).rev() {
                    if chunk.level[v] < lvl {
                        return Some((self.starts[ci] + v) as u32);
                    }
                }
            }
            if ci == 0 {
                return None;
            }
            ci -= 1;
            hi = self.chunks[ci].len();
        }
    }

    /// Attribute rows of element `pre` as a cursor over the columns.
    pub fn attrs_of(&self, pre: u32) -> AttrsIter<'_> {
        let (ci, l) = self.locate(pre);
        let chunk = &self.chunks[ci];
        let r = chunk.attr_range(l);
        AttrsIter::Dict {
            names: &self.attr_names,
            codes: &chunk.attr_name_code[r.clone()],
            values: &self.attr_values,
            value_codes: &chunk.attr_value_code[r],
            idx: 0,
        }
    }

    /// Value of attribute `name` on element `pre`.
    pub fn attr_value_of(&self, pre: u32, name: &str) -> Option<&str> {
        Some(self.attr_values.str_of(self.attr_value_code_of(pre, name)?))
    }

    /// Value codes (into [`Self::attr_values`]) of all attribute rows of
    /// element `pre`, in attribute order.
    pub fn attr_value_codes_of(&self, pre: u32) -> &[u32] {
        let (ci, l) = self.locate(pre);
        let chunk = &self.chunks[ci];
        &chunk.attr_value_code[chunk.attr_range(l)]
    }

    /// Value *code* (into [`Self::attr_values`]) of attribute `name` on
    /// element `pre` — the dictionary-encoded form of [`Self::attr_value_of`].
    pub fn attr_value_code_of(&self, pre: u32, name: &str) -> Option<u32> {
        let code = self.attr_names.code_of(name)?;
        let (ci, l) = self.locate(pre);
        let chunk = &self.chunks[ci];
        for i in chunk.attr_range(l) {
            if chunk.attr_name_code[i] == code {
                return Some(chunk.attr_value_code[i]);
            }
        }
        None
    }

    /// All attribute rows as `(global owner, name code, value code)` in
    /// owner order.
    fn attr_rows(&self) -> impl Iterator<Item = (i64, u32, u32)> + '_ {
        self.chunks.iter().enumerate().flat_map(|(ci, c)| {
            let base = self.starts[ci] as i64;
            c.attr_owner
                .iter()
                .zip(&c.attr_name_code)
                .zip(&c.attr_value_code)
                .map(move |((&o, &n), &v)| (base + o as i64, n, v))
        })
    }

    // -- engine tables (lazy) ---------------------------------------------

    /// The structural table `pre | size | level | kind | name`, one row per
    /// node in document order; `name` is a [`Column::Dict`] over
    /// [`Self::tags`].  Assembled lazily from the chunks and cached until
    /// the next patch.
    pub fn structural(&self) -> &Table {
        self.structural_table.get_or_init(|| {
            let pre: Vec<i64> = (0..self.len as i64).collect();
            let mut size = Vec::with_capacity(self.len);
            let mut level = Vec::with_capacity(self.len);
            let mut kind = Vec::with_capacity(self.len);
            let mut name_code = Vec::with_capacity(self.len);
            for c in &self.chunks {
                size.extend_from_slice(&c.size);
                level.extend_from_slice(&c.level);
                kind.extend_from_slice(&c.kind);
                name_code.extend_from_slice(&c.name_code);
            }
            Table::from_columns(vec![
                ("pre", Column::Int(pre)),
                ("size", Column::Int(size)),
                ("level", Column::Int(level)),
                ("kind", Column::Int(kind)),
                (
                    "name",
                    Column::Dict {
                        codes: name_code,
                        dict: self.tags.clone(),
                    },
                ),
            ])
            .expect("structural columns have equal length")
        })
    }

    /// The attribute table `owner | name | value`, one row per attribute in
    /// owner order; `name` is a [`Column::Dict`] over [`Self::attr_names`],
    /// `value` a [`Column::Dict`] over [`Self::attr_values`] — so value
    /// equi-joins between attribute columns of the same document (XMark
    /// `@id = @person` and friends) run code-to-code.
    pub fn attributes(&self) -> &Table {
        self.attribute_table.get_or_init(|| {
            let mut owner = Vec::with_capacity(self.attr_count);
            let mut name_code = Vec::with_capacity(self.attr_count);
            let mut value_code = Vec::with_capacity(self.attr_count);
            for (o, n, v) in self.attr_rows() {
                owner.push(o);
                name_code.push(n);
                value_code.push(v);
            }
            Table::from_columns(vec![
                ("owner", Column::Int(owner)),
                (
                    "name",
                    Column::Dict {
                        codes: name_code,
                        dict: self.attr_names.clone(),
                    },
                ),
                (
                    "value",
                    Column::Dict {
                        codes: value_code,
                        dict: self.attr_values.clone(),
                    },
                ),
            ])
            .expect("attribute columns have equal length")
        })
    }

    /// A `Dict` column (over [`Self::tags`]) holding the names of an
    /// arbitrary selection of nodes — shares the export's dictionary, so
    /// joining it against the structural `name` column is code-to-code.
    pub fn names_of<D: NodeRead>(&self, doc: &D, pres: &[u32]) -> Column {
        let codes = pres
            .iter()
            .map(|&p| {
                let name = match doc.kind(p) {
                    NodeKind::Element => doc.name_of(p),
                    _ => "",
                };
                self.tags
                    .code_of(name)
                    .expect("export dictionary covers every element name")
            })
            .collect();
        Column::Dict {
            codes,
            dict: self.tags.clone(),
        }
    }

    // -- incremental maintenance (the paged update path) ------------------

    fn invalidate_tables(&mut self) {
        self.structural_table = OnceLock::new();
        self.attribute_table = OnceLock::new();
    }

    fn invalidate_structural(&mut self) {
        self.structural_table = OnceLock::new();
    }

    fn invalidate_attributes(&mut self) {
        self.attribute_table = OnceLock::new();
    }

    /// Grow `self.tags` to cover every name in `names`, remapping the
    /// existing codes when the sorted dictionary gains entries.  Returns
    /// true when a merge (and remap) happened — the rare "new name" path,
    /// the only remaining O(document) write cost.
    fn ensure_tags<'a>(&mut self, names: impl Iterator<Item = &'a Arc<str>>) -> bool {
        let missing: Vec<Arc<str>> = names
            .filter(|n| self.tags.code_of(n).is_none())
            .cloned()
            .collect();
        if missing.is_empty() {
            return false;
        }
        let fresh = Dictionary::new(missing);
        let (merged, remap_old, _) = Dictionary::merge(&self.tags, &fresh);
        for chunk in &mut self.chunks {
            for c in &mut chunk.name_code {
                *c = remap_old[*c as usize];
            }
            // codes moved, so the bucket bitmask must follow
            chunk.name_buckets = chunk
                .name_code
                .iter()
                .fold(0u64, |m, &c| m | (1u64 << (c % 64)));
        }
        self.tags = merged;
        true
    }

    fn ensure_attr_names<'a>(&mut self, names: impl Iterator<Item = &'a Arc<str>>) {
        let missing: Vec<Arc<str>> = names
            .filter(|n| self.attr_names.code_of(n).is_none())
            .cloned()
            .collect();
        if missing.is_empty() {
            return;
        }
        let fresh = Dictionary::new(missing);
        let (merged, remap_old, _) = Dictionary::merge(&self.attr_names, &fresh);
        for chunk in &mut self.chunks {
            for c in &mut chunk.attr_name_code {
                *c = remap_old[*c as usize];
            }
        }
        self.attr_names = merged;
    }

    fn ensure_attr_values<'a>(&mut self, values: impl Iterator<Item = &'a Arc<str>>) {
        let missing: Vec<Arc<str>> = values
            .filter(|v| self.attr_values.code_of(v).is_none())
            .cloned()
            .collect();
        if missing.is_empty() {
            return;
        }
        let fresh = Dictionary::new(missing);
        let (merged, remap_old, _) = Dictionary::merge(&self.attr_values, &fresh);
        for chunk in &mut self.chunks {
            for c in &mut chunk.attr_value_code {
                *c = remap_old[*c as usize];
            }
        }
        self.attr_values = merged;
    }

    fn tag_of(tuple: &Tuple) -> Arc<str> {
        match tuple.kind {
            NodeKind::Element => tuple.name.clone(),
            _ => Arc::from(""),
        }
    }

    /// Splice `rows` into the node image at position `at`.  The splice
    /// lands in exactly one chunk: that chunk's rows shift, its chunk-local
    /// attribute owners renumber, and the start index is patched —
    /// O(chunk size plus rows inserted plus #chunks), never a whole-image
    /// memmove.  Plus a dictionary merge when a row carries a never-seen
    /// name.
    pub(crate) fn splice_nodes(&mut self, at: usize, rows: &[Tuple]) {
        if rows.is_empty() {
            return;
        }
        self.invalidate_tables();
        // non-element rows encode as the empty string
        let tag_names: Vec<Arc<str>> = rows.iter().map(Self::tag_of).collect();
        self.ensure_tags(tag_names.iter());
        let codes: Vec<u32> = tag_names
            .iter()
            .map(|n| {
                self.tags
                    .code_of(n)
                    .expect("ensure_tags covered the splice")
            })
            .collect();
        // encode the spliced rows' attributes (row offset, name, value)
        let mut new_name: Vec<Arc<str>> = Vec::new();
        let mut new_value: Vec<Arc<str>> = Vec::new();
        let mut attr_of_row: Vec<usize> = Vec::new();
        for (i, t) in rows.iter().enumerate() {
            for (n, v) in &t.attrs {
                attr_of_row.push(i);
                new_name.push(n.clone());
                new_value.push(v.clone());
            }
        }
        let (new_codes, new_value_codes) = if attr_of_row.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            self.ensure_attr_names(new_name.iter());
            self.ensure_attr_values(new_value.iter());
            (
                new_name
                    .iter()
                    .map(|n| self.attr_names.code_of(n).expect("covered"))
                    .collect::<Vec<u32>>(),
                new_value
                    .iter()
                    .map(|v| self.attr_values.code_of(v).expect("covered"))
                    .collect::<Vec<u32>>(),
            )
        };

        if self.chunks.is_empty() {
            self.chunks.push(Chunk::default());
            self.starts.push(0);
        }
        let ci = if at == self.len {
            self.chunks.len() - 1
        } else {
            self.locate(at as u32).0
        };
        let l = at - self.starts[ci];
        let k = rows.len();
        let chunk = &mut self.chunks[ci];
        chunk.size.splice(l..l, rows.iter().map(|t| t.size as i64));
        chunk
            .level
            .splice(l..l, rows.iter().map(|t| t.level as i64));
        chunk
            .kind
            .splice(l..l, rows.iter().map(|t| kind_code(t.kind)));
        chunk.name_code.splice(l..l, codes);
        // chunk-local owner shift: only this chunk's attribute rows move
        let a = chunk.attr_owner.partition_point(|&o| (o as usize) < l);
        for o in &mut chunk.attr_owner[a..] {
            *o += k as u32;
        }
        if !attr_of_row.is_empty() {
            chunk
                .attr_owner
                .splice(a..a, attr_of_row.iter().map(|&i| (l + i) as u32));
            chunk.attr_name_code.splice(a..a, new_codes);
            chunk.attr_value_code.splice(a..a, new_value_codes);
        }
        chunk.rebuild_summary();
        if chunk.len() > 2 * self.chunk_rows {
            self.split_chunk(ci);
        }
        self.rebuild_starts();
    }

    /// Remove `count` node rows starting at `at`, dropping their attribute
    /// rows and renumbering the chunk-local owners of the touched chunks
    /// only.  Chunks emptied by the removal are dropped.
    pub(crate) fn remove_nodes(&mut self, at: usize, count: usize) {
        if count == 0 {
            return;
        }
        self.invalidate_tables();
        let (mut ci, mut l) = self.locate(at as u32);
        let mut remaining = count;
        while remaining > 0 {
            let chunk = &mut self.chunks[ci];
            let c = remaining.min(chunk.len() - l);
            chunk.size.drain(l..l + c);
            chunk.level.drain(l..l + c);
            chunk.kind.drain(l..l + c);
            chunk.name_code.drain(l..l + c);
            let a = chunk.attr_owner.partition_point(|&o| (o as usize) < l);
            let b = chunk.attr_owner.partition_point(|&o| (o as usize) < l + c);
            chunk.attr_owner.drain(a..b);
            chunk.attr_name_code.drain(a..b);
            chunk.attr_value_code.drain(a..b);
            for o in &mut chunk.attr_owner[a..] {
                *o -= c as u32;
            }
            remaining -= c;
            if chunk.len() == 0 {
                self.chunks.remove(ci);
            } else {
                chunk.rebuild_summary();
                ci += 1;
            }
            l = 0;
        }
        self.rebuild_starts();
    }

    /// Ancestor `size` maintenance: add `delta` to the size of `pre`.
    pub(crate) fn add_size(&mut self, pre: u32, delta: i64) {
        self.invalidate_structural();
        let (ci, l) = self.locate(pre);
        self.chunks[ci].size[l] += delta;
    }

    /// In-place rename of the node at `pre` (elements only affect the name
    /// column; PI targets are not part of the relational image).
    pub(crate) fn set_name(&mut self, pre: u32, name: &Arc<str>) {
        if self.node_kind(pre) != NodeKind::Element {
            return;
        }
        self.invalidate_structural();
        self.ensure_tags(std::iter::once(name));
        let code = self.tags.code_of(name).expect("covered");
        let (ci, l) = self.locate(pre);
        self.chunks[ci].name_code[l] = code;
        // conservative: only widen the bucket mask
        self.chunks[ci].name_buckets |= 1u64 << (code % 64);
    }

    /// Set (or insert, at the end of the owner's run) an attribute.
    pub(crate) fn set_attribute(&mut self, pre: u32, name: &str, value: &str) {
        self.invalidate_attributes();
        let arc_name: Arc<str> = Arc::from(name);
        self.ensure_attr_names(std::iter::once(&arc_name));
        let code = self.attr_names.code_of(name).expect("covered");
        let arc_value: Arc<str> = Arc::from(value);
        self.ensure_attr_values(std::iter::once(&arc_value));
        let value_code = self.attr_values.code_of(value).expect("covered");
        let (ci, l) = self.locate(pre);
        let chunk = &mut self.chunks[ci];
        let r = chunk.attr_range(l);
        for i in r.clone() {
            if chunk.attr_name_code[i] == code {
                chunk.attr_value_code[i] = value_code;
                return;
            }
        }
        chunk.attr_owner.insert(r.end, l as u32);
        chunk.attr_name_code.insert(r.end, code);
        chunk.attr_value_code.insert(r.end, value_code);
        self.attr_count += 1;
    }

    /// Remove an attribute (no-op if absent).
    pub(crate) fn remove_attribute(&mut self, pre: u32, name: &str) {
        let Some(code) = self.attr_names.code_of(name) else {
            return;
        };
        self.invalidate_attributes();
        let (ci, l) = self.locate(pre);
        let chunk = &mut self.chunks[ci];
        for i in chunk.attr_range(l) {
            if chunk.attr_name_code[i] == code {
                chunk.attr_owner.remove(i);
                chunk.attr_name_code.remove(i);
                chunk.attr_value_code.remove(i);
                self.attr_count -= 1;
                return;
            }
        }
    }

    /// Rename an attribute in place (no-op if absent).
    pub(crate) fn rename_attribute(&mut self, pre: u32, name: &str, new_name: &str) {
        if self.attr_names.code_of(name).is_none() {
            return;
        }
        self.invalidate_attributes();
        let arc_new: Arc<str> = Arc::from(new_name);
        self.ensure_attr_names(std::iter::once(&arc_new));
        // the merge may have remapped `code`
        let code = self
            .attr_names
            .code_of(name)
            .expect("old name stays in the grown dictionary");
        let new_code = self.attr_names.code_of(new_name).expect("covered");
        let (ci, l) = self.locate(pre);
        let chunk = &mut self.chunks[ci];
        for i in chunk.attr_range(l) {
            if chunk.attr_name_code[i] == code {
                chunk.attr_name_code[i] = new_code;
                return;
            }
        }
    }

    // -- differential verification ----------------------------------------

    /// Compare the *decoded* content of two images: per-row structural
    /// values and names, and per-row attributes.  Dictionary identity and
    /// chunk geometry are deliberately not compared — the incrementally
    /// maintained image may keep dictionary entries for names no longer
    /// present and may have ragged chunks, and the two sides may even use
    /// different chunk row targets.
    pub fn same_content(&self, other: &DocumentColumns) -> Result<(), String> {
        if self.len() != other.len() {
            return Err(format!("row count {} != {}", self.len(), other.len()));
        }
        for i in 0..self.len() {
            let p = i as u32;
            if self.node_size(p) != other.node_size(p)
                || self.node_level(p) != other.node_level(p)
                || self.node_kind(p) != other.node_kind(p)
            {
                return Err(format!(
                    "structural row {i}: ({}, {}, {:?}) != ({}, {}, {:?})",
                    self.node_size(p),
                    self.node_level(p),
                    self.node_kind(p),
                    other.node_size(p),
                    other.node_level(p),
                    other.node_kind(p)
                ));
            }
            if self.node_name(p) != other.node_name(p) {
                return Err(format!(
                    "name at {i}: `{}` != `{}`",
                    self.node_name(p),
                    other.node_name(p)
                ));
            }
        }
        if self.attr_count() != other.attr_count() {
            return Err(format!(
                "attr count {} != {}",
                self.attr_count(),
                other.attr_count()
            ));
        }
        for (i, ((ao, an, av), (bo, bn, bv))) in self.attr_rows().zip(other.attr_rows()).enumerate()
        {
            let a = (
                ao,
                self.attr_names.str_of(an).as_ref(),
                self.attr_values.str_of(av).as_ref(),
            );
            let b = (
                bo,
                other.attr_names.str_of(bn).as_ref(),
                other.attr_values.str_of(bv).as_ref(),
            );
            if a != b {
                return Err(format!("attr row {i}: {a:?} != {b:?}"));
            }
        }
        Ok(())
    }
}

/// Shred an XML text and export it in one step: the document plus its
/// dictionary-encoded relational image.
pub fn shred_to_columns(
    name: &str,
    xml: &str,
    opts: &ShredOptions,
) -> Result<(Document, DocumentColumns), ShredError> {
    let doc = shred(name, xml, opts)?;
    let cols = DocumentColumns::new(&doc);
    Ok((doc, cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxq_engine::join::radix_hash_join;

    const XML: &str = r#"<site><item id="1"><name>a</name></item><item id="2"/></site>"#;

    #[test]
    fn export_shapes_and_dictionaries() {
        let (doc, cols) = shred_to_columns("t", XML, &ShredOptions::default()).unwrap();
        assert_eq!(cols.structural().nrows(), doc.len());
        assert_eq!(cols.attributes().nrows(), doc.attr_count());
        // tag dictionary: "", item, name, site — sorted
        let tags: Vec<&str> = cols.tags().iter().map(|s| s.as_ref()).collect();
        assert_eq!(tags, ["", "item", "name", "site"]);
        assert!(matches!(
            cols.structural().column("name").unwrap(),
            Column::Dict { .. }
        ));
        assert!(matches!(
            cols.attributes().column("name").unwrap(),
            Column::Dict { .. }
        ));
        // structural row 0 is the root element
        assert_eq!(
            cols.structural()
                .column("name")
                .unwrap()
                .item(0)
                .string_value(),
            "site"
        );
        assert_eq!(
            cols.structural().column("kind").unwrap().as_int().unwrap()[0],
            1
        );
        // dense read path agrees with the document
        for p in 0..doc.len() as u32 {
            assert_eq!(cols.node_size(p), doc.size(p));
            assert_eq!(cols.node_level(p), doc.level(p));
            assert_eq!(cols.node_kind(p), doc.kind(p));
        }
        assert_eq!(cols.attr_value_of(1, "id"), Some("1"));
        assert_eq!(cols.attr_value_of(1, "missing"), None);
    }

    #[test]
    fn shared_dictionary_enables_code_joins() {
        let (doc, cols) = shred_to_columns("t", XML, &ShredOptions::default()).unwrap();
        let probe = cols.names_of(&doc, doc.elements_named("item"));
        let (probe_codes, probe_dict) = probe.dict_parts().unwrap();
        let (_, struct_dict) = cols
            .structural()
            .column("name")
            .unwrap()
            .dict_parts()
            .unwrap();
        assert!(Arc::ptr_eq(probe_dict, struct_dict), "dictionary is shared");
        assert_eq!(probe_codes.len(), 2);
        // joining the probe against the structural name column finds exactly
        // the two <item> rows
        let (l, r) = radix_hash_join(&probe, cols.structural().column("name").unwrap());
        assert_eq!(l.len(), 4, "2 probes × 2 matching rows");
        assert!(r.iter().all(|&row| cols
            .structural()
            .column("name")
            .unwrap()
            .item(row)
            .string_value()
            == "item"));
    }

    #[test]
    fn attribute_values_are_dictionary_encoded() {
        let (_, cols) = shred_to_columns("t", XML, &ShredOptions::default()).unwrap();
        let value = cols.attributes().column("value").unwrap();
        let (codes, dict) = value.dict_parts().unwrap();
        assert!(
            Arc::ptr_eq(dict, cols.attr_values()),
            "dictionary is shared"
        );
        assert_eq!(codes.len(), 2);
        assert_eq!(value.item(0).string_value(), "1");
        assert_eq!(value.item(1).string_value(), "2");
        // the id values are numeric strings, so the mixed code join runs:
        // self-join matches each value exactly once
        let (l, r) = radix_hash_join(value, value);
        assert_eq!(l, vec![0, 1]);
        assert_eq!(r, vec![0, 1]);
        // per-code lookup agrees with the decoded value
        assert_eq!(
            cols.attr_value_code_of(1, "id")
                .map(|c| dict.str_of(c).as_ref().to_string()),
            Some("1".into())
        );
    }

    #[test]
    fn same_content_detects_divergence() {
        let (_, a) = shred_to_columns("t", XML, &ShredOptions::default()).unwrap();
        let (_, mut b) = shred_to_columns("t", XML, &ShredOptions::default()).unwrap();
        a.same_content(&b).unwrap();
        b.add_size(0, 1);
        assert!(a.same_content(&b).is_err());
    }

    /// A wide flat document: root + n <r i="i"><t>text</t></r> children.
    fn wide_doc(n: usize) -> Document {
        let mut xml = String::from("<root>");
        for i in 0..n {
            xml.push_str(&format!("<r i=\"{i}\"><t>x{i}</t></r>"));
        }
        xml.push_str("</root>");
        shred("w", &xml, &ShredOptions::default()).unwrap()
    }

    #[test]
    fn chunk_geometry_and_rechunking() {
        let doc = wide_doc(100); // 301 nodes
        for rows in [16usize, 64, 256] {
            let cols = DocumentColumns::with_chunk_rows(&doc, rows);
            assert_eq!(cols.chunk_rows(), rows);
            assert_eq!(cols.chunk_count(), doc.len().div_ceil(rows));
            // spans tile the pre range exactly
            let mut at = 0u32;
            for i in 0..cols.chunk_count() {
                let (start, len) = cols.chunk_span(i);
                assert_eq!(start, at);
                at += len as u32;
            }
            assert_eq!(at as usize, doc.len());
            // content is chunking-invariant
            cols.same_content(&DocumentColumns::new(&doc)).unwrap();
            // rechunking round-trips
            cols.rechunked(32).same_content(&cols).unwrap();
        }
    }

    #[test]
    fn chunk_summaries_cover_their_rows() {
        let doc = wide_doc(100);
        let cols = DocumentColumns::with_chunk_rows(&doc, 64);
        for i in 0..cols.chunk_count() {
            let (start, len) = cols.chunk_span(i);
            let (min_l, max_l) = cols.chunk_levels(i);
            for p in start..start + len as u32 {
                let lv = cols.node_level(p);
                assert!(lv >= min_l && lv <= max_l);
                assert!(cols.chunk_has_kind(i, cols.node_kind(p)));
                assert!(cols.chunk_may_contain_name_code(i, cols.node_name_code(p)));
            }
        }
    }

    #[test]
    fn anchor_before_matches_linear_scan() {
        let doc = wide_doc(50);
        let cols = DocumentColumns::with_chunk_rows(&doc, 16);
        for pos in 0..doc.len() as u32 {
            for level in 0..4u16 {
                let expect = (0..pos).rev().find(|&v| cols.node_level(v) < level);
                assert_eq!(
                    cols.anchor_before(pos, level),
                    expect,
                    "pos {pos} lv {level}"
                );
            }
        }
    }

    #[test]
    fn splice_stays_within_one_chunk() {
        let doc = wide_doc(100);
        let mut cols = DocumentColumns::with_chunk_rows(&doc, 64);
        let before: Vec<(u32, usize)> = (0..cols.chunk_count())
            .map(|i| cols.chunk_span(i))
            .collect();
        // splice a childless element row into the middle of chunk 2
        let at = (before[2].0 as usize) + 10;
        let row = Tuple {
            size: 0,
            level: 1,
            kind: NodeKind::Element,
            name: Arc::from("zzz"),
            text: Arc::from(""),
            attrs: vec![(Arc::from("k"), Arc::from("v"))],
        };
        cols.splice_nodes(at, std::slice::from_ref(&row));
        // chunks before the splice point kept their row counts; only the
        // spliced chunk grew
        assert_eq!(cols.chunk_span(2).1, before[2].1 + 1);
        for (i, b) in before.iter().enumerate().take(2) {
            assert_eq!(cols.chunk_span(i).1, b.1);
        }
        assert_eq!(cols.node_name(at as u32), "zzz");
        assert_eq!(cols.attr_value_of(at as u32, "k"), Some("v"));
        // and removal restores the original content
        cols.remove_nodes(at, 1);
        cols.same_content(&DocumentColumns::new(&doc)).unwrap();
    }

    #[test]
    fn oversized_chunks_split() {
        let doc = wide_doc(4); // 13 nodes
        let mut cols = DocumentColumns::with_chunk_rows(&doc, 16);
        assert_eq!(cols.chunk_count(), 1);
        let rows: Vec<Tuple> = (0..40)
            .map(|i| Tuple {
                size: 0,
                level: 1,
                kind: NodeKind::Text,
                name: Arc::from(""),
                text: Arc::from(format!("t{i}")),
                attrs: Vec::new(),
            })
            .collect();
        cols.splice_nodes(13, &rows);
        assert!(cols.chunk_count() > 1, "oversized chunk must split");
        for i in 0..cols.chunk_count() {
            assert!(cols.chunk_span(i).1 <= 2 * cols.chunk_rows());
        }
        assert_eq!(cols.len(), 53);
    }
}
