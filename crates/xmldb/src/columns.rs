//! Relational export of a document with dictionary-encoded name columns —
//! maintained **incrementally** by the paged update path.
//!
//! The paper's storage layer keeps the structural `pre|size|level` table in
//! dense columns and the node names in an interned qname container
//! (Figure 9).  [`DocumentColumns`] is that layout: dense `size`/`level`/
//! `kind`/name-code vectors (one row per node in document order) plus an
//! `owner|name|value` attribute image, with the tag and attribute-name
//! columns encoded against **shared sorted dictionaries**.
//!
//! Since PR 5 this image is the *canonical structural read path* of the
//! paged store: [`crate::update::PagedDocument`] patches it in lockstep
//! with every applied update primitive (row splices, ancestor `size`
//! deltas, in-place renames and attribute patches), merging new names into
//! the dictionaries (with a code remap) only when an update introduces a
//! string the dictionary has never seen.  A write therefore costs
//! memmove-level splices instead of the former full rebuild
//! (re-shredding, re-interning and re-sorting every name).  The engine
//! [`Table`]s exposed to the relational kernel are assembled lazily from
//! the image and cached until the next patch.
//!
//! Within one export the structural and the attribute table share their
//! dictionary instances (`Arc`), so tag-to-tag and name-to-name equi-joins
//! between them never touch a string.

use std::sync::{Arc, OnceLock};

use mxq_engine::{Column, Dictionary, Table};

use crate::doc::Document;
use crate::node::NodeKind;
use crate::read::{AttrsIter, NodeRead};
use crate::shred::{shred, ShredError, ShredOptions};
use crate::update::Tuple;

/// Integer encoding of [`NodeKind`] used in the `kind` column.
pub fn kind_code(kind: NodeKind) -> i64 {
    match kind {
        NodeKind::Document => 0,
        NodeKind::Element => 1,
        NodeKind::Text => 2,
        NodeKind::Comment => 3,
        NodeKind::ProcessingInstruction => 4,
    }
}

/// Inverse of [`kind_code`].
pub fn code_kind(code: i64) -> NodeKind {
    match code {
        0 => NodeKind::Document,
        1 => NodeKind::Element,
        2 => NodeKind::Text,
        3 => NodeKind::Comment,
        4 => NodeKind::ProcessingInstruction,
        _ => panic!("invalid node-kind code {code}"),
    }
}

/// The dense relational image of one document container, with
/// dictionary-encoded string columns (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct DocumentColumns {
    /// Sorted dictionary over the element names (plus the empty string used
    /// for non-element rows).  Grows monotonically under incremental
    /// maintenance: names deleted from the document may linger as unused
    /// entries — harmless, since code order still equals string order.
    tags: Arc<Dictionary>,
    /// Sorted dictionary over the attribute names.
    attr_names: Arc<Dictionary>,
    /// Sorted dictionary over the attribute *values* — mixed content (ids,
    /// keywords, numeric strings side by side), so joins over it go through
    /// the per-code numeric keys of [`Dictionary::numeric_key_of`].
    attr_values: Arc<Dictionary>,
    size: Vec<i64>,
    level: Vec<i64>,
    kind: Vec<i64>,
    name_code: Vec<u32>,
    attr_owner: Vec<i64>,
    attr_name_code: Vec<u32>,
    attr_value_code: Vec<u32>,
    /// Lazily assembled engine tables over the image, cached separately so
    /// a consumer of only one table never pays for assembling the other.
    structural_table: OnceLock<Table>,
    attribute_table: OnceLock<Table>,
}

impl DocumentColumns {
    /// Export a container into its relational, dictionary-encoded image.
    pub fn new<D: NodeRead>(doc: &D) -> DocumentColumns {
        let n = doc.len() as u32;
        let mut size = Vec::with_capacity(doc.len());
        let mut level = Vec::with_capacity(doc.len());
        let mut kind = Vec::with_capacity(doc.len());
        let mut names: Vec<Arc<str>> = Vec::with_capacity(doc.len());
        let mut attr_owner = Vec::new();
        let mut attr_namev: Vec<Arc<str>> = Vec::new();
        let mut attr_value: Vec<Arc<str>> = Vec::new();
        for v in 0..n {
            size.push(doc.size(v) as i64);
            level.push(doc.level(v) as i64);
            kind.push(kind_code(doc.kind(v)));
            names.push(match doc.kind(v) {
                NodeKind::Element => Arc::from(doc.name_of(v)),
                _ => Arc::from(""),
            });
            for (aname, avalue) in doc.attrs(v) {
                attr_owner.push(v as i64);
                attr_namev.push(aname.clone());
                attr_value.push(avalue.clone());
            }
        }
        let (name_code, tags) = Dictionary::encode(names);
        let (attr_name_code, attr_names) = Dictionary::encode(attr_namev);
        let (attr_value_code, attr_values) = Dictionary::encode(attr_value);
        DocumentColumns {
            tags,
            attr_names,
            attr_values,
            size,
            level,
            kind,
            name_code,
            attr_owner,
            attr_name_code,
            attr_value_code,
            structural_table: OnceLock::new(),
            attribute_table: OnceLock::new(),
        }
    }

    /// Number of node rows in the image.
    pub fn len(&self) -> usize {
        self.size.len()
    }

    /// True if the image holds no node rows.
    pub fn is_empty(&self) -> bool {
        self.size.is_empty()
    }

    /// Number of attribute rows.
    pub fn attr_count(&self) -> usize {
        self.attr_owner.len()
    }

    /// The element-name dictionary.
    pub fn tags(&self) -> &Arc<Dictionary> {
        &self.tags
    }

    /// The attribute-name dictionary.
    pub fn attr_names(&self) -> &Arc<Dictionary> {
        &self.attr_names
    }

    /// The attribute-value dictionary.
    pub fn attr_values(&self) -> &Arc<Dictionary> {
        &self.attr_values
    }

    // -- dense structural read path --------------------------------------

    /// Subtree size at `pre`.
    #[inline]
    pub fn node_size(&self, pre: u32) -> u32 {
        self.size[pre as usize] as u32
    }

    /// Level (depth) at `pre`.
    #[inline]
    pub fn node_level(&self, pre: u32) -> u16 {
        self.level[pre as usize] as u16
    }

    /// Node kind at `pre`.
    #[inline]
    pub fn node_kind(&self, pre: u32) -> NodeKind {
        code_kind(self.kind[pre as usize])
    }

    /// Name code at `pre` (a [`Self::tags`] code; non-elements carry the
    /// code of the empty string).
    #[inline]
    pub fn node_name_code(&self, pre: u32) -> u32 {
        self.name_code[pre as usize]
    }

    /// Element name / empty string at `pre`, decoded.
    #[inline]
    pub fn node_name(&self, pre: u32) -> &str {
        self.tags.str_of(self.name_code[pre as usize])
    }

    /// The dense level column (backward parent scans run directly on it).
    pub fn level_slice(&self) -> &[i64] {
        &self.level
    }

    /// Attribute rows of element `pre` as a cursor over the columns.
    pub fn attrs_of(&self, pre: u32) -> AttrsIter<'_> {
        let r = self.attr_range(pre);
        AttrsIter::Dict {
            names: &self.attr_names,
            codes: &self.attr_name_code[r.clone()],
            values: &self.attr_values,
            value_codes: &self.attr_value_code[r],
            idx: 0,
        }
    }

    /// Value of attribute `name` on element `pre`.
    pub fn attr_value_of(&self, pre: u32, name: &str) -> Option<&str> {
        Some(self.attr_values.str_of(self.attr_value_code_of(pre, name)?))
    }

    /// Value codes (into [`Self::attr_values`]) of all attribute rows of
    /// element `pre`, in attribute order.
    pub fn attr_value_codes_of(&self, pre: u32) -> &[u32] {
        &self.attr_value_code[self.attr_range(pre)]
    }

    /// Value *code* (into [`Self::attr_values`]) of attribute `name` on
    /// element `pre` — the dictionary-encoded form of [`Self::attr_value_of`].
    pub fn attr_value_code_of(&self, pre: u32, name: &str) -> Option<u32> {
        let code = self.attr_names.code_of(name)?;
        let r = self.attr_range(pre);
        for i in r {
            if self.attr_name_code[i] == code {
                return Some(self.attr_value_code[i]);
            }
        }
        None
    }

    fn attr_range(&self, pre: u32) -> std::ops::Range<usize> {
        let start = self.attr_owner.partition_point(|&o| o < pre as i64);
        let end = self.attr_owner.partition_point(|&o| o <= pre as i64);
        start..end
    }

    // -- engine tables (lazy) --------------------------------------------

    /// The structural table `pre | size | level | kind | name`, one row per
    /// node in document order; `name` is a [`Column::Dict`] over
    /// [`Self::tags`].  Assembled lazily from the image and cached until
    /// the next patch.
    pub fn structural(&self) -> &Table {
        self.structural_table.get_or_init(|| {
            let pre: Vec<i64> = (0..self.len() as i64).collect();
            Table::from_columns(vec![
                ("pre", Column::Int(pre)),
                ("size", Column::Int(self.size.clone())),
                ("level", Column::Int(self.level.clone())),
                ("kind", Column::Int(self.kind.clone())),
                (
                    "name",
                    Column::Dict {
                        codes: self.name_code.clone(),
                        dict: self.tags.clone(),
                    },
                ),
            ])
            .expect("structural columns have equal length")
        })
    }

    /// The attribute table `owner | name | value`, one row per attribute in
    /// owner order; `name` is a [`Column::Dict`] over [`Self::attr_names`],
    /// `value` a [`Column::Dict`] over [`Self::attr_values`] — so value
    /// equi-joins between attribute columns of the same document (XMark
    /// `@id = @person` and friends) run code-to-code.
    pub fn attributes(&self) -> &Table {
        self.attribute_table.get_or_init(|| {
            Table::from_columns(vec![
                ("owner", Column::Int(self.attr_owner.clone())),
                (
                    "name",
                    Column::Dict {
                        codes: self.attr_name_code.clone(),
                        dict: self.attr_names.clone(),
                    },
                ),
                (
                    "value",
                    Column::Dict {
                        codes: self.attr_value_code.clone(),
                        dict: self.attr_values.clone(),
                    },
                ),
            ])
            .expect("attribute columns have equal length")
        })
    }

    /// A `Dict` column (over [`Self::tags`]) holding the names of an
    /// arbitrary selection of nodes — shares the export's dictionary, so
    /// joining it against the structural `name` column is code-to-code.
    pub fn names_of<D: NodeRead>(&self, doc: &D, pres: &[u32]) -> Column {
        let codes = pres
            .iter()
            .map(|&p| {
                let name = match doc.kind(p) {
                    NodeKind::Element => doc.name_of(p),
                    _ => "",
                };
                self.tags
                    .code_of(name)
                    .expect("export dictionary covers every element name")
            })
            .collect();
        Column::Dict {
            codes,
            dict: self.tags.clone(),
        }
    }

    // -- incremental maintenance (the paged update path) ------------------

    fn invalidate_tables(&mut self) {
        self.structural_table = OnceLock::new();
        self.attribute_table = OnceLock::new();
    }

    fn invalidate_structural(&mut self) {
        self.structural_table = OnceLock::new();
    }

    fn invalidate_attributes(&mut self) {
        self.attribute_table = OnceLock::new();
    }

    /// Grow `self.tags` to cover every name in `names`, remapping the
    /// existing codes when the sorted dictionary gains entries.  Returns
    /// true when a merge (and remap) happened — the rare "new name" path.
    fn ensure_tags<'a>(&mut self, names: impl Iterator<Item = &'a Arc<str>>) -> bool {
        let missing: Vec<Arc<str>> = names
            .filter(|n| self.tags.code_of(n).is_none())
            .cloned()
            .collect();
        if missing.is_empty() {
            return false;
        }
        let fresh = Dictionary::new(missing);
        let (merged, remap_old, _) = Dictionary::merge(&self.tags, &fresh);
        for c in &mut self.name_code {
            *c = remap_old[*c as usize];
        }
        self.tags = merged;
        true
    }

    fn ensure_attr_names<'a>(&mut self, names: impl Iterator<Item = &'a Arc<str>>) {
        let missing: Vec<Arc<str>> = names
            .filter(|n| self.attr_names.code_of(n).is_none())
            .cloned()
            .collect();
        if missing.is_empty() {
            return;
        }
        let fresh = Dictionary::new(missing);
        let (merged, remap_old, _) = Dictionary::merge(&self.attr_names, &fresh);
        for c in &mut self.attr_name_code {
            *c = remap_old[*c as usize];
        }
        self.attr_names = merged;
    }

    fn ensure_attr_values<'a>(&mut self, values: impl Iterator<Item = &'a Arc<str>>) {
        let missing: Vec<Arc<str>> = values
            .filter(|v| self.attr_values.code_of(v).is_none())
            .cloned()
            .collect();
        if missing.is_empty() {
            return;
        }
        let fresh = Dictionary::new(missing);
        let (merged, remap_old, _) = Dictionary::merge(&self.attr_values, &fresh);
        for c in &mut self.attr_value_code {
            *c = remap_old[*c as usize];
        }
        self.attr_values = merged;
    }

    fn tag_of(tuple: &Tuple) -> Arc<str> {
        match tuple.kind {
            NodeKind::Element => tuple.name.clone(),
            _ => Arc::from(""),
        }
    }

    /// Splice `rows` into the node image at position `at`, shifting the
    /// attribute owners behind the splice and inserting the rows' own
    /// attributes.  O(rows + memmove), plus a dictionary merge when a row
    /// carries a never-seen name.
    pub(crate) fn splice_nodes(&mut self, at: usize, rows: &[Tuple]) {
        if rows.is_empty() {
            return;
        }
        self.invalidate_tables();
        // non-element rows encode as the empty string
        let tag_names: Vec<Arc<str>> = rows.iter().map(Self::tag_of).collect();
        self.ensure_tags(tag_names.iter());
        let k = rows.len() as i64;
        let codes: Vec<u32> = tag_names
            .iter()
            .map(|n| {
                self.tags
                    .code_of(n)
                    .expect("ensure_tags covered the splice")
            })
            .collect();
        self.size.splice(at..at, rows.iter().map(|t| t.size as i64));
        self.level
            .splice(at..at, rows.iter().map(|t| t.level as i64));
        self.kind
            .splice(at..at, rows.iter().map(|t| kind_code(t.kind)));
        self.name_code.splice(at..at, codes);

        // attributes: shift owners at/behind the splice, then insert the
        // spliced rows' attributes (owners are absolute positions)
        let attr_at = self.attr_owner.partition_point(|&o| o < at as i64);
        for o in &mut self.attr_owner[attr_at..] {
            *o += k;
        }
        let mut new_owner = Vec::new();
        let mut new_name: Vec<Arc<str>> = Vec::new();
        let mut new_value = Vec::new();
        for (i, t) in rows.iter().enumerate() {
            for (n, v) in &t.attrs {
                new_owner.push((at + i) as i64);
                new_name.push(n.clone());
                new_value.push(v.clone());
            }
        }
        if !new_owner.is_empty() {
            self.ensure_attr_names(new_name.iter());
            let new_codes: Vec<u32> = new_name
                .iter()
                .map(|n| self.attr_names.code_of(n).expect("covered"))
                .collect();
            self.ensure_attr_values(new_value.iter());
            let new_value_codes: Vec<u32> = new_value
                .iter()
                .map(|v| self.attr_values.code_of(v).expect("covered"))
                .collect();
            self.attr_owner.splice(attr_at..attr_at, new_owner);
            self.attr_name_code.splice(attr_at..attr_at, new_codes);
            self.attr_value_code
                .splice(attr_at..attr_at, new_value_codes);
        }
    }

    /// Remove `count` node rows starting at `at`, dropping their attribute
    /// rows and shifting the owners behind the range.
    pub(crate) fn remove_nodes(&mut self, at: usize, count: usize) {
        if count == 0 {
            return;
        }
        self.invalidate_tables();
        self.size.drain(at..at + count);
        self.level.drain(at..at + count);
        self.kind.drain(at..at + count);
        self.name_code.drain(at..at + count);
        let start = self.attr_owner.partition_point(|&o| o < at as i64);
        let end = self
            .attr_owner
            .partition_point(|&o| o < (at + count) as i64);
        self.attr_owner.drain(start..end);
        self.attr_name_code.drain(start..end);
        self.attr_value_code.drain(start..end);
        for o in &mut self.attr_owner[start..] {
            *o -= count as i64;
        }
    }

    /// Ancestor `size` maintenance: add `delta` to the size of `pre`.
    pub(crate) fn add_size(&mut self, pre: u32, delta: i64) {
        self.invalidate_structural();
        self.size[pre as usize] += delta;
    }

    /// In-place rename of the node at `pre` (elements only affect the name
    /// column; PI targets are not part of the relational image).
    pub(crate) fn set_name(&mut self, pre: u32, name: &Arc<str>) {
        if self.node_kind(pre) != NodeKind::Element {
            return;
        }
        self.invalidate_structural();
        self.ensure_tags(std::iter::once(name));
        self.name_code[pre as usize] = self.tags.code_of(name).expect("covered");
    }

    /// Set (or insert, at the end of the owner's run) an attribute.
    pub(crate) fn set_attribute(&mut self, pre: u32, name: &str, value: &str) {
        self.invalidate_attributes();
        let arc_name: Arc<str> = Arc::from(name);
        self.ensure_attr_names(std::iter::once(&arc_name));
        let code = self.attr_names.code_of(name).expect("covered");
        let arc_value: Arc<str> = Arc::from(value);
        self.ensure_attr_values(std::iter::once(&arc_value));
        let value_code = self.attr_values.code_of(value).expect("covered");
        let r = self.attr_range(pre);
        for i in r.clone() {
            if self.attr_name_code[i] == code {
                self.attr_value_code[i] = value_code;
                return;
            }
        }
        self.attr_owner.insert(r.end, pre as i64);
        self.attr_name_code.insert(r.end, code);
        self.attr_value_code.insert(r.end, value_code);
    }

    /// Remove an attribute (no-op if absent).
    pub(crate) fn remove_attribute(&mut self, pre: u32, name: &str) {
        let Some(code) = self.attr_names.code_of(name) else {
            return;
        };
        self.invalidate_attributes();
        let r = self.attr_range(pre);
        for i in r {
            if self.attr_name_code[i] == code {
                self.attr_owner.remove(i);
                self.attr_name_code.remove(i);
                self.attr_value_code.remove(i);
                return;
            }
        }
    }

    /// Rename an attribute in place (no-op if absent).
    pub(crate) fn rename_attribute(&mut self, pre: u32, name: &str, new_name: &str) {
        if self.attr_names.code_of(name).is_none() {
            return;
        }
        self.invalidate_attributes();
        let arc_new: Arc<str> = Arc::from(new_name);
        self.ensure_attr_names(std::iter::once(&arc_new));
        // the merge may have remapped `code`
        let code = self
            .attr_names
            .code_of(name)
            .expect("old name stays in the grown dictionary");
        let new_code = self.attr_names.code_of(new_name).expect("covered");
        let r = self.attr_range(pre);
        for i in r {
            if self.attr_name_code[i] == code {
                self.attr_name_code[i] = new_code;
                return;
            }
        }
    }

    // -- differential verification ---------------------------------------

    /// Compare the *decoded* content of two images: per-row structural
    /// values and names, and per-row attributes.  Dictionary identity is
    /// deliberately not compared — the incrementally maintained dictionary
    /// may keep entries for names no longer present in the document.
    pub fn same_content(&self, other: &DocumentColumns) -> Result<(), String> {
        if self.len() != other.len() {
            return Err(format!("row count {} != {}", self.len(), other.len()));
        }
        for i in 0..self.len() {
            let p = i as u32;
            if self.size[i] != other.size[i]
                || self.level[i] != other.level[i]
                || self.kind[i] != other.kind[i]
            {
                return Err(format!(
                    "structural row {i}: ({}, {}, {}) != ({}, {}, {})",
                    self.size[i],
                    self.level[i],
                    self.kind[i],
                    other.size[i],
                    other.level[i],
                    other.kind[i]
                ));
            }
            if self.node_name(p) != other.node_name(p) {
                return Err(format!(
                    "name at {i}: `{}` != `{}`",
                    self.node_name(p),
                    other.node_name(p)
                ));
            }
        }
        if self.attr_count() != other.attr_count() {
            return Err(format!(
                "attr count {} != {}",
                self.attr_count(),
                other.attr_count()
            ));
        }
        for i in 0..self.attr_count() {
            let (a, b) = (
                (
                    self.attr_owner[i],
                    self.attr_names.str_of(self.attr_name_code[i]).as_ref(),
                    self.attr_values.str_of(self.attr_value_code[i]).as_ref(),
                ),
                (
                    other.attr_owner[i],
                    other.attr_names.str_of(other.attr_name_code[i]).as_ref(),
                    other.attr_values.str_of(other.attr_value_code[i]).as_ref(),
                ),
            );
            if a != b {
                return Err(format!("attr row {i}: {a:?} != {b:?}"));
            }
        }
        Ok(())
    }
}

/// Shred an XML text and export it in one step: the document plus its
/// dictionary-encoded relational image.
pub fn shred_to_columns(
    name: &str,
    xml: &str,
    opts: &ShredOptions,
) -> Result<(Document, DocumentColumns), ShredError> {
    let doc = shred(name, xml, opts)?;
    let cols = DocumentColumns::new(&doc);
    Ok((doc, cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxq_engine::join::radix_hash_join;

    const XML: &str = r#"<site><item id="1"><name>a</name></item><item id="2"/></site>"#;

    #[test]
    fn export_shapes_and_dictionaries() {
        let (doc, cols) = shred_to_columns("t", XML, &ShredOptions::default()).unwrap();
        assert_eq!(cols.structural().nrows(), doc.len());
        assert_eq!(cols.attributes().nrows(), doc.attr_count());
        // tag dictionary: "", item, name, site — sorted
        let tags: Vec<&str> = cols.tags().iter().map(|s| s.as_ref()).collect();
        assert_eq!(tags, ["", "item", "name", "site"]);
        assert!(matches!(
            cols.structural().column("name").unwrap(),
            Column::Dict { .. }
        ));
        assert!(matches!(
            cols.attributes().column("name").unwrap(),
            Column::Dict { .. }
        ));
        // structural row 0 is the root element
        assert_eq!(
            cols.structural()
                .column("name")
                .unwrap()
                .item(0)
                .string_value(),
            "site"
        );
        assert_eq!(
            cols.structural().column("kind").unwrap().as_int().unwrap()[0],
            1
        );
        // dense read path agrees with the document
        for p in 0..doc.len() as u32 {
            assert_eq!(cols.node_size(p), doc.size(p));
            assert_eq!(cols.node_level(p), doc.level(p));
            assert_eq!(cols.node_kind(p), doc.kind(p));
        }
        assert_eq!(cols.attr_value_of(1, "id"), Some("1"));
        assert_eq!(cols.attr_value_of(1, "missing"), None);
    }

    #[test]
    fn shared_dictionary_enables_code_joins() {
        let (doc, cols) = shred_to_columns("t", XML, &ShredOptions::default()).unwrap();
        let probe = cols.names_of(&doc, doc.elements_named("item"));
        let (probe_codes, probe_dict) = probe.dict_parts().unwrap();
        let (_, struct_dict) = cols
            .structural()
            .column("name")
            .unwrap()
            .dict_parts()
            .unwrap();
        assert!(Arc::ptr_eq(probe_dict, struct_dict), "dictionary is shared");
        assert_eq!(probe_codes.len(), 2);
        // joining the probe against the structural name column finds exactly
        // the two <item> rows
        let (l, r) = radix_hash_join(&probe, cols.structural().column("name").unwrap());
        assert_eq!(l.len(), 4, "2 probes × 2 matching rows");
        assert!(r.iter().all(|&row| cols
            .structural()
            .column("name")
            .unwrap()
            .item(row)
            .string_value()
            == "item"));
    }

    #[test]
    fn attribute_values_are_dictionary_encoded() {
        let (_, cols) = shred_to_columns("t", XML, &ShredOptions::default()).unwrap();
        let value = cols.attributes().column("value").unwrap();
        let (codes, dict) = value.dict_parts().unwrap();
        assert!(
            Arc::ptr_eq(dict, cols.attr_values()),
            "dictionary is shared"
        );
        assert_eq!(codes.len(), 2);
        assert_eq!(value.item(0).string_value(), "1");
        assert_eq!(value.item(1).string_value(), "2");
        // the id values are numeric strings, so the mixed code join runs:
        // self-join matches each value exactly once
        let (l, r) = radix_hash_join(value, value);
        assert_eq!(l, vec![0, 1]);
        assert_eq!(r, vec![0, 1]);
        // per-code lookup agrees with the decoded value
        assert_eq!(
            cols.attr_value_code_of(1, "id")
                .map(|c| dict.str_of(c).as_ref().to_string()),
            Some("1".into())
        );
    }

    #[test]
    fn same_content_detects_divergence() {
        let (_, a) = shred_to_columns("t", XML, &ShredOptions::default()).unwrap();
        let (_, mut b) = shred_to_columns("t", XML, &ShredOptions::default()).unwrap();
        a.same_content(&b).unwrap();
        b.add_size(0, 1);
        assert!(a.same_content(&b).is_err());
    }
}
