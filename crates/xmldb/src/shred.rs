//! The document shredder: an XML parser that writes the pre|size|level
//! encoding sequentially.
//!
//! The parser is hand written (no external XML crate) and covers the XML
//! subset relevant for database documents: the prolog, elements, attributes,
//! character data with the five predefined entities and numeric character
//! references, CDATA sections, comments and processing instructions.
//! DTDs are skipped, namespaces are treated as plain prefixed names.

use std::fmt;

use crate::doc::{Document, DocumentBuilder};

/// Options controlling shredding.
#[derive(Debug, Clone)]
pub struct ShredOptions {
    /// Drop text nodes that consist solely of whitespace between elements
    /// (boundary whitespace).  Database loads usually do; XMark data does not
    /// depend on boundary whitespace.
    pub strip_boundary_whitespace: bool,
    /// Create an explicit document node (kind `Document` is represented as an
    /// element named `#document` at level 0 wrapping the root element).  The
    /// relational encoding of the paper keeps the root element at level 0;
    /// we follow the paper and default to *not* materializing a document node.
    pub document_node: bool,
}

impl Default for ShredOptions {
    fn default() -> Self {
        ShredOptions {
            strip_boundary_whitespace: true,
            document_node: false,
        }
    }
}

/// Errors produced while shredding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShredError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human readable description.
    pub message: String,
}

impl fmt::Display for ShredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ShredError {}

/// Shred an XML document text into its relational encoding.
pub fn shred(name: &str, xml: &str, opts: &ShredOptions) -> Result<Document, ShredError> {
    let mut p = Parser {
        input: xml.as_bytes(),
        pos: 0,
        builder: DocumentBuilder::new(name),
        opts: opts.clone(),
    };
    if opts.document_node {
        p.builder.start_element("#document");
    }
    p.parse_prolog()?;
    p.parse_element()?;
    p.skip_misc()?;
    if opts.document_node {
        p.builder.end_element();
    }
    if p.pos < p.input.len() {
        return Err(p.error("trailing content after document element"));
    }
    let mut doc = p.builder.finish();
    if opts.document_node {
        doc.set_kind(0, crate::node::NodeKind::Document);
    }
    Ok(doc)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    builder: DocumentBuilder,
    opts: ShredOptions,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: impl Into<String>) -> ShredError {
        ShredError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ShredError> {
        if self.starts_with(s) {
            self.bump(s.len());
            Ok(())
        } else {
            Err(self.error(format!("expected `{s}`")))
        }
    }

    fn read_until(&mut self, delim: &str) -> Result<&'a str, ShredError> {
        let start = self.pos;
        let hay = &self.input[self.pos..];
        match find_subslice(hay, delim.as_bytes()) {
            Some(off) => {
                self.pos += off + delim.len();
                Ok(std::str::from_utf8(&self.input[start..start + off])
                    .map_err(|_| self.error("invalid UTF-8"))?)
            }
            None => Err(self.error(format!("unterminated construct, missing `{delim}`"))),
        }
    }

    fn parse_prolog(&mut self) -> Result<(), ShredError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?xml") {
                self.read_until("?>")?;
            } else if self.starts_with("<!--") {
                self.bump(4);
                self.read_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                // skip a (possibly bracketed) DTD
                let mut depth = 0usize;
                while let Some(c) = self.peek() {
                    self.pos += 1;
                    match c {
                        b'[' | b'<' => depth += 1,
                        b']' => depth = depth.saturating_sub(1),
                        b'>' => {
                            if depth <= 1 {
                                break;
                            }
                            depth -= 1;
                        }
                        _ => {}
                    }
                }
            } else if self.starts_with("<?") {
                self.bump(2);
                let content = self.read_until("?>")?;
                let (target, rest) = split_name(content);
                self.builder
                    .processing_instruction(target, rest.trim_start());
            } else {
                return Ok(());
            }
        }
    }

    fn skip_misc(&mut self) -> Result<(), ShredError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.bump(4);
                self.read_until("-->")?;
            } else if self.starts_with("<?") {
                self.bump(2);
                self.read_until("?>")?;
            } else {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ShredError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.error("invalid UTF-8 in name"))?
            .to_string())
    }

    fn parse_element(&mut self) -> Result<(), ShredError> {
        self.expect("<")?;
        let name = self.parse_name()?;
        self.builder.start_element(&name);
        // attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    self.builder.end_element();
                    return Ok(());
                }
                Some(b'>') => {
                    self.bump(1);
                    break;
                }
                Some(_) => {
                    let aname = self.parse_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let quote = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.error("attribute value must be quoted"));
                    }
                    self.bump(1);
                    let raw = self.read_until(if quote == b'"' { "\"" } else { "'" })?;
                    self.builder.attribute(&aname, &decode_entities(raw));
                }
                None => return Err(self.error("unexpected end of input in start tag")),
            }
        }
        // content
        self.parse_content(&name)
    }

    fn parse_content(&mut self, open_name: &str) -> Result<(), ShredError> {
        let mut text = String::new();
        loop {
            if self.pos >= self.input.len() {
                return Err(self.error(format!("unexpected end of input inside <{open_name}>")));
            }
            if self.starts_with("</") {
                self.flush_text(&mut text);
                self.bump(2);
                let name = self.parse_name()?;
                if name != open_name {
                    return Err(
                        self.error(format!("mismatched end tag </{name}> for <{open_name}>"))
                    );
                }
                self.skip_ws();
                self.expect(">")?;
                self.builder.end_element();
                return Ok(());
            } else if self.starts_with("<!--") {
                self.flush_text(&mut text);
                self.bump(4);
                let c = self.read_until("-->")?;
                self.builder.comment(c);
            } else if self.starts_with("<![CDATA[") {
                self.bump(9);
                let c = self.read_until("]]>")?;
                text.push_str(c);
            } else if self.starts_with("<?") {
                self.flush_text(&mut text);
                self.bump(2);
                let content = self.read_until("?>")?;
                let (target, rest) = split_name(content);
                self.builder
                    .processing_instruction(target, rest.trim_start());
            } else if self.starts_with("<") {
                self.flush_text(&mut text);
                self.parse_element()?;
            } else {
                // character data up to the next markup
                let start = self.pos;
                while self.pos < self.input.len() && self.input[self.pos] != b'<' {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in text"))?;
                text.push_str(&decode_entities(raw));
            }
        }
    }

    fn flush_text(&mut self, text: &mut String) {
        if text.is_empty() {
            return;
        }
        let keep = if self.opts.strip_boundary_whitespace {
            !text.chars().all(char::is_whitespace)
        } else {
            true
        };
        if keep {
            self.builder.text(text);
        }
        text.clear();
    }
}

fn find_subslice(hay: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || hay.len() < needle.len() {
        return None;
    }
    (0..=hay.len() - needle.len()).find(|&i| &hay[i..i + needle.len()] == needle)
}

fn split_name(s: &str) -> (&str, &str) {
    match s.find(|c: char| c.is_whitespace()) {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    }
}

/// Decode the five predefined entities and numeric character references.
pub fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        if let Some(semi) = rest.find(';') {
            let ent = &rest[1..semi];
            let decoded = match ent {
                "lt" => Some('<'),
                "gt" => Some('>'),
                "amp" => Some('&'),
                "quot" => Some('"'),
                "apos" => Some('\''),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    u32::from_str_radix(&ent[2..], 16)
                        .ok()
                        .and_then(char::from_u32)
                }
                _ if ent.starts_with('#') => ent[1..].parse::<u32>().ok().and_then(char::from_u32),
                _ => None,
            };
            match decoded {
                Some(c) => {
                    out.push(c);
                    rest = &rest[semi + 1..];
                }
                None => {
                    out.push('&');
                    rest = &rest[1..];
                }
            }
        } else {
            out.push('&');
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    #[test]
    fn shreds_figure4_document() {
        let xml = "<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>";
        let d = shred("fig4", xml, &ShredOptions::default()).unwrap();
        assert_eq!(d.len(), 10);
        assert_eq!(d.size(0), 9);
        assert_eq!(d.size(5), 4);
        assert_eq!(d.level(9), 3);
        assert_eq!(d.name_of(7), "h");
        d.check_invariants().unwrap();
    }

    #[test]
    fn attributes_text_and_entities() {
        let xml = r#"<r a="1 &amp; 2"><x>he said &quot;hi&quot; &#65;</x><y b='2'/></r>"#;
        let d = shred("t", xml, &ShredOptions::default()).unwrap();
        assert_eq!(d.attribute(0, "a"), Some("1 & 2"));
        assert_eq!(d.string_value(1), "he said \"hi\" A");
        assert_eq!(d.attribute(3, "b"), Some("2"));
    }

    #[test]
    fn prolog_comments_cdata_pi() {
        let xml =
            "<?xml version=\"1.0\"?><!-- top --><r><![CDATA[a<b]]><!-- in --><?php echo?></r>";
        let d = shred("t", xml, &ShredOptions::default()).unwrap();
        assert_eq!(d.name_of(0), "r");
        assert_eq!(d.string_value(0), "a<b");
        let kinds: Vec<NodeKind> = (0..d.len() as u32).map(|p| d.kind(p)).collect();
        assert!(kinds.contains(&NodeKind::Comment));
        assert!(kinds.contains(&NodeKind::ProcessingInstruction));
    }

    #[test]
    fn boundary_whitespace_is_configurable() {
        let xml = "<r>\n  <x/>\n</r>";
        let stripped = shred("t", xml, &ShredOptions::default()).unwrap();
        assert_eq!(stripped.len(), 2);
        let kept = shred(
            "t",
            xml,
            &ShredOptions {
                strip_boundary_whitespace: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(kept.len(), 4);
    }

    #[test]
    fn errors_are_reported() {
        assert!(shred("t", "<a><b></a>", &ShredOptions::default()).is_err());
        assert!(shred("t", "<a>", &ShredOptions::default()).is_err());
        assert!(shred("t", "<a/><b/>", &ShredOptions::default()).is_err());
        assert!(shred("t", "<a x=1/>", &ShredOptions::default()).is_err());
    }

    #[test]
    fn doctype_is_skipped() {
        let xml = "<!DOCTYPE site SYSTEM \"auction.dtd\"><site><x/></site>";
        let d = shred("t", xml, &ShredOptions::default()).unwrap();
        assert_eq!(d.name_of(0), "site");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_entities_passthrough_and_malformed() {
        assert_eq!(decode_entities("plain"), "plain");
        assert_eq!(decode_entities("&unknown; &"), "&unknown; &");
        assert_eq!(decode_entities("&#x41;&#66;"), "AB");
    }
}
