//! The canonical read API over any container representation.
//!
//! Query scans, serialization and the naive comparator all read XML through
//! [`NodeRead`]: pre/size/level/kind plus name-id, text and attribute
//! cursors.  Two storage representations implement it —
//!
//! * [`Document`](crate::Document), the flat pre|size|level table produced
//!   by the shredder (and still used for the transient container holding
//!   constructed nodes and for content fragments), and
//! * [`PagedSnapshot`](crate::update::PagedSnapshot), the immutable
//!   published view of the paged store — the representation loaded
//!   documents live in, end-to-end.
//!
//! The `run_*` methods expose *storage runs* (logical pages) to the
//! staircase-join sweeps: a run is a maximal contiguous stretch of
//! preorder ranks stored together, and the per-run summaries (node-kind
//! mask, element-name set, minimum level) let a scan skip a whole page
//! when no node in it can match the node test — the page-level
//! bookkeeping of paper Section 5.2.  The flat [`Document`](crate::Document)
//! is a single run with an always-true summary, so the generic scan code
//! costs it one predictable branch per run, not per node.

use std::sync::Arc;

use mxq_engine::Dictionary;

use crate::node::{AttrRow, NodeKind};

/// Read access to one container in the pre|size|level encoding.
pub trait NodeRead {
    /// Number of nodes in the container (attributes excluded).
    fn len(&self) -> usize;
    /// `size(v)`: number of nodes in the subtree below `pre`.
    fn size(&self, pre: u32) -> u32;
    /// `level(v)`: distance from the fragment root.
    fn level(&self, pre: u32) -> u16;
    /// Node kind of `pre`.
    fn kind(&self, pre: u32) -> NodeKind;
    /// Element name / PI target of `pre` (empty for other kinds).
    fn name_of(&self, pre: u32) -> &str;
    /// Direct text content of a text/comment/PI node.
    fn text_of(&self, pre: u32) -> &str;
    /// Interned name id of an element (representation-specific numbering;
    /// only comparable against ids from the *same* container).
    fn qname_id(&self, pre: u32) -> Option<u32>;
    /// Resolve an element name to this container's interned id, if any
    /// element with the name exists.
    fn lookup_qname(&self, name: &str) -> Option<u32>;
    /// Value of attribute `name` on element `pre`.
    fn attribute(&self, pre: u32, name: &str) -> Option<&str>;
    /// All attributes of element `pre` as (name, value) pairs.
    fn attrs(&self, pre: u32) -> AttrsIter<'_>;
    /// Preorder ranks of the fragment roots (level-0 nodes).
    fn root_pres(&self) -> Vec<u32>;
    /// Preorder ranks (document order) of all elements named `name`, when
    /// the representation maintains a name index; `None` forces the caller
    /// onto the scanning path.
    fn named_elements(&self, name: &str) -> Option<Vec<u32>>;

    // -- storage runs (logical pages) ------------------------------------

    /// Last preorder rank of the storage run (page) containing `pre`.
    fn run_end(&self, pre: u32) -> u32 {
        debug_assert!((pre as usize) < self.len());
        self.len() as u32 - 1
    }
    /// May the run containing `pre` hold an element named `name`?
    /// (A `false` is a guarantee; `true` is only a maybe.)
    fn run_has_name(&self, _pre: u32, _name: &str) -> bool {
        true
    }
    /// May the run containing `pre` hold a node of `kind`?
    fn run_has_kind(&self, _pre: u32, _kind: NodeKind) -> bool {
        true
    }
    /// Smallest node level inside the run containing `pre`.
    fn run_min_level(&self, _pre: u32) -> u16 {
        0
    }

    // -- provided navigation ---------------------------------------------

    /// True if the container holds no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Postorder rank, recovered as `pre + size - level`.
    fn post(&self, pre: u32) -> i64 {
        pre as i64 + self.size(pre) as i64 - self.level(pre) as i64
    }

    /// Parent of `pre`: the closest preceding node with a smaller level.
    fn parent(&self, pre: u32) -> Option<u32> {
        let lv = self.level(pre);
        if lv == 0 {
            return None;
        }
        let mut v = pre;
        while v > 0 {
            v -= 1;
            if self.level(v) < lv {
                return Some(v);
            }
        }
        None
    }

    /// Iterate over the children of `pre` with size-based skipping.
    fn children(&self, pre: u32) -> Children<'_, Self>
    where
        Self: Sized,
    {
        Children {
            doc: self,
            next: pre + 1,
            end: pre + self.size(pre),
        }
    }

    /// Is `anc` a strict ancestor of `desc`?
    fn is_ancestor(&self, anc: u32, desc: u32) -> bool {
        anc < desc && desc <= anc + self.size(anc)
    }

    /// XQuery string value: concatenated descendant text content.
    fn string_value(&self, pre: u32) -> String {
        match self.kind(pre) {
            NodeKind::Text | NodeKind::Comment | NodeKind::ProcessingInstruction => {
                self.text_of(pre).to_string()
            }
            _ => {
                let mut out = String::new();
                let end = pre + self.size(pre);
                let mut v = pre + 1;
                while v <= end {
                    if self.kind(v) == NodeKind::Text {
                        out.push_str(self.text_of(v));
                    }
                    v += 1;
                }
                out
            }
        }
    }
}

/// Iterator over the children of a node for any [`NodeRead`].
pub struct Children<'a, D> {
    doc: &'a D,
    next: u32,
    end: u32,
}

impl<D: NodeRead> Iterator for Children<'_, D> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.next > self.end || self.next as usize >= self.doc.len() {
            return None;
        }
        let cur = self.next;
        self.next = cur + self.doc.size(cur) + 1;
        Some(cur)
    }
}

/// Iterator over the attributes of one element, unifying the three
/// attribute storages: [`AttrRow`] slices (flat documents), inline
/// name/value pairs (page tuples) and the dictionary-encoded attribute
/// columns (the paged read view).
pub enum AttrsIter<'a> {
    /// Attribute rows of a flat [`Document`](crate::Document).
    Rows(std::slice::Iter<'a, AttrRow>),
    /// Inline (name, value) pairs of a page tuple.
    Pairs(std::slice::Iter<'a, (Arc<str>, Arc<str>)>),
    /// A slice of the dictionary-encoded attribute columns — both the names
    /// and the values resolve through shared sorted dictionaries.
    Dict {
        /// Attribute-name dictionary.
        names: &'a Dictionary,
        /// Name codes of the owner's attribute rows.
        codes: &'a [u32],
        /// Attribute-value dictionary.
        values: &'a Dictionary,
        /// Value codes of the owner's attribute rows.
        value_codes: &'a [u32],
        /// Cursor into `codes`/`value_codes`.
        idx: usize,
    },
}

impl<'a> Iterator for AttrsIter<'a> {
    type Item = (&'a Arc<str>, &'a Arc<str>);

    fn next(&mut self) -> Option<(&'a Arc<str>, &'a Arc<str>)> {
        match self {
            AttrsIter::Rows(it) => it.next().map(|a| (&a.name, &a.value)),
            AttrsIter::Pairs(it) => it.next().map(|(n, v)| (n, v)),
            AttrsIter::Dict {
                names,
                codes,
                values,
                value_codes,
                idx,
            } => {
                if *idx >= codes.len() {
                    return None;
                }
                let i = *idx;
                *idx += 1;
                Some((names.str_of(codes[i]), values.str_of(value_codes[i])))
            }
        }
    }
}
