//! The pre|size|level document encoding and its builder.
//!
//! A [`Document`] is the relational image of an XML tree (Figure 4 of the
//! paper): node `v` is the row at index `pre(v)`, carrying `size(v)` (number
//! of descendants), `level(v)` (depth) and a node-kind discriminator plus a
//! reference into the per-kind property containers.  A document container may
//! hold several disjoint fragments (used for the transient container that
//! stores constructed nodes); the `frag_roots` list records where each
//! fragment starts.

use std::collections::HashMap;
use std::sync::Arc;

use crate::node::{AttrRow, NodeKind};
use crate::read::{AttrsIter, NodeRead};

/// A document container: structural table + property containers.
#[derive(Debug, Clone, Default)]
pub struct Document {
    /// Document (container) name, e.g. the URI passed to `fn:doc`.
    pub name: String,
    size: Vec<u32>,
    level: Vec<u16>,
    kind: Vec<NodeKind>,
    /// Reference into the property container appropriate for `kind`.
    prop: Vec<u32>,
    /// Interned qualified names (elements).
    qnames: Vec<Arc<str>>,
    qname_ids: HashMap<Arc<str>, u32>,
    /// Element name index: qname id → preorder ranks of elements with that
    /// name, in document order (the "index on element names" of Figure 9,
    /// used by the nametest pushdown of Section 3.2).
    name_index: HashMap<u32, Vec<u32>>,
    /// Text/comment/PI content, indexed by `prop`.
    texts: Vec<Arc<str>>,
    /// Processing instruction targets (parallel to `texts` for PI nodes).
    pi_targets: Vec<Arc<str>>,
    /// Attributes, sorted by owner preorder rank.
    attrs: Vec<AttrRow>,
    /// Preorder ranks at which the disjoint tree fragments of this container
    /// start (a freshly shredded document has a single fragment at 0).
    frag_roots: Vec<u32>,
}

impl Document {
    /// Create an empty container with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Document {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Number of nodes in the container (attributes excluded).
    pub fn len(&self) -> usize {
        self.size.len()
    }

    /// True if the container holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.size.is_empty()
    }

    /// Number of attributes stored in the attribute container.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// `size(v)`: number of nodes in the subtree below `pre` (excluding `pre`).
    pub fn size(&self, pre: u32) -> u32 {
        self.size[pre as usize]
    }

    /// `level(v)`: distance from the fragment root.
    pub fn level(&self, pre: u32) -> u16 {
        self.level[pre as usize]
    }

    /// Postorder rank, recovered as `pre + size - level` (Section 2).
    pub fn post(&self, pre: u32) -> i64 {
        pre as i64 + self.size(pre) as i64 - self.level(pre) as i64
    }

    /// Node kind of `pre`.
    pub fn kind(&self, pre: u32) -> NodeKind {
        self.kind[pre as usize]
    }

    /// Element name of `pre` (empty string for non-elements).
    pub fn name_of(&self, pre: u32) -> &str {
        match self.kind(pre) {
            NodeKind::Element => &self.qnames[self.prop[pre as usize] as usize],
            NodeKind::ProcessingInstruction => &self.pi_targets[self.prop[pre as usize] as usize],
            _ => "",
        }
    }

    /// Direct text content of a text/comment/PI node (not the recursive
    /// string value — see [`Document::string_value`]).
    pub fn text_of(&self, pre: u32) -> &str {
        match self.kind(pre) {
            NodeKind::Text | NodeKind::Comment | NodeKind::ProcessingInstruction => {
                &self.texts[self.prop[pre as usize] as usize]
            }
            _ => "",
        }
    }

    /// XQuery string value: concatenation of all descendant text nodes in
    /// document order (a single sequential scan over the subtree).
    pub fn string_value(&self, pre: u32) -> String {
        match self.kind(pre) {
            NodeKind::Text | NodeKind::Comment | NodeKind::ProcessingInstruction => {
                self.text_of(pre).to_string()
            }
            _ => {
                let mut out = String::new();
                let end = pre + self.size(pre);
                let mut v = pre + 1;
                while v <= end {
                    if self.kind(v) == NodeKind::Text {
                        out.push_str(self.text_of(v));
                    }
                    v += 1;
                }
                out
            }
        }
    }

    /// All attributes of element `pre` (empty slice for non-elements).
    pub fn attributes(&self, pre: u32) -> &[AttrRow] {
        let start = self.attrs.partition_point(|a| a.owner < pre);
        let end = self.attrs.partition_point(|a| a.owner <= pre);
        &self.attrs[start..end]
    }

    /// Value of the attribute `name` on element `pre`, if present.
    pub fn attribute(&self, pre: u32, name: &str) -> Option<&str> {
        self.attributes(pre)
            .iter()
            .find(|a| a.name.as_ref() == name)
            .map(|a| a.value.as_ref())
    }

    /// All attribute rows (for bulk relational access).
    pub fn all_attributes(&self) -> &[AttrRow] {
        &self.attrs
    }

    /// Preorder ranks of the fragment roots in this container.
    pub fn fragment_roots(&self) -> &[u32] {
        &self.frag_roots
    }

    /// Parent of `pre`, or `None` for a fragment root.  Found by scanning
    /// backwards for the closest preceding node with a smaller level — the
    /// standard pre/level parent recovery.
    pub fn parent(&self, pre: u32) -> Option<u32> {
        let lv = self.level(pre);
        if lv == 0 {
            return None;
        }
        let mut v = pre;
        while v > 0 {
            v -= 1;
            if self.level(v) < lv {
                return Some(v);
            }
        }
        None
    }

    /// Iterate over the children of `pre` using the size-based skipping of
    /// Section 2: the first child is `pre + 1`, each next child is
    /// `v + size(v) + 1`.
    pub fn children(&self, pre: u32) -> ChildIter<'_> {
        let end = pre + self.size(pre);
        ChildIter {
            doc: self,
            next: pre + 1,
            end,
        }
    }

    /// Is `anc` an ancestor of `desc` (strictly)?  Uses the pre/size window.
    pub fn is_ancestor(&self, anc: u32, desc: u32) -> bool {
        anc < desc && desc <= anc + self.size(anc)
    }

    /// The root of the fragment containing `pre` (level-0 ancestor-or-self).
    pub fn fragment_root_of(&self, pre: u32) -> u32 {
        // fragment roots are sorted; find the last one <= pre
        match self.frag_roots.binary_search(&pre) {
            Ok(_) => pre,
            Err(ins) => self.frag_roots[ins - 1],
        }
    }

    /// Append a whole subtree copied from another container (deep copy).
    /// The structural rows are copied verbatim with levels re-based;
    /// properties are re-interned.  Returns the preorder rank of the copied
    /// root in `self`.  This is the "pasting of encodings" used for element
    /// construction (Sections 2 and 5.1); generic over [`NodeRead`], so
    /// content copies from the paged store never materialize a flat
    /// intermediate.
    pub fn copy_subtree<D: NodeRead>(&mut self, src: &D, src_pre: u32, level_base: u16) -> u32 {
        let root_new = self.len() as u32;
        let src_level_base = src.level(src_pre);
        let end = src_pre + src.size(src_pre);
        for v in src_pre..=end {
            let new_level = level_base + (src.level(v) - src_level_base);
            match src.kind(v) {
                NodeKind::Element | NodeKind::Document => {
                    let name: Arc<str> = if src.kind(v) == NodeKind::Document {
                        Arc::from("#document")
                    } else {
                        Arc::from(src.name_of(v))
                    };
                    let qid = self.intern_qname(name);
                    self.push_row(src.size(v), new_level, NodeKind::Element, qid);
                }
                NodeKind::Text => {
                    let tid = self.push_text(src.text_of(v));
                    self.push_row(0, new_level, NodeKind::Text, tid);
                }
                NodeKind::Comment => {
                    let tid = self.push_text(src.text_of(v));
                    self.push_row(0, new_level, NodeKind::Comment, tid);
                }
                NodeKind::ProcessingInstruction => {
                    let tid = self.push_text(src.text_of(v));
                    self.pi_targets.resize(tid as usize, Arc::from(""));
                    self.pi_targets.push(Arc::from(src.name_of(v)));
                    self.push_row(0, new_level, NodeKind::ProcessingInstruction, tid);
                }
            }
            // shallow-copied attributes keep their values
            let new_pre = self.len() as u32 - 1;
            for (name, value) in src.attrs(v) {
                self.attrs.push(AttrRow {
                    owner: new_pre,
                    name: name.clone(),
                    value: value.clone(),
                });
            }
        }
        root_new
    }

    /// Register the start of a new fragment at the given preorder rank.
    pub fn add_fragment_root(&mut self, pre: u32) {
        self.frag_roots.push(pre);
    }

    /// Preorder ranks (in document order) of all elements named `name`.
    /// Returns an empty slice when no element with this name exists.
    pub fn elements_named(&self, name: &str) -> &[u32] {
        self.lookup_qname(name)
            .and_then(|qid| self.name_index.get(&qid))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Preorder ranks of all text nodes (document order).
    pub fn text_nodes(&self) -> Vec<u32> {
        (0..self.len() as u32)
            .filter(|&p| self.kind(p) == NodeKind::Text)
            .collect()
    }

    pub(crate) fn push_row(&mut self, size: u32, level: u16, kind: NodeKind, prop: u32) {
        if kind == NodeKind::Element {
            self.name_index
                .entry(prop)
                .or_default()
                .push(self.size.len() as u32);
        }
        self.size.push(size);
        self.level.push(level);
        self.kind.push(kind);
        self.prop.push(prop);
    }

    pub(crate) fn set_size(&mut self, pre: u32, size: u32) {
        self.size[pre as usize] = size;
    }

    pub(crate) fn set_kind(&mut self, pre: u32, kind: NodeKind) {
        self.kind[pre as usize] = kind;
    }

    pub(crate) fn intern_qname(&mut self, name: Arc<str>) -> u32 {
        if let Some(&id) = self.qname_ids.get(&name) {
            return id;
        }
        let id = self.qnames.len() as u32;
        self.qnames.push(name.clone());
        self.qname_ids.insert(name, id);
        id
    }

    pub(crate) fn push_text(&mut self, text: &str) -> u32 {
        let id = self.texts.len() as u32;
        self.texts.push(Arc::from(text));
        id
    }

    pub(crate) fn push_attr(&mut self, owner: u32, name: Arc<str>, value: Arc<str>) {
        self.attrs.push(AttrRow { owner, name, value });
    }

    /// Value update: replace the textual content of a text/comment/PI node
    /// (Section 5.2, "value updates map trivially to relational updates").
    pub fn set_text(&mut self, pre: u32, content: &str) {
        match self.kind(pre) {
            NodeKind::Text | NodeKind::Comment | NodeKind::ProcessingInstruction => {
                let id = self.prop[pre as usize] as usize;
                self.texts[id] = Arc::from(content);
            }
            _ => {}
        }
    }

    /// Value update: set (or insert) an attribute on element `pre`.
    pub fn set_attribute(&mut self, pre: u32, name: &str, value: &str) {
        if let Some(a) = self
            .attrs
            .iter_mut()
            .find(|a| a.owner == pre && a.name.as_ref() == name)
        {
            a.value = Arc::from(value);
            return;
        }
        let insert_at = self.attrs.partition_point(|a| a.owner <= pre);
        self.attrs.insert(
            insert_at,
            AttrRow {
                owner: pre,
                name: Arc::from(name),
                value: Arc::from(value),
            },
        );
    }

    /// Value update: remove an attribute from element `pre` (no-op if absent).
    pub fn remove_attribute(&mut self, pre: u32, name: &str) {
        self.attrs
            .retain(|a| !(a.owner == pre && a.name.as_ref() == name));
    }

    /// Value update: rename an element node.  Keeps the element-name index
    /// consistent so nametest pushdown stays correct after the rename.
    pub fn rename_element(&mut self, pre: u32, name: &str) {
        if self.kind(pre) == NodeKind::Element {
            let old = self.prop[pre as usize];
            let qid = self.intern_qname(Arc::from(name));
            if old == qid {
                return;
            }
            self.prop[pre as usize] = qid;
            if let Some(v) = self.name_index.get_mut(&old) {
                v.retain(|&p| p != pre);
            }
            let v = self.name_index.entry(qid).or_default();
            let at = v.partition_point(|&p| p < pre);
            v.insert(at, pre);
        }
    }

    /// Qualified-name id of an element (internal, used by the staircase
    /// nametest pushdown to pre-filter candidates without string compares).
    pub fn qname_id(&self, pre: u32) -> Option<u32> {
        match self.kind(pre) {
            NodeKind::Element => Some(self.prop[pre as usize]),
            _ => None,
        }
    }

    /// Look up the id of an interned element name, if any element with this
    /// name exists in the container.
    pub fn lookup_qname(&self, name: &str) -> Option<u32> {
        self.qname_ids.get(name).copied()
    }

    /// Sanity check of the structural invariants:
    /// * `size(v) < len - v` for all v (subtrees stay in bounds),
    /// * children are nested properly (every node's subtree is contained in
    ///   its parent's subtree),
    /// * levels increase by exactly one from parent to child.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.len() as u32;
        for v in 0..n {
            let end = v + self.size(v);
            if end >= n && self.size(v) != 0 && end > n - 1 {
                return Err(format!("node {v} subtree exceeds document ({end} >= {n})"));
            }
            for c in self.children(v) {
                if self.level(c) != self.level(v) + 1 {
                    return Err(format!(
                        "child {c} of {v} has level {} expected {}",
                        self.level(c),
                        self.level(v) + 1
                    ));
                }
                if c + self.size(c) > end {
                    return Err(format!("child {c} subtree leaves parent {v} subtree"));
                }
            }
        }
        Ok(())
    }
}

/// The canonical read API over a flat document: a single storage run with
/// always-true page summaries (see [`NodeRead`]'s `run_*` defaults).
impl NodeRead for Document {
    fn len(&self) -> usize {
        Document::len(self)
    }
    fn size(&self, pre: u32) -> u32 {
        Document::size(self, pre)
    }
    fn level(&self, pre: u32) -> u16 {
        Document::level(self, pre)
    }
    fn kind(&self, pre: u32) -> NodeKind {
        Document::kind(self, pre)
    }
    fn name_of(&self, pre: u32) -> &str {
        Document::name_of(self, pre)
    }
    fn text_of(&self, pre: u32) -> &str {
        Document::text_of(self, pre)
    }
    fn qname_id(&self, pre: u32) -> Option<u32> {
        Document::qname_id(self, pre)
    }
    fn lookup_qname(&self, name: &str) -> Option<u32> {
        Document::lookup_qname(self, name)
    }
    fn attribute(&self, pre: u32, name: &str) -> Option<&str> {
        Document::attribute(self, pre, name)
    }
    fn attrs(&self, pre: u32) -> AttrsIter<'_> {
        AttrsIter::Rows(self.attributes(pre).iter())
    }
    fn root_pres(&self) -> Vec<u32> {
        self.frag_roots.clone()
    }
    fn named_elements(&self, name: &str) -> Option<Vec<u32>> {
        Some(self.elements_named(name).to_vec())
    }
    fn parent(&self, pre: u32) -> Option<u32> {
        Document::parent(self, pre)
    }
    fn string_value(&self, pre: u32) -> String {
        Document::string_value(self, pre)
    }
}

/// Iterator over the children of a node (size-based skipping).
pub struct ChildIter<'a> {
    doc: &'a Document,
    next: u32,
    end: u32,
}

impl Iterator for ChildIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.next > self.end || self.next as usize >= self.doc.len() {
            return None;
        }
        let cur = self.next;
        self.next = cur + self.doc.size(cur) + 1;
        Some(cur)
    }
}

/// Incremental builder used by the shredder and by element construction.
///
/// The builder produces rows in preorder, patching each element's `size` when
/// it is closed — a purely sequential write pattern, which is why shredding
/// scales linearly (Section 6, "Shredding and Serialization").
#[derive(Debug)]
pub struct DocumentBuilder {
    doc: Document,
    /// Stack of open element pre ranks.
    open: Vec<u32>,
    level: u16,
    base_level: u16,
}

impl DocumentBuilder {
    /// Start building a fresh document container.
    pub fn new(name: impl Into<String>) -> Self {
        DocumentBuilder {
            doc: Document::new(name),
            open: Vec::new(),
            level: 0,
            base_level: 0,
        }
    }

    /// Continue building *into* an existing container (used by the transient
    /// container: each constructed tree becomes a new fragment).
    pub fn append_to(doc: Document, base_level: u16) -> Self {
        DocumentBuilder {
            doc,
            open: Vec::new(),
            level: base_level,
            base_level,
        }
    }

    /// Preorder rank the next node will receive.
    pub fn next_pre(&self) -> u32 {
        self.doc.len() as u32
    }

    /// Open an element with the given name; returns its preorder rank.
    pub fn start_element(&mut self, name: &str) -> u32 {
        let pre = self.doc.len() as u32;
        if self.open.is_empty() && self.level == self.base_level {
            self.doc.add_fragment_root(pre);
        }
        let qid = self.doc.intern_qname(Arc::from(name));
        self.doc.push_row(0, self.level, NodeKind::Element, qid);
        self.open.push(pre);
        self.level += 1;
        pre
    }

    /// Add an attribute to the currently open element.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn attribute(&mut self, name: &str, value: &str) {
        let owner = *self.open.last().expect("attribute outside of element");
        self.doc.push_attr(owner, Arc::from(name), Arc::from(value));
    }

    /// Close the most recently opened element.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn end_element(&mut self) {
        let pre = self.open.pop().expect("end_element without start_element");
        self.level -= 1;
        let size = self.doc.len() as u32 - pre - 1;
        self.doc.set_size(pre, size);
    }

    /// Add a text node; returns its preorder rank.
    pub fn text(&mut self, content: &str) -> u32 {
        let pre = self.doc.len() as u32;
        if self.open.is_empty() && self.level == self.base_level {
            self.doc.add_fragment_root(pre);
        }
        let tid = self.doc.push_text(content);
        self.doc.push_row(0, self.level, NodeKind::Text, tid);
        pre
    }

    /// Add a comment node.
    pub fn comment(&mut self, content: &str) -> u32 {
        let pre = self.doc.len() as u32;
        let tid = self.doc.push_text(content);
        self.doc.push_row(0, self.level, NodeKind::Comment, tid);
        pre
    }

    /// Add a processing instruction node.
    pub fn processing_instruction(&mut self, target: &str, content: &str) -> u32 {
        let pre = self.doc.len() as u32;
        let tid = self.doc.push_text(content);
        // keep pi_targets addressable by the same prop id
        while self.doc.pi_targets.len() < tid as usize {
            self.doc.pi_targets.push(Arc::from(""));
        }
        self.doc.pi_targets.push(Arc::from(target));
        self.doc
            .push_row(0, self.level, NodeKind::ProcessingInstruction, tid);
        pre
    }

    /// Deep-copy a subtree from another container as a child of the currently
    /// open element (or as a new fragment if nothing is open).
    pub fn copy_subtree<D: NodeRead>(&mut self, src: &D, src_pre: u32) -> u32 {
        let pre = self.doc.len() as u32;
        if self.open.is_empty() && self.level == self.base_level {
            self.doc.add_fragment_root(pre);
        }
        self.doc.copy_subtree(src, src_pre, self.level)
    }

    /// Number of elements still open.
    pub fn open_depth(&self) -> usize {
        self.open.len()
    }

    /// Finish building and return the document.
    ///
    /// # Panics
    /// Panics if elements are still open.
    pub fn finish(self) -> Document {
        assert!(
            self.open.is_empty(),
            "unbalanced builder: {} elements still open",
            self.open.len()
        );
        self.doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the ten-node example document of Figure 4 of the paper.
    pub(crate) fn figure4() -> Document {
        let mut b = DocumentBuilder::new("fig4");
        b.start_element("a"); // 0
        b.start_element("b"); // 1
        b.start_element("c"); // 2
        b.start_element("d"); // 3
        b.end_element();
        b.start_element("e"); // 4
        b.end_element();
        b.end_element();
        b.end_element();
        b.start_element("f"); // 5
        b.start_element("g"); // 6
        b.end_element();
        b.start_element("h"); // 7
        b.start_element("i"); // 8
        b.end_element();
        b.start_element("j"); // 9
        b.end_element();
        b.end_element();
        b.end_element();
        b.end_element();
        b.finish()
    }

    #[test]
    fn figure4_encoding_matches_paper() {
        let d = figure4();
        assert_eq!(d.len(), 10);
        // pre, size, level from Figure 4
        let expected: [(u32, u32, u16); 10] = [
            (0, 9, 0),
            (1, 3, 1),
            (2, 2, 2),
            (3, 0, 3),
            (4, 0, 3),
            (5, 4, 1),
            (6, 0, 2),
            (7, 2, 2),
            (8, 0, 3),
            (9, 0, 3),
        ];
        for (pre, size, level) in expected {
            assert_eq!(d.size(pre), size, "size of {pre}");
            assert_eq!(d.level(pre), level, "level of {pre}");
        }
        // post(v) = pre + size - level, e.g. post(a)=9, post(b)=3, post(f)=8
        assert_eq!(d.post(0), 9);
        assert_eq!(d.post(1), 3);
        assert_eq!(d.post(5), 8);
        d.check_invariants().unwrap();
    }

    #[test]
    fn children_iteration_skips_subtrees() {
        let d = figure4();
        let kids: Vec<u32> = d.children(0).collect();
        assert_eq!(kids, vec![1, 5]);
        let kids: Vec<u32> = d.children(7).collect();
        assert_eq!(kids, vec![8, 9]);
        assert!(d.children(3).next().is_none());
    }

    #[test]
    fn parent_and_ancestor() {
        let d = figure4();
        assert_eq!(d.parent(4), Some(2));
        assert_eq!(d.parent(5), Some(0));
        assert_eq!(d.parent(0), None);
        assert!(d.is_ancestor(0, 9));
        assert!(d.is_ancestor(7, 8));
        assert!(!d.is_ancestor(1, 5));
    }

    #[test]
    fn names_attributes_and_text() {
        let mut b = DocumentBuilder::new("t");
        b.start_element("root");
        b.attribute("id", "r1");
        b.start_element("x");
        b.text("hello ");
        b.end_element();
        b.start_element("x");
        b.text("world");
        b.end_element();
        b.end_element();
        let d = b.finish();
        assert_eq!(d.name_of(0), "root");
        assert_eq!(d.attribute(0, "id"), Some("r1"));
        assert_eq!(d.attribute(0, "missing"), None);
        assert_eq!(d.string_value(0), "hello world");
        assert_eq!(d.string_value(2), "hello ");
    }

    #[test]
    fn copy_subtree_pastes_encoding() {
        let d = figure4();
        let mut t = Document::new("transient");
        let root = t.copy_subtree(&d, 7, 0);
        assert_eq!(root, 0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.name_of(0), "h");
        assert_eq!(t.size(0), 2);
        assert_eq!(t.level(1), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn builder_fragments_in_transient_container() {
        let t = Document::new("transient");
        let mut b = DocumentBuilder::append_to(t, 0);
        b.start_element("one");
        b.end_element();
        b.start_element("two");
        b.text("x");
        b.end_element();
        let t = b.finish();
        assert_eq!(t.fragment_roots(), &[0, 1]);
        assert_eq!(t.fragment_root_of(2), 1);
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_builder_panics() {
        let mut b = DocumentBuilder::new("bad");
        b.start_element("open");
        let _ = b.finish();
    }
}
