//! Structural updates on the pre|size|level encoding (Section 5.2, Fig. 10/11).
//!
//! A subtree insert shifts the `pre` rank of every following node and grows
//! the `size` of every ancestor.  The paper's remedy is an indirection layer:
//!
//! * the document is divided into **logical pages** of a power-of-two number
//!   of tuples, each page shredded with a configurable percentage of unused
//!   tuples;
//! * the physical table is append-only (`rid` order); a **page map** lists the
//!   pages in logical (`pre`) order, so inserting a page "in the middle" only
//!   appends tuples and adds a page-map entry;
//! * deletes leave unused tuples in place; inserts that fit a page's free
//!   space touch only that page; larger inserts split the page and append
//!   fresh pages, themselves filled only to the configured fill factor so
//!   later inserts in the same region keep finding free slots;
//! * `size` maintenance uses deltas so the root need not stay locked.
//!
//! Two implementations are provided so the ablation experiment (E9 in
//! DESIGN.md) can compare them:
//!
//! * [`PagedDocument`] — the paper's scheme; counts pages touched.
//! * [`NaiveDocument`] — textbook renumbering; counts tuples moved.
//!
//! Both expose the same update-primitive surface through the
//! [`StructuralUpdate`] trait — the operations the XQuery Update Facility
//! subset of `mxq-xquery` compiles to: child/sibling inserts, subtree
//! deletion and replacement, value replacement, renames and attribute
//! patching.  The naive scheme doubles as the differential-testing reference
//! for the paged one.

use std::collections::HashMap;
use std::sync::Arc;

use crate::columns::{kind_code, DocumentColumns};
use crate::doc::{Document, DocumentBuilder};
use crate::node::NodeKind;
use crate::read::{AttrsIter, NodeRead};

/// Cost counters accumulated by the update schemes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Number of tuples written (inserted, moved or size-adjusted).
    pub tuples_written: u64,
    /// Number of logical pages whose contents were modified.
    pub pages_touched: u64,
    /// Number of logical pages newly allocated (appended to the rid table).
    pub pages_allocated: u64,
    /// The page fill factor the scheme was configured with (percent of each
    /// page used at shredding/split time; 100 for the naive scheme, which
    /// has no free-space notion).
    pub fill_percent: u8,
}

impl UpdateStats {
    /// Counter increments since `earlier` (the fill factor is carried over
    /// unchanged — it is configuration, not a counter).
    pub fn delta_since(&self, earlier: &UpdateStats) -> UpdateStats {
        UpdateStats {
            tuples_written: self.tuples_written - earlier.tuples_written,
            pages_touched: self.pages_touched - earlier.pages_touched,
            pages_allocated: self.pages_allocated - earlier.pages_allocated,
            fill_percent: self.fill_percent,
        }
    }

    /// Field-wise sum of two counter sets (used when aggregating the deltas
    /// of several updated documents into one report).
    pub fn accumulate(&mut self, other: &UpdateStats) {
        self.tuples_written += other.tuples_written;
        self.pages_touched += other.pages_touched;
        self.pages_allocated += other.pages_allocated;
        self.fill_percent = self.fill_percent.max(other.fill_percent);
    }
}

/// The update-primitive surface shared by the paged and the naive scheme.
///
/// All positions are *logical* preorder ranks in the current document state.
/// Inserted fragments may hold several fragment roots (a sequence of nodes);
/// their levels are re-based onto the insertion point.
pub trait StructuralUpdate {
    /// Number of nodes in the logical view.
    fn node_count(&self) -> usize;
    /// Node kind at logical position `pre`.
    fn node_kind(&self, pre: u32) -> NodeKind;
    /// Subtree size at logical position `pre`.
    fn node_size(&self, pre: u32) -> u32;
    /// Depth at logical position `pre`.
    fn node_level(&self, pre: u32) -> u16;
    /// Parent of `pre`, or `None` for a fragment root.
    fn node_parent(&self, pre: u32) -> Option<u32>;
    /// Insert `fragment` as the first child of the element at `parent_pre`.
    fn insert_first_child(&mut self, parent_pre: u32, fragment: &Document);
    /// Insert `fragment` as the last child of the element at `parent_pre`.
    fn insert_last_child(&mut self, parent_pre: u32, fragment: &Document);
    /// Insert `fragment` as the preceding sibling(s) of the node at `pre`.
    fn insert_before(&mut self, pre: u32, fragment: &Document);
    /// Insert `fragment` at logical position `pos` with the given level
    /// (the enclosing ancestors are recovered from the level structure).
    /// This is `insert_before` with an explicit position/level, usable even
    /// when the anchor node itself was removed by an earlier primitive.
    fn insert_at(&mut self, pos: u32, level: u16, fragment: &Document);
    /// Insert `fragment` as the following sibling(s) of the node at `pre`.
    fn insert_after(&mut self, pre: u32, fragment: &Document);
    /// Delete the subtree rooted at `pre`.
    fn delete_subtree(&mut self, pre: u32);
    /// Replace the subtree rooted at `pre` with `fragment`.
    fn replace_subtree(&mut self, pre: u32, fragment: &Document);
    /// Replace the value of the node at `pre`: the text content of a
    /// text/comment/PI node, or the entire content of an element (all
    /// children are replaced by a single text node, or nothing for "").
    fn replace_value(&mut self, pre: u32, text: &str);
    /// Rename the element or processing instruction at `pre`.
    fn rename(&mut self, pre: u32, name: &str);
    /// Set (or insert) an attribute on the element at `pre`.
    fn set_attribute(&mut self, pre: u32, name: &str, value: &str);
    /// Remove an attribute from the element at `pre` (no-op if absent).
    fn remove_attribute(&mut self, pre: u32, name: &str);
    /// Rename an attribute of the element at `pre` (no-op if absent).
    fn rename_attribute(&mut self, pre: u32, name: &str, new_name: &str);
    /// Materialize the logical view as a read-only [`Document`].
    fn to_document(&self) -> Document;
    /// Accumulated cost counters.
    fn update_stats(&self) -> UpdateStats;
}

/// One tuple of the updatable representation, carrying its node properties
/// inline (the property containers of a read-only [`Document`] are rebuilt on
/// materialization).
#[derive(Debug, Clone)]
pub(crate) struct Tuple {
    pub(crate) size: u32,
    pub(crate) level: u16,
    pub(crate) kind: NodeKind,
    /// Element name, PI target, or `#document` for document nodes.
    pub(crate) name: Arc<str>,
    /// Text content (text/comment/PI nodes).
    pub(crate) text: Arc<str>,
    /// Attributes of an element node.
    pub(crate) attrs: Vec<(Arc<str>, Arc<str>)>,
}

pub(crate) fn tuples_of(doc: &Document) -> Vec<Tuple> {
    (0..doc.len() as u32)
        .map(|pre| Tuple {
            size: doc.size(pre),
            level: doc.level(pre),
            kind: doc.kind(pre),
            name: match doc.kind(pre) {
                NodeKind::Document => Arc::from("#document"),
                _ => Arc::from(doc.name_of(pre)),
            },
            text: Arc::from(doc.text_of(pre)),
            attrs: doc
                .attributes(pre)
                .iter()
                .map(|a| (a.name.clone(), a.value.clone()))
                .collect(),
        })
        .collect()
}

/// Fragment tuples with their levels re-based onto `level_base`.
fn rebased_tuples(fragment: &Document, level_base: u16) -> Vec<Tuple> {
    tuples_of(fragment)
        .into_iter()
        .map(|mut t| {
            t.level += level_base;
            t
        })
        .collect()
}

/// Rebuild a read-only [`Document`] from a preorder tuple stream.  Built
/// through [`DocumentBuilder`] so all property containers (qname index,
/// PI targets, attribute rows) are re-established and subtree sizes are
/// recomputed from the level structure.
pub(crate) fn materialize(name: &str, tuples: impl Iterator<Item = Tuple>) -> Document {
    let mut b = DocumentBuilder::new(name);
    // stack of open element levels
    let mut open: Vec<u16> = Vec::new();
    // preorder ranks that must become document-kind nodes
    let mut doc_nodes: Vec<u32> = Vec::new();
    for t in tuples {
        while let Some(&lv) = open.last() {
            if t.level <= lv {
                b.end_element();
                open.pop();
            } else {
                break;
            }
        }
        match t.kind {
            NodeKind::Element | NodeKind::Document => {
                let pre = b.start_element(&t.name);
                if t.kind == NodeKind::Document {
                    doc_nodes.push(pre);
                }
                for (n, v) in &t.attrs {
                    b.attribute(n, v);
                }
                open.push(t.level);
            }
            NodeKind::Text => {
                b.text(&t.text);
            }
            NodeKind::Comment => {
                b.comment(&t.text);
            }
            NodeKind::ProcessingInstruction => {
                b.processing_instruction(&t.name, &t.text);
            }
        }
    }
    while open.pop().is_some() {
        b.end_element();
    }
    let mut doc = b.finish();
    for pre in doc_nodes {
        doc.set_kind(pre, NodeKind::Document);
    }
    doc
}

// ---------------------------------------------------------------------------
// Naive renumbering baseline
// ---------------------------------------------------------------------------

/// Baseline updatable document: a flat tuple vector where every structural
/// update splices and renumbers, moving O(N) tuples.
#[derive(Debug, Clone)]
pub struct NaiveDocument {
    name: String,
    tuples: Vec<Tuple>,
    /// Accumulated costs.
    pub stats: UpdateStats,
}

impl NaiveDocument {
    /// Wrap an existing document.
    pub fn from_document(doc: &Document) -> Self {
        NaiveDocument {
            name: doc.name.clone(),
            tuples: tuples_of(doc),
            stats: UpdateStats {
                fill_percent: 100,
                ..UpdateStats::default()
            },
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Node kind at logical position `pre`.
    pub fn kind(&self, pre: u32) -> NodeKind {
        self.tuples[pre as usize].kind
    }

    /// Subtree size of the node at `pre`.
    pub fn size(&self, pre: u32) -> u32 {
        self.tuples[pre as usize].size
    }

    /// Level (depth) of the node at `pre`.
    pub fn level(&self, pre: u32) -> u16 {
        self.tuples[pre as usize].level
    }

    fn parent(&self, pre: u32) -> Option<u32> {
        self.anchor_before(pre, self.tuples[pre as usize].level)
    }

    /// Closest node before position `pos` whose level is smaller than
    /// `level` — the parent a node inserted at `(pos, level)` would get.
    fn anchor_before(&self, pos: u32, level: u16) -> Option<u32> {
        if level == 0 {
            return None;
        }
        (0..pos)
            .rev()
            .find(|&v| self.tuples[v as usize].level < level)
    }

    fn assert_container(&self, pre: u32, what: &str) {
        assert!(
            matches!(self.kind(pre), NodeKind::Element | NodeKind::Document),
            "{what}: parent must be an element"
        );
    }

    /// Splice tuples in at a logical position and grow every ancestor
    /// (starting at `anchor`) by the inserted count.
    fn splice_in(&mut self, insert_at: usize, tuples: Vec<Tuple>, anchor: Option<u32>) {
        let added = tuples.len() as u32;
        if added == 0 {
            return;
        }
        // every tuple at or after the insertion point is moved, the inserted
        // tuples are written
        self.stats.tuples_written += (self.tuples.len() - insert_at) as u64 + added as u64;
        self.tuples.splice(insert_at..insert_at, tuples);
        let mut anc = anchor;
        while let Some(a) = anc {
            self.tuples[a as usize].size += added;
            self.stats.tuples_written += 1;
            anc = self.parent(a);
        }
    }

    /// Remove `count` tuples starting at `start` (no ancestor maintenance).
    fn remove_range(&mut self, start: usize, count: usize) {
        if count == 0 {
            return;
        }
        self.stats.tuples_written += (self.tuples.len() - start - count) as u64 + count as u64;
        self.tuples.drain(start..start + count);
    }

    fn shrink_ancestors(&mut self, anchor: Option<u32>, removed: u32) {
        let mut anc = anchor;
        while let Some(a) = anc {
            self.tuples[a as usize].size -= removed;
            self.stats.tuples_written += 1;
            anc = self.parent(a);
        }
    }

    /// Insert `fragment` as the first child of `parent_pre`.
    pub fn insert_first_child(&mut self, parent_pre: u32, fragment: &Document) {
        self.assert_container(parent_pre, "insert_first_child");
        let level = self.level(parent_pre) + 1;
        self.splice_in(
            parent_pre as usize + 1,
            rebased_tuples(fragment, level),
            Some(parent_pre),
        );
    }

    /// Insert `fragment` as the last child of `parent_pre`.
    pub fn insert_last_child(&mut self, parent_pre: u32, fragment: &Document) {
        self.assert_container(parent_pre, "insert_last_child");
        let insert_at = (parent_pre + self.size(parent_pre) + 1) as usize;
        let level = self.level(parent_pre) + 1;
        self.splice_in(insert_at, rebased_tuples(fragment, level), Some(parent_pre));
    }

    /// Insert `fragment` immediately before the node at `pre` (as siblings).
    pub fn insert_before(&mut self, pre: u32, fragment: &Document) {
        self.insert_at(pre, self.level(pre), fragment);
    }

    /// Insert `fragment` at logical position `pos` with the given level (see
    /// [`StructuralUpdate::insert_at`]).
    pub fn insert_at(&mut self, pos: u32, level: u16, fragment: &Document) {
        let anchor = self.anchor_before(pos, level);
        self.splice_in(pos as usize, rebased_tuples(fragment, level), anchor);
    }

    /// Insert `fragment` immediately after the subtree of the node at `pre`.
    pub fn insert_after(&mut self, pre: u32, fragment: &Document) {
        let level = self.level(pre);
        let insert_at = pre + self.size(pre) + 1;
        self.insert_at(insert_at, level, fragment);
    }

    /// Delete the subtree rooted at `pre`.
    pub fn delete_subtree(&mut self, pre: u32) {
        let removed = self.size(pre) + 1;
        let parent = self.parent(pre);
        self.remove_range(pre as usize, removed as usize);
        self.shrink_ancestors(parent, removed);
    }

    /// Replace the subtree rooted at `pre` with `fragment`.
    pub fn replace_subtree(&mut self, pre: u32, fragment: &Document) {
        let removed = self.size(pre) + 1;
        let level = self.level(pre);
        let anchor = self.parent(pre);
        self.remove_range(pre as usize, removed as usize);
        self.shrink_ancestors(anchor, removed);
        self.splice_in(pre as usize, rebased_tuples(fragment, level), anchor);
    }

    /// Replace the value of the node at `pre` (see
    /// [`StructuralUpdate::replace_value`]).
    pub fn replace_value(&mut self, pre: u32, text: &str) {
        match self.kind(pre) {
            NodeKind::Text | NodeKind::Comment | NodeKind::ProcessingInstruction => {
                self.tuples[pre as usize].text = Arc::from(text);
                self.stats.tuples_written += 1;
            }
            NodeKind::Element | NodeKind::Document => {
                let removed = self.size(pre);
                let level = self.level(pre);
                self.remove_range(pre as usize + 1, removed as usize);
                self.tuples[pre as usize].size = 0;
                let parent = self.parent(pre);
                self.shrink_ancestors(parent, removed);
                if !text.is_empty() {
                    let t = Tuple {
                        size: 0,
                        level: level + 1,
                        kind: NodeKind::Text,
                        name: Arc::from(""),
                        text: Arc::from(text),
                        attrs: Vec::new(),
                    };
                    self.splice_in(pre as usize + 1, vec![t], Some(pre));
                }
            }
        }
    }

    /// Rename the element or processing instruction at `pre`.
    pub fn rename(&mut self, pre: u32, name: &str) {
        if matches!(
            self.kind(pre),
            NodeKind::Element | NodeKind::ProcessingInstruction
        ) {
            self.tuples[pre as usize].name = Arc::from(name);
            self.stats.tuples_written += 1;
        }
    }

    /// Set (or insert) an attribute on the element at `pre`.
    pub fn set_attribute(&mut self, pre: u32, name: &str, value: &str) {
        self.assert_container(pre, "set_attribute");
        let attrs = &mut self.tuples[pre as usize].attrs;
        match attrs.iter_mut().find(|(n, _)| n.as_ref() == name) {
            Some((_, v)) => *v = Arc::from(value),
            None => attrs.push((Arc::from(name), Arc::from(value))),
        }
        self.stats.tuples_written += 1;
    }

    /// Remove an attribute from the element at `pre` (no-op if absent).
    pub fn remove_attribute(&mut self, pre: u32, name: &str) {
        self.tuples[pre as usize]
            .attrs
            .retain(|(n, _)| n.as_ref() != name);
        self.stats.tuples_written += 1;
    }

    /// Rename an attribute of the element at `pre` (no-op if absent).
    pub fn rename_attribute(&mut self, pre: u32, name: &str, new_name: &str) {
        if let Some((n, _)) = self.tuples[pre as usize]
            .attrs
            .iter_mut()
            .find(|(n, _)| n.as_ref() == name)
        {
            *n = Arc::from(new_name);
        }
        self.stats.tuples_written += 1;
    }

    /// Materialize a read-only [`Document`] for querying / verification.
    pub fn to_document(&self) -> Document {
        materialize(&self.name, self.tuples.iter().cloned())
    }
}

// ---------------------------------------------------------------------------
// Page-wise remappable pre-numbers (the paper's scheme)
// ---------------------------------------------------------------------------

/// Per-page summary used by the page-skipping scans (the page-level
/// size/level bookkeeping of Section 5.2): which node kinds and element
/// names occur on the page, and the smallest level.  Rebuilt whenever the
/// page's tuples change structurally — a page-local cost.
#[derive(Debug, Clone)]
struct PageSummary {
    /// Bitmask over [`kind_code`] values of the kinds present.
    kind_mask: u8,
    /// Smallest node level on the page (`u16::MAX` for an empty page).
    min_level: u16,
    /// Element name → page-local offsets (ascending) of elements with that
    /// name.  Doubles as the paged store's element-name index: the global
    /// candidate list is the concatenation of these buckets in logical
    /// page order.
    elem_names: HashMap<Arc<str>, Vec<u32>>,
}

impl Default for PageSummary {
    fn default() -> Self {
        PageSummary {
            kind_mask: 0,
            min_level: u16::MAX,
            elem_names: HashMap::new(),
        }
    }
}

/// A logical page: at most `page_size` used tuples; the remaining slots are
/// the "unused tuples" of Figure 11.
#[derive(Debug, Clone, Default)]
pub(crate) struct Page {
    tuples: Vec<Tuple>,
    summary: PageSummary,
}

impl Page {
    /// The page's used tuples in logical order (the disk codec walks them).
    pub(crate) fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Rebuild a page from decoded tuples; the summary is recomputed, so the
    /// on-disk format never has to store (or trust) it.
    pub(crate) fn from_tuples(tuples: Vec<Tuple>) -> Page {
        Page::new(tuples)
    }

    fn new(tuples: Vec<Tuple>) -> Page {
        let mut p = Page {
            tuples,
            summary: PageSummary::default(),
        };
        p.rebuild_summary();
        p
    }

    fn rebuild_summary(&mut self) {
        let mut s = PageSummary::default();
        for (off, t) in self.tuples.iter().enumerate() {
            s.kind_mask |= 1u8 << kind_code(t.kind);
            s.min_level = s.min_level.min(t.level);
            if t.kind == NodeKind::Element {
                s.elem_names
                    .entry(t.name.clone())
                    .or_default()
                    .push(off as u32);
            }
        }
        self.summary = s;
    }
}

/// Updatable document with page-wise remappable pre-numbers (Section 5.2).
///
/// This is the **single source of truth** for a loaded document: pages are
/// the mutation substrate (held behind [`Arc`], copy-on-write per touched
/// page), and the dense relational image ([`DocumentColumns`]) is patched
/// in lockstep with every applied primitive instead of being rebuilt.
/// [`PagedDocument::snapshot`] publishes an immutable [`PagedSnapshot`]
/// in O(pages): the read view queries scan.
#[derive(Debug, Clone)]
pub struct PagedDocument {
    name: String,
    /// Pages in rid (allocation) order — the table is append-only.
    pages: Vec<Arc<Page>>,
    /// Pages in logical (`pre` view) order: indices into `pages`.
    page_map: Vec<usize>,
    /// Logical page capacity in tuples (a power of two).
    page_size: usize,
    /// Number of tuples a freshly shredded or split page is filled to
    /// (`page_size * fill_percent / 100`, at least 1).
    fill: usize,
    /// Accumulated costs.
    pub stats: UpdateStats,
    /// The incrementally maintained relational image (structural columns,
    /// attribute columns, dictionaries).
    columns: Arc<DocumentColumns>,
}

impl PagedDocument {
    /// Shred an existing document into logical pages, leaving
    /// `fill_percent` of each page's capacity unused for future inserts.
    ///
    /// # Panics
    /// Panics unless `page_size` is a power of two ≥ 2 and
    /// `fill_percent ∈ (0, 100]`.
    pub fn from_document(doc: &Document, page_size: usize, fill_percent: u8) -> Self {
        assert!(
            page_size.is_power_of_two() && page_size >= 2,
            "page_size must be a power of two >= 2"
        );
        assert!(
            (1..=100).contains(&fill_percent),
            "fill_percent must be in 1..=100"
        );
        let fill = ((page_size * fill_percent as usize) / 100).max(1);
        let tuples = tuples_of(doc);
        let mut pages = Vec::new();
        for chunk in tuples.chunks(fill) {
            pages.push(Arc::new(Page::new(chunk.to_vec())));
        }
        if pages.is_empty() {
            pages.push(Arc::new(Page::default()));
        }
        let page_map = (0..pages.len()).collect();
        PagedDocument {
            name: doc.name.clone(),
            pages,
            page_map,
            page_size,
            fill,
            stats: UpdateStats {
                fill_percent,
                ..UpdateStats::default()
            },
            columns: Arc::new(DocumentColumns::new(doc)),
        }
    }

    /// Reconstruct the mutable master from a published [`PagedSnapshot`] —
    /// cheap (`Arc` clones of pages and columns); pages are copied on
    /// first write only.
    pub fn from_snapshot(snap: &PagedSnapshot, page_size: usize, fill_percent: u8) -> Self {
        assert!(
            page_size.is_power_of_two() && page_size >= 2,
            "page_size must be a power of two >= 2"
        );
        assert!(
            (1..=100).contains(&fill_percent),
            "fill_percent must be in 1..=100"
        );
        let fill = ((page_size * fill_percent as usize) / 100).max(1);
        let mut pages = snap.pages.clone();
        if pages.is_empty() {
            pages.push(Arc::new(Page::default()));
        }
        PagedDocument {
            name: snap.name.clone(),
            page_map: (0..pages.len()).collect(),
            pages,
            page_size,
            fill,
            stats: UpdateStats {
                fill_percent,
                ..UpdateStats::default()
            },
            columns: snap.columns.clone(),
        }
    }

    /// The incrementally maintained relational image of the current state.
    pub fn columns(&self) -> &DocumentColumns {
        &self.columns
    }

    /// Shared handle to the relational image (what a publish pins).
    pub fn columns_arc(&self) -> Arc<DocumentColumns> {
        self.columns.clone()
    }

    /// Rebuild the column image at a different chunk row target (must be a
    /// power of two); subsequent incremental maintenance keeps it.  Used by
    /// the differential tests to exercise chunk-size invariance.
    pub fn rechunk_columns(&mut self, chunk_rows: usize) {
        self.columns = Arc::new(self.columns.rechunked(chunk_rows));
    }

    /// Publish the current state as an immutable snapshot: the logical page
    /// sequence (empty pages elided), their prefix-sum offsets, the
    /// fragment roots and the column image — all `Arc` clones, O(pages).
    pub fn snapshot(&self) -> PagedSnapshot {
        let pages: Vec<Arc<Page>> = self
            .page_map
            .iter()
            .map(|&p| self.pages[p].clone())
            .filter(|p| !p.tuples.is_empty())
            .collect();
        let mut starts = Vec::with_capacity(pages.len());
        let mut acc = 0u32;
        for p in &pages {
            starts.push(acc);
            acc += p.tuples.len() as u32;
        }
        let mut frag_roots = Vec::new();
        for (i, p) in pages.iter().enumerate() {
            if p.summary.min_level == 0 {
                for (off, t) in p.tuples.iter().enumerate() {
                    if t.level == 0 {
                        frag_roots.push(starts[i] + off as u32);
                    }
                }
            }
        }
        PagedSnapshot {
            name: self.name.clone(),
            pages,
            starts,
            len: acc,
            frag_roots,
            columns: self.columns.clone(),
        }
    }

    /// The configured page fill factor in percent.
    pub fn fill_percent(&self) -> u8 {
        self.stats.fill_percent
    }

    /// Re-tune the fill factor used for pages created by future splits
    /// (already shredded pages are not repacked).
    ///
    /// # Panics
    /// Panics unless `fill_percent ∈ (0, 100]`.
    pub fn set_fill_percent(&mut self, fill_percent: u8) {
        assert!(
            (1..=100).contains(&fill_percent),
            "fill_percent must be in 1..=100"
        );
        self.fill = ((self.page_size * fill_percent as usize) / 100).max(1);
        self.stats.fill_percent = fill_percent;
    }

    /// Number of (used) nodes in the logical view.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the logical view holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of allocated logical pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total unused tuple slots over all pages.
    pub fn free_slots(&self) -> usize {
        self.pages
            .iter()
            .map(|p| self.page_size - p.tuples.len().min(self.page_size))
            .sum()
    }

    /// Map a logical position (`pre`) to (logical page slot, offset in page).
    fn locate(&self, pre: usize) -> (usize, usize) {
        let mut remaining = pre;
        for (slot, &p) in self.page_map.iter().enumerate() {
            let n = self.pages[p].tuples.len();
            if remaining < n {
                return (slot, remaining);
            }
            remaining -= n;
        }
        // position right past the end maps onto the last page's end
        let last = self.page_map.len() - 1;
        (last, self.pages[self.page_map[last]].tuples.len())
    }

    /// Mutable access to a tuple: copy-on-write on its page.  Callers that
    /// change names or kinds must rebuild the page summary afterwards.
    fn tuple_mut(&mut self, pre: usize) -> &mut Tuple {
        let (slot, off) = self.locate(pre);
        let p = self.page_map[slot];
        &mut Arc::make_mut(&mut self.pages[p]).tuples[off]
    }

    /// Mutable access to the relational image (copy-on-write: the first
    /// patch after a publish clones the shared image once).
    fn columns_mut(&mut self) -> &mut DocumentColumns {
        Arc::make_mut(&mut self.columns)
    }

    /// `size` of the node at logical position `pre` (O(1), from the image).
    pub fn size(&self, pre: u32) -> u32 {
        self.columns.node_size(pre)
    }

    /// Node kind at logical position `pre`.
    pub fn kind(&self, pre: u32) -> NodeKind {
        self.columns.node_kind(pre)
    }

    /// `level` of the node at logical position `pre`.
    pub fn level(&self, pre: u32) -> u16 {
        self.columns.node_level(pre)
    }

    /// Parent recovery by a backwards scan over the chunked level column
    /// (chunks whose min level is not below the target are skipped).
    fn parent(&self, pre: u32) -> Option<u32> {
        self.anchor_before(pre, self.level(pre))
    }

    /// Closest node before position `pos` whose level is smaller than
    /// `level` — the parent a node inserted at `(pos, level)` would get.
    fn anchor_before(&self, pos: u32, level: u16) -> Option<u32> {
        self.columns.anchor_before(pos, level)
    }

    fn assert_container(&self, pre: u32, what: &str) {
        assert!(
            matches!(self.kind(pre), NodeKind::Element | NodeKind::Document),
            "{what}: parent must be an element"
        );
    }

    /// Insert tuples at a logical position.  Touches one page when the
    /// fragment fits into the free space of the target page, otherwise splits
    /// the page: its tail plus the new tuples move into freshly appended
    /// pages, each filled only to the configured fill factor so that repeated
    /// inserts into the same region keep splitting locally instead of
    /// remapping O(N) tuples (Figure 11).
    fn insert_tuples_at(&mut self, insert_pos: usize, frag_tuples: Vec<Tuple>) {
        let added = frag_tuples.len() as u64;
        if added == 0 {
            return;
        }
        // delta-patch the relational image in lockstep with the pages
        self.columns_mut().splice_nodes(insert_pos, &frag_tuples);
        let (slot, off) = self.locate(insert_pos);
        let page_idx = self.page_map[slot];
        let free = self.page_size - self.pages[page_idx].tuples.len().min(self.page_size);

        if frag_tuples.len() <= free {
            // fits: shift within this single logical page (copy-on-write)
            let page = Arc::make_mut(&mut self.pages[page_idx]);
            page.tuples.splice(off..off, frag_tuples);
            page.rebuild_summary();
            self.stats.pages_touched += 1;
            self.stats.tuples_written += added;
        } else {
            // does not fit: move the tail of the target page plus the new
            // tuples into freshly appended pages inserted after `slot`
            let tail: Vec<Tuple> = {
                let page = Arc::make_mut(&mut self.pages[page_idx]);
                let tail = page.tuples.split_off(off);
                page.rebuild_summary();
                tail
            };
            self.stats.pages_touched += 1;
            let mut pending: Vec<Tuple> = frag_tuples;
            pending.extend(tail);
            self.stats.tuples_written += pending.len() as u64;
            for (insert_slot, chunk) in (slot + 1..).zip(pending.chunks(self.fill)) {
                let new_idx = self.pages.len();
                self.pages.push(Arc::new(Page::new(chunk.to_vec())));
                self.page_map.insert(insert_slot, new_idx);
                self.stats.pages_allocated += 1;
                self.stats.pages_touched += 1;
            }
        }
    }

    /// Remove `count` tuples starting at logical position `start`.  The freed
    /// slots become unused space on their pages; no other page is rewritten.
    fn remove_range(&mut self, start: usize, count: usize) {
        if count == 0 {
            return;
        }
        self.columns_mut().remove_nodes(start, count);
        let mut remaining = count;
        let (mut slot, mut off) = self.locate(start);
        let mut touched = 0u64;
        while remaining > 0 {
            let page_idx = self.page_map[slot];
            {
                let page = Arc::make_mut(&mut self.pages[page_idx]);
                let avail = page.tuples.len() - off;
                let take = avail.min(remaining);
                page.tuples.drain(off..off + take);
                page.rebuild_summary();
                remaining -= take;
            }
            touched += 1;
            if self.pages[page_idx].tuples.is_empty() && self.page_map.len() > 1 {
                // fully emptied page: drop it from the logical view
                self.page_map.remove(slot);
            } else {
                slot += 1;
            }
            off = 0;
        }
        self.stats.pages_touched += touched;
        self.stats.tuples_written += count as u64;
    }

    /// Ancestor size maintenance via deltas (does not move tuples; does not
    /// change page summaries — `size` is not summarized).
    fn bump_ancestors(&mut self, anchor: Option<u32>, delta: i64) {
        if delta == 0 {
            return;
        }
        let mut anc = anchor;
        while let Some(a) = anc {
            let next = self.parent(a);
            let t = self.tuple_mut(a as usize);
            t.size = (t.size as i64 + delta) as u32;
            self.columns_mut().add_size(a, delta);
            self.stats.tuples_written += 1;
            anc = next;
        }
    }

    /// Insert `fragment` as the first child of the node at `parent_pre`.
    pub fn insert_first_child(&mut self, parent_pre: u32, fragment: &Document) {
        self.assert_container(parent_pre, "insert_first_child");
        let level = self.level(parent_pre) + 1;
        let tuples = rebased_tuples(fragment, level);
        let added = tuples.len() as i64;
        self.insert_tuples_at(parent_pre as usize + 1, tuples);
        self.bump_ancestors(Some(parent_pre), added);
    }

    /// Insert `fragment` as the last child of the node at logical position
    /// `parent_pre`.
    pub fn insert_last_child(&mut self, parent_pre: u32, fragment: &Document) {
        self.assert_container(parent_pre, "insert_last_child");
        let insert_pos = (parent_pre + self.size(parent_pre) + 1) as usize;
        let level = self.level(parent_pre) + 1;
        let tuples = rebased_tuples(fragment, level);
        let added = tuples.len() as i64;
        self.insert_tuples_at(insert_pos, tuples);
        self.bump_ancestors(Some(parent_pre), added);
    }

    /// Insert `fragment` immediately before the node at `pre` (as siblings).
    pub fn insert_before(&mut self, pre: u32, fragment: &Document) {
        self.insert_at(pre, self.level(pre), fragment);
    }

    /// Insert `fragment` at logical position `pos` with the given level (see
    /// [`StructuralUpdate::insert_at`]).
    pub fn insert_at(&mut self, pos: u32, level: u16, fragment: &Document) {
        let anchor = self.anchor_before(pos, level);
        let tuples = rebased_tuples(fragment, level);
        let added = tuples.len() as i64;
        self.insert_tuples_at(pos as usize, tuples);
        self.bump_ancestors(anchor, added);
    }

    /// Insert `fragment` immediately after the subtree of the node at `pre`.
    pub fn insert_after(&mut self, pre: u32, fragment: &Document) {
        let level = self.level(pre);
        let insert_pos = pre + self.size(pre) + 1;
        self.insert_at(insert_pos, level, fragment);
    }

    /// Delete the subtree rooted at logical position `pre`.
    pub fn delete_subtree(&mut self, pre: u32) {
        let removed = self.size(pre) + 1;
        let parent = self.parent(pre);
        self.remove_range(pre as usize, removed as usize);
        self.bump_ancestors(parent, -(removed as i64));
    }

    /// Replace the subtree rooted at `pre` with `fragment`.
    pub fn replace_subtree(&mut self, pre: u32, fragment: &Document) {
        let removed = self.size(pre) + 1;
        let level = self.level(pre);
        let anchor = self.parent(pre);
        self.remove_range(pre as usize, removed as usize);
        self.bump_ancestors(anchor, -(removed as i64));
        let tuples = rebased_tuples(fragment, level);
        let added = tuples.len() as i64;
        self.insert_tuples_at(pre as usize, tuples);
        self.bump_ancestors(anchor, added);
    }

    /// Replace the value of the node at `pre` (see
    /// [`StructuralUpdate::replace_value`]).
    pub fn replace_value(&mut self, pre: u32, text: &str) {
        match self.kind(pre) {
            NodeKind::Text | NodeKind::Comment | NodeKind::ProcessingInstruction => {
                // text content is not part of the relational image
                self.tuple_mut(pre as usize).text = Arc::from(text);
                self.stats.tuples_written += 1;
                self.stats.pages_touched += 1;
            }
            NodeKind::Element | NodeKind::Document => {
                let removed = self.size(pre);
                let level = self.level(pre);
                self.remove_range(pre as usize + 1, removed as usize);
                self.tuple_mut(pre as usize).size = 0;
                self.columns_mut().add_size(pre, -(removed as i64));
                let parent = self.parent(pre);
                self.bump_ancestors(parent, -(removed as i64));
                if !text.is_empty() {
                    let t = Tuple {
                        size: 0,
                        level: level + 1,
                        kind: NodeKind::Text,
                        name: Arc::from(""),
                        text: Arc::from(text),
                        attrs: Vec::new(),
                    };
                    self.insert_tuples_at(pre as usize + 1, vec![t]);
                    self.bump_ancestors(Some(pre), 1);
                }
            }
        }
    }

    /// Rename the element or processing instruction at `pre`.
    pub fn rename(&mut self, pre: u32, name: &str) {
        if matches!(
            self.kind(pre),
            NodeKind::Element | NodeKind::ProcessingInstruction
        ) {
            let arc: Arc<str> = Arc::from(name);
            let (slot, off) = self.locate(pre as usize);
            let p = self.page_map[slot];
            let page = Arc::make_mut(&mut self.pages[p]);
            page.tuples[off].name = arc.clone();
            page.rebuild_summary();
            self.columns_mut().set_name(pre, &arc);
            self.stats.tuples_written += 1;
            self.stats.pages_touched += 1;
        }
    }

    /// Set (or insert) an attribute on the element at `pre`.
    pub fn set_attribute(&mut self, pre: u32, name: &str, value: &str) {
        self.assert_container(pre, "set_attribute");
        let attrs = &mut self.tuple_mut(pre as usize).attrs;
        match attrs.iter_mut().find(|(n, _)| n.as_ref() == name) {
            Some((_, v)) => *v = Arc::from(value),
            None => attrs.push((Arc::from(name), Arc::from(value))),
        }
        self.columns_mut().set_attribute(pre, name, value);
        self.stats.tuples_written += 1;
        self.stats.pages_touched += 1;
    }

    /// Remove an attribute from the element at `pre` (no-op if absent).
    pub fn remove_attribute(&mut self, pre: u32, name: &str) {
        self.tuple_mut(pre as usize)
            .attrs
            .retain(|(n, _)| n.as_ref() != name);
        self.columns_mut().remove_attribute(pre, name);
        self.stats.tuples_written += 1;
        self.stats.pages_touched += 1;
    }

    /// Rename an attribute of the element at `pre` (no-op if absent).
    pub fn rename_attribute(&mut self, pre: u32, name: &str, new_name: &str) {
        if let Some((n, _)) = self
            .tuple_mut(pre as usize)
            .attrs
            .iter_mut()
            .find(|(n, _)| n.as_ref() == name)
        {
            *n = Arc::from(new_name);
        }
        self.columns_mut().rename_attribute(pre, name, new_name);
        self.stats.tuples_written += 1;
        self.stats.pages_touched += 1;
    }

    /// Materialize the logical view as a read-only [`Document`] (the
    /// "pre|size|level table view with pages in logical order" of Fig. 11).
    /// Used by the differential tests and the naive comparator — the query
    /// path reads pages and columns directly via [`PagedSnapshot`].
    pub fn to_document(&self) -> Document {
        let iter = self
            .page_map
            .iter()
            .flat_map(|&p| self.pages[p].tuples.iter().cloned())
            .collect::<Vec<_>>();
        materialize(&self.name, iter.into_iter())
    }
}

// ---------------------------------------------------------------------------
// the published, immutable read view
// ---------------------------------------------------------------------------

/// An immutable snapshot of a [`PagedDocument`]: the logical page sequence
/// (shared `Arc`s), prefix-sum offsets for O(log pages) position lookup,
/// and the pinned column image.  This is what the store publishes and what
/// queries scan — structural reads (`size`/`level`/`kind`/name id) come
/// from the dense columns in O(1); texts, attribute cursors and
/// serialization read the pages on demand.
#[derive(Debug, Clone)]
pub struct PagedSnapshot {
    name: String,
    /// Pages in logical order (empty pages elided).
    pages: Vec<Arc<Page>>,
    /// `starts[i]` = preorder rank of the first tuple of `pages[i]`.
    starts: Vec<u32>,
    len: u32,
    frag_roots: Vec<u32>,
    columns: Arc<DocumentColumns>,
}

impl PagedSnapshot {
    /// The document (container) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The logical page sequence (the disk codec serializes it page by
    /// page, preserving the split geometry across a save/load cycle).
    pub(crate) fn pages(&self) -> &[Arc<Page>] {
        &self.pages
    }

    /// Reassemble a snapshot from decoded pages: offsets and fragment
    /// roots are recomputed from the tuples, and the relational column
    /// image is rebuilt from a materialized document — O(document) work
    /// that happens once per load, after which incremental maintenance
    /// takes over again.
    pub(crate) fn from_pages(name: String, pages: Vec<Arc<Page>>) -> PagedSnapshot {
        let pages: Vec<Arc<Page>> = pages.into_iter().filter(|p| !p.tuples.is_empty()).collect();
        let mut starts = Vec::with_capacity(pages.len());
        let mut acc = 0u32;
        for p in &pages {
            starts.push(acc);
            acc += p.tuples.len() as u32;
        }
        let mut frag_roots = Vec::new();
        for (i, p) in pages.iter().enumerate() {
            if p.summary.min_level == 0 {
                for (off, t) in p.tuples.iter().enumerate() {
                    if t.level == 0 {
                        frag_roots.push(starts[i] + off as u32);
                    }
                }
            }
        }
        let doc = materialize(&name, pages.iter().flat_map(|p| p.tuples.iter().cloned()));
        let columns = Arc::new(DocumentColumns::new(&doc));
        PagedSnapshot {
            name,
            pages,
            starts,
            len: acc,
            frag_roots,
            columns,
        }
    }

    /// Rough resident-memory footprint in bytes: tuple payloads (names,
    /// texts, attributes) plus a fixed per-node estimate for the column
    /// image.  Used by the eviction policy's memory budget — a heuristic,
    /// not an allocator report.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for p in &self.pages {
            for t in &p.tuples {
                bytes += 32 + t.name.len() + t.text.len();
                for (n, v) in &t.attrs {
                    bytes += 16 + n.len() + v.len();
                }
            }
        }
        // structural columns: size/level/kind/name-code + chunk summaries
        bytes + self.len as usize * 16
    }

    /// The pinned relational image.
    pub fn columns(&self) -> &DocumentColumns {
        &self.columns
    }

    /// Shared handle to the relational image.
    pub fn columns_arc(&self) -> Arc<DocumentColumns> {
        self.columns.clone()
    }

    /// Number of logical pages in the view.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// (page index, offset in page) of a logical position.
    fn locate(&self, pre: u32) -> (usize, usize) {
        debug_assert!(pre < self.len);
        let i = self.starts.partition_point(|&s| s <= pre) - 1;
        (i, (pre - self.starts[i]) as usize)
    }
}

impl NodeRead for PagedSnapshot {
    fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    fn size(&self, pre: u32) -> u32 {
        self.columns.node_size(pre)
    }

    #[inline]
    fn level(&self, pre: u32) -> u16 {
        self.columns.node_level(pre)
    }

    #[inline]
    fn kind(&self, pre: u32) -> NodeKind {
        self.columns.node_kind(pre)
    }

    fn name_of(&self, pre: u32) -> &str {
        match self.kind(pre) {
            NodeKind::Element => self.columns.node_name(pre),
            NodeKind::ProcessingInstruction => {
                let (i, off) = self.locate(pre);
                &self.pages[i].tuples[off].name
            }
            _ => "",
        }
    }

    fn text_of(&self, pre: u32) -> &str {
        match self.kind(pre) {
            NodeKind::Text | NodeKind::Comment | NodeKind::ProcessingInstruction => {
                let (i, off) = self.locate(pre);
                &self.pages[i].tuples[off].text
            }
            _ => "",
        }
    }

    fn qname_id(&self, pre: u32) -> Option<u32> {
        match self.kind(pre) {
            NodeKind::Element => Some(self.columns.node_name_code(pre)),
            _ => None,
        }
    }

    fn lookup_qname(&self, name: &str) -> Option<u32> {
        self.columns.tags().code_of(name)
    }

    fn attribute(&self, pre: u32, name: &str) -> Option<&str> {
        self.columns.attr_value_of(pre, name)
    }

    fn attrs(&self, pre: u32) -> AttrsIter<'_> {
        self.columns.attrs_of(pre)
    }

    fn root_pres(&self) -> Vec<u32> {
        self.frag_roots.clone()
    }

    fn named_elements(&self, name: &str) -> Option<Vec<u32>> {
        let mut out = Vec::new();
        for (i, p) in self.pages.iter().enumerate() {
            if let Some(offs) = p.summary.elem_names.get(name) {
                let base = self.starts[i];
                out.extend(offs.iter().map(|&o| base + o));
            }
        }
        Some(out)
    }

    fn run_end(&self, pre: u32) -> u32 {
        let (i, _) = self.locate(pre);
        self.starts[i] + self.pages[i].tuples.len() as u32 - 1
    }

    fn run_has_name(&self, pre: u32, name: &str) -> bool {
        let (i, _) = self.locate(pre);
        self.pages[i].summary.elem_names.contains_key(name)
    }

    fn run_has_kind(&self, pre: u32, kind: NodeKind) -> bool {
        let (i, _) = self.locate(pre);
        self.pages[i].summary.kind_mask & (1u8 << kind_code(kind)) != 0
    }

    fn run_min_level(&self, pre: u32) -> u16 {
        let (i, _) = self.locate(pre);
        self.pages[i].summary.min_level
    }

    fn parent(&self, pre: u32) -> Option<u32> {
        self.columns.anchor_before(pre, self.level(pre))
    }
}

macro_rules! impl_structural_update {
    ($ty:ty) => {
        impl StructuralUpdate for $ty {
            fn node_count(&self) -> usize {
                self.len()
            }
            fn node_kind(&self, pre: u32) -> NodeKind {
                self.kind(pre)
            }
            fn node_size(&self, pre: u32) -> u32 {
                self.size(pre)
            }
            fn node_level(&self, pre: u32) -> u16 {
                self.level(pre)
            }
            fn node_parent(&self, pre: u32) -> Option<u32> {
                self.parent(pre)
            }
            fn insert_first_child(&mut self, parent_pre: u32, fragment: &Document) {
                <$ty>::insert_first_child(self, parent_pre, fragment)
            }
            fn insert_last_child(&mut self, parent_pre: u32, fragment: &Document) {
                <$ty>::insert_last_child(self, parent_pre, fragment)
            }
            fn insert_before(&mut self, pre: u32, fragment: &Document) {
                <$ty>::insert_before(self, pre, fragment)
            }
            fn insert_at(&mut self, pos: u32, level: u16, fragment: &Document) {
                <$ty>::insert_at(self, pos, level, fragment)
            }
            fn insert_after(&mut self, pre: u32, fragment: &Document) {
                <$ty>::insert_after(self, pre, fragment)
            }
            fn delete_subtree(&mut self, pre: u32) {
                <$ty>::delete_subtree(self, pre)
            }
            fn replace_subtree(&mut self, pre: u32, fragment: &Document) {
                <$ty>::replace_subtree(self, pre, fragment)
            }
            fn replace_value(&mut self, pre: u32, text: &str) {
                <$ty>::replace_value(self, pre, text)
            }
            fn rename(&mut self, pre: u32, name: &str) {
                <$ty>::rename(self, pre, name)
            }
            fn set_attribute(&mut self, pre: u32, name: &str, value: &str) {
                <$ty>::set_attribute(self, pre, name, value)
            }
            fn remove_attribute(&mut self, pre: u32, name: &str) {
                <$ty>::remove_attribute(self, pre, name)
            }
            fn rename_attribute(&mut self, pre: u32, name: &str, new_name: &str) {
                <$ty>::rename_attribute(self, pre, name, new_name)
            }
            fn to_document(&self) -> Document {
                <$ty>::to_document(self)
            }
            fn update_stats(&self) -> UpdateStats {
                self.stats
            }
        }
    };
}

impl_structural_update!(NaiveDocument);
impl_structural_update!(PagedDocument);

/// Build a small XML fragment document from text (helper used by examples,
/// benches and tests when composing subtrees to insert).
pub fn fragment_from_xml(xml: &str) -> Document {
    crate::shred::shred("#fragment", xml, &crate::shred::ShredOptions::default())
        .expect("invalid fragment XML")
}

/// Build a fragment programmatically from a builder closure.
pub fn fragment<F: FnOnce(&mut DocumentBuilder)>(f: F) -> Document {
    let mut b = DocumentBuilder::new("#fragment");
    f(&mut b);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::serialize_document;
    use crate::shred::{shred, ShredOptions};

    fn base() -> Document {
        shred(
            "base",
            "<a><b><c/><d/></b><f><g/><h><i/><j/></h></f></a>",
            &ShredOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn naive_insert_matches_reference_serialization() {
        let doc = base();
        let mut naive = NaiveDocument::from_document(&doc);
        naive.insert_last_child(4, &fragment_from_xml("<k><l/><m/></k>"));
        let out = serialize_document(&naive.to_document());
        assert_eq!(
            out,
            "<a><b><c/><d/></b><f><g/><h><i/><j/></h><k><l/><m/></k></f></a>"
        );
        assert!(
            naive.stats.tuples_written > 3,
            "naive insert moves following tuples"
        );
    }

    #[test]
    fn paged_insert_matches_naive() {
        let doc = base();
        let frag = fragment_from_xml("<k><l/><m/></k>");
        let mut naive = NaiveDocument::from_document(&doc);
        let mut paged = PagedDocument::from_document(&doc, 8, 75);
        naive.insert_last_child(4, &frag);
        paged.insert_last_child(4, &frag);
        assert_eq!(
            serialize_document(&naive.to_document()),
            serialize_document(&paged.to_document())
        );
        paged.to_document().check_invariants().unwrap();
    }

    #[test]
    fn paged_insert_into_free_space_touches_one_page() {
        let doc = base();
        // 50% fill of 16-tuple pages leaves plenty of free slots
        let mut paged = PagedDocument::from_document(&doc, 16, 50);
        let before_pages = paged.page_count();
        paged.insert_last_child(1, &fragment_from_xml("<x/>"));
        assert_eq!(paged.stats.pages_touched, 1);
        assert_eq!(paged.stats.pages_allocated, 0);
        assert_eq!(paged.page_count(), before_pages);
    }

    #[test]
    fn paged_large_insert_appends_pages() {
        let doc = base();
        let mut paged = PagedDocument::from_document(&doc, 4, 100);
        paged.insert_last_child(
            0,
            &fragment_from_xml("<big><x1/><x2/><x3/><x4/><x5/></big>"),
        );
        assert!(paged.stats.pages_allocated >= 1);
        paged.to_document().check_invariants().unwrap();
        assert_eq!(paged.len(), 9 + 6);
    }

    #[test]
    fn delete_subtree_both_schemes() {
        let doc = base();
        let mut naive = NaiveDocument::from_document(&doc);
        let mut paged = PagedDocument::from_document(&doc, 8, 75);
        naive.delete_subtree(1); // delete <b> subtree (3 nodes)
        paged.delete_subtree(1);
        let expected = "<a><f><g/><h><i/><j/></h></f></a>";
        assert_eq!(serialize_document(&naive.to_document()), expected);
        assert_eq!(serialize_document(&paged.to_document()), expected);
        assert_eq!(naive.len(), 6);
        assert_eq!(paged.len(), 6);
    }

    #[test]
    fn repeated_updates_keep_invariants() {
        let doc = base();
        let mut paged = PagedDocument::from_document(&doc, 8, 50);
        for i in 0..20 {
            paged.insert_last_child(0, &fragment_from_xml(&format!("<n{i}><c/></n{i}>")));
        }
        let mat = paged.to_document();
        mat.check_invariants().unwrap();
        assert_eq!(mat.len(), 9 + 40);
        assert_eq!(mat.size(0), mat.len() as u32 - 1);
    }

    #[test]
    fn value_updates_on_document() {
        let mut doc = shred("t", "<a x=\"1\"><b>old</b></a>", &ShredOptions::default()).unwrap();
        doc.set_text(2, "new");
        doc.set_attribute(0, "x", "2");
        doc.set_attribute(0, "y", "3");
        doc.rename_element(1, "c");
        assert_eq!(
            serialize_document(&doc),
            "<a x=\"2\" y=\"3\"><c>new</c></a>"
        );
        doc.remove_attribute(0, "y");
        assert_eq!(doc.attribute(0, "y"), None);
    }

    /// Drive the same op sequence through both schemes and compare.
    fn both(ops: impl Fn(&mut dyn StructuralUpdate)) -> (String, String) {
        let doc = base();
        let mut naive = NaiveDocument::from_document(&doc);
        let mut paged = PagedDocument::from_document(&doc, 4, 75);
        ops(&mut naive);
        ops(&mut paged);
        let n = naive.to_document();
        let p = paged.to_document();
        n.check_invariants().unwrap();
        p.check_invariants().unwrap();
        (serialize_document(&n), serialize_document(&p))
    }

    #[test]
    fn sibling_inserts_both_schemes() {
        // base: a(0) b(1) c(2) d(3) f(4) g(5) h(6) i(7) j(8)
        let (n, p) = both(|d| {
            d.insert_before(1, &fragment_from_xml("<p/>"));
            // <b> moved to pre 2; insert after its subtree
            d.insert_after(2, &fragment_from_xml("<q><r/></q>"));
            d.insert_first_child(0, &fragment_from_xml("<s/>"));
        });
        assert_eq!(n, p);
        assert_eq!(
            n,
            "<a><s/><p/><b><c/><d/></b><q><r/></q><f><g/><h><i/><j/></h></f></a>"
        );
    }

    #[test]
    fn replace_subtree_both_schemes() {
        let (n, p) = both(|d| {
            d.replace_subtree(1, &fragment_from_xml("<x><y/></x>"));
        });
        assert_eq!(n, p);
        assert_eq!(n, "<a><x><y/></x><f><g/><h><i/><j/></h></f></a>");
        // replacement with a multi-root sequence
        let (n, p) = both(|d| {
            d.replace_subtree(6, &fragment_from_xml("<u/>").clone());
            d.replace_subtree(1, &{
                let mut b = DocumentBuilder::new("#frag");
                b.start_element("one");
                b.end_element();
                b.start_element("two");
                b.end_element();
                b.finish()
            });
        });
        assert_eq!(n, p);
        assert_eq!(n, "<a><one/><two/><f><g/><u/></f></a>");
    }

    #[test]
    fn replace_value_both_schemes() {
        let doc = shred(
            "t",
            "<a><b>old</b><c><d/><e/></c></a>",
            &ShredOptions::default(),
        )
        .unwrap();
        let mut naive = NaiveDocument::from_document(&doc);
        let mut paged = PagedDocument::from_document(&doc, 4, 75);
        for d in [&mut naive as &mut dyn StructuralUpdate, &mut paged] {
            d.replace_value(2, "new"); // text node under <b>
            d.replace_value(3, "flat"); // element <c>: children replaced
        }
        let expected = "<a><b>new</b><c>flat</c></a>";
        assert_eq!(serialize_document(&naive.to_document()), expected);
        assert_eq!(serialize_document(&paged.to_document()), expected);
        // empty value empties the element
        naive.replace_value(3, "");
        paged.replace_value(3, "");
        let expected = "<a><b>new</b><c/></a>";
        assert_eq!(serialize_document(&naive.to_document()), expected);
        assert_eq!(serialize_document(&paged.to_document()), expected);
    }

    #[test]
    fn rename_and_attribute_patching_both_schemes() {
        let doc = shred("t", "<a x=\"1\"><b y=\"2\"/></a>", &ShredOptions::default()).unwrap();
        let mut naive = NaiveDocument::from_document(&doc);
        let mut paged = PagedDocument::from_document(&doc, 8, 75);
        for d in [&mut naive as &mut dyn StructuralUpdate, &mut paged] {
            d.rename(1, "bee");
            d.set_attribute(1, "y", "22"); // overwrite
            d.set_attribute(1, "z", "3"); // insert
            d.remove_attribute(0, "x");
            d.rename_attribute(1, "z", "zz");
        }
        let expected = "<a><bee y=\"22\" zz=\"3\"/></a>";
        assert_eq!(serialize_document(&naive.to_document()), expected);
        assert_eq!(serialize_document(&paged.to_document()), expected);
    }

    #[test]
    fn materialize_preserves_document_nodes_and_pis() {
        let opts = ShredOptions {
            document_node: true,
            ..ShredOptions::default()
        };
        let doc = shred("t", "<?pi data?><a><b/></a>", &opts).unwrap();
        assert_eq!(doc.kind(0), NodeKind::Document);
        let paged = PagedDocument::from_document(&doc, 8, 75);
        let mat = paged.to_document();
        mat.check_invariants().unwrap();
        assert_eq!(mat.kind(0), NodeKind::Document);
        assert_eq!(serialize_document(&mat), serialize_document(&doc));
        // PI target survives the round trip
        let pi = (0..mat.len() as u32)
            .find(|&p| mat.kind(p) == NodeKind::ProcessingInstruction)
            .unwrap();
        assert_eq!(mat.name_of(pi), "pi");
        assert_eq!(mat.text_of(pi), "data");
    }

    #[test]
    fn repeated_inserts_split_pages_instead_of_remapping() {
        // Regression test for the page-fill policy: overflow pages used to be
        // created 100% full, so every subsequent insert into the same region
        // allocated fresh pages.  With fill-factor-aware splits, N one-node
        // inserts into the same page allocate ~N/(page_size-fill) pages.
        let doc = base();
        let page_size = 16;
        let mut paged = PagedDocument::from_document(&doc, page_size, 50);
        assert_eq!(paged.fill_percent(), 50);
        let n = 100u32;
        let frag = fragment_from_xml("<z/>");
        for _ in 0..n {
            paged.insert_first_child(0, &frag);
        }
        let mat = paged.to_document();
        mat.check_invariants().unwrap();
        assert_eq!(mat.len(), 9 + n as usize);
        // splits are amortized: each allocated page absorbs about
        // page_size - fill = 8 inserts, so ~13 allocations for 100 inserts —
        // far below the one-allocation-per-insert of the broken policy
        assert!(
            paged.stats.pages_allocated <= (n as u64) / 2,
            "pages_allocated = {} for {} inserts",
            paged.stats.pages_allocated,
            n
        );
        // and no O(N) remaps: the tuple writes per insert stay bounded by the
        // page size (plus the ancestor delta), not the document size
        assert!(
            paged.stats.tuples_written <= (n as u64) * (page_size as u64 + 4),
            "tuples_written = {}",
            paged.stats.tuples_written
        );
    }

    #[test]
    fn set_fill_percent_tunes_future_splits() {
        let doc = base();
        let mut paged = PagedDocument::from_document(&doc, 8, 100);
        paged.set_fill_percent(50);
        assert_eq!(paged.stats.fill_percent, 50);
        // force a split: the overflow pages are now half-filled
        let frag = fragment(|b| {
            b.start_element("x1");
            b.end_element();
            b.start_element("x2");
            b.end_element();
        });
        paged.insert_first_child(0, &frag);
        assert!(paged.free_slots() > 0, "split pages keep free slots");
        paged.to_document().check_invariants().unwrap();
    }

    #[test]
    fn stats_delta_and_accumulate() {
        let doc = base();
        let mut paged = PagedDocument::from_document(&doc, 8, 75);
        let before = paged.stats;
        paged.insert_last_child(0, &fragment_from_xml("<x/>"));
        let delta = paged.stats.delta_since(&before);
        assert!(delta.tuples_written >= 1);
        assert_eq!(delta.fill_percent, 75);
        let mut acc = UpdateStats::default();
        acc.accumulate(&delta);
        acc.accumulate(&delta);
        assert_eq!(acc.tuples_written, 2 * delta.tuples_written);
    }
}
