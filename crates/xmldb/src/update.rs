//! Structural updates on the pre|size|level encoding (Section 5.2, Fig. 10/11).
//!
//! A subtree insert shifts the `pre` rank of every following node and grows
//! the `size` of every ancestor.  The paper's remedy is an indirection layer:
//!
//! * the document is divided into **logical pages** of a power-of-two number
//!   of tuples, each page shredded with a configurable percentage of unused
//!   tuples;
//! * the physical table is append-only (`rid` order); a **page map** lists the
//!   pages in logical (`pre`) order, so inserting a page "in the middle" only
//!   appends tuples and adds a page-map entry;
//! * deletes leave unused tuples in place; inserts that fit a page's free
//!   space touch only that page; larger inserts append fresh pages;
//! * `size` maintenance uses deltas so the root need not stay locked.
//!
//! Two implementations are provided so the ablation experiment (E9 in
//! DESIGN.md) can compare them:
//!
//! * [`PagedDocument`] — the paper's scheme; counts pages touched.
//! * [`NaiveDocument`] — textbook renumbering; counts tuples moved.

use std::sync::Arc;

use crate::doc::{Document, DocumentBuilder};
use crate::node::NodeKind;

/// Cost counters accumulated by the update schemes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Number of tuples written (inserted, moved or size-adjusted).
    pub tuples_written: u64,
    /// Number of logical pages whose contents were modified.
    pub pages_touched: u64,
    /// Number of logical pages newly allocated (appended to the rid table).
    pub pages_allocated: u64,
}

/// One tuple of the updatable representation, carrying its node properties
/// inline (the property containers of a read-only [`Document`] are rebuilt on
/// materialization).
#[derive(Debug, Clone)]
struct Tuple {
    size: u32,
    level: u16,
    kind: NodeKind,
    /// Element or PI name.
    name: Arc<str>,
    /// Text content (text/comment/PI nodes).
    text: Arc<str>,
    /// Attributes of an element node.
    attrs: Vec<(Arc<str>, Arc<str>)>,
}

fn tuples_of(doc: &Document) -> Vec<Tuple> {
    (0..doc.len() as u32)
        .map(|pre| Tuple {
            size: doc.size(pre),
            level: doc.level(pre),
            kind: doc.kind(pre),
            name: Arc::from(doc.name_of(pre)),
            text: Arc::from(doc.text_of(pre)),
            attrs: doc
                .attributes(pre)
                .iter()
                .map(|a| (a.name.clone(), a.value.clone()))
                .collect(),
        })
        .collect()
}

fn materialize(name: &str, tuples: impl Iterator<Item = Tuple>) -> Document {
    // Rebuild via the builder to re-establish the property containers.
    let mut doc = Document::new(name);
    let mut first = true;
    for t in tuples {
        if first || t.level == 0 {
            doc.add_fragment_root(doc.len() as u32);
            first = false;
        }
        let pre = doc.len() as u32;
        match t.kind {
            NodeKind::Element | NodeKind::Document => {
                let qid = doc.intern_qname(t.name.clone());
                doc.push_row(t.size, t.level, NodeKind::Element, qid);
            }
            NodeKind::Text | NodeKind::Comment => {
                let tid = doc.push_text(&t.text);
                doc.push_row(0, t.level, t.kind, tid);
            }
            NodeKind::ProcessingInstruction => {
                let tid = doc.push_text(&t.text);
                doc.push_row(0, t.level, t.kind, tid);
            }
        }
        for (n, v) in &t.attrs {
            doc.push_attr(pre, n.clone(), v.clone());
        }
    }
    doc
}

// ---------------------------------------------------------------------------
// Naive renumbering baseline
// ---------------------------------------------------------------------------

/// Baseline updatable document: a flat tuple vector where every structural
/// update splices and renumbers, moving O(N) tuples.
#[derive(Debug, Clone)]
pub struct NaiveDocument {
    name: String,
    tuples: Vec<Tuple>,
    /// Accumulated costs.
    pub stats: UpdateStats,
}

impl NaiveDocument {
    /// Wrap an existing document.
    pub fn from_document(doc: &Document) -> Self {
        NaiveDocument {
            name: doc.name.clone(),
            tuples: tuples_of(doc),
            stats: UpdateStats::default(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Node kind at logical position `pre`.
    pub fn kind(&self, pre: u32) -> NodeKind {
        self.tuples[pre as usize].kind
    }

    /// Insert `fragment` as the last child of `parent_pre`.
    ///
    /// # Panics
    /// Panics if `parent_pre` is not an element (only elements have children
    /// in the XML data model).
    pub fn insert_last_child(&mut self, parent_pre: u32, fragment: &Document) {
        assert!(
            matches!(
                self.kind(parent_pre),
                NodeKind::Element | NodeKind::Document
            ),
            "insert_last_child: parent must be an element"
        );
        let insert_at = (parent_pre + self.tuples[parent_pre as usize].size + 1) as usize;
        let parent_level = self.tuples[parent_pre as usize].level;
        let frag_tuples: Vec<Tuple> = tuples_of(fragment)
            .into_iter()
            .map(|mut t| {
                t.level += parent_level + 1;
                t
            })
            .collect();
        let added = frag_tuples.len() as u32;
        // every tuple at or after the insertion point is moved; every ancestor's
        // size is rewritten; the inserted tuples are written
        self.stats.tuples_written +=
            (self.tuples.len() - insert_at) as u64 + added as u64 + parent_level as u64 + 1;
        self.tuples.splice(insert_at..insert_at, frag_tuples);
        // fix ancestor sizes
        let mut anc = Some(parent_pre);
        while let Some(a) = anc {
            self.tuples[a as usize].size += added;
            anc = self.parent(a);
        }
    }

    /// Delete the subtree rooted at `pre`.
    pub fn delete_subtree(&mut self, pre: u32) {
        let removed = self.tuples[pre as usize].size + 1;
        let end = pre as usize + removed as usize;
        self.stats.tuples_written += (self.tuples.len() - end) as u64 + removed as u64;
        let parent = self.parent(pre);
        self.tuples.drain(pre as usize..end);
        let mut anc = parent;
        while let Some(a) = anc {
            self.tuples[a as usize].size -= removed;
            anc = self.parent(a);
        }
    }

    fn parent(&self, pre: u32) -> Option<u32> {
        let lv = self.tuples[pre as usize].level;
        if lv == 0 {
            return None;
        }
        (0..pre).rev().find(|&v| self.tuples[v as usize].level < lv)
    }

    /// Materialize a read-only [`Document`] for querying / verification.
    pub fn to_document(&self) -> Document {
        materialize(&self.name, self.tuples.iter().cloned())
    }
}

// ---------------------------------------------------------------------------
// Page-wise remappable pre-numbers (the paper's scheme)
// ---------------------------------------------------------------------------

/// A logical page: at most `page_size` used tuples; the remaining slots are
/// the "unused tuples" of Figure 11.
#[derive(Debug, Clone, Default)]
struct Page {
    tuples: Vec<Tuple>,
}

/// Updatable document with page-wise remappable pre-numbers (Section 5.2).
#[derive(Debug, Clone)]
pub struct PagedDocument {
    name: String,
    /// Pages in rid (allocation) order — the table is append-only.
    pages: Vec<Page>,
    /// Pages in logical (`pre` view) order: indices into `pages`.
    page_map: Vec<usize>,
    /// Logical page capacity in tuples (a power of two).
    page_size: usize,
    /// Accumulated costs.
    pub stats: UpdateStats,
}

impl PagedDocument {
    /// Shred an existing document into logical pages, leaving
    /// `fill_percent` of each page's capacity unused for future inserts.
    ///
    /// # Panics
    /// Panics unless `page_size` is a power of two ≥ 2 and
    /// `fill_percent ∈ (0, 100]`.
    pub fn from_document(doc: &Document, page_size: usize, fill_percent: u8) -> Self {
        assert!(
            page_size.is_power_of_two() && page_size >= 2,
            "page_size must be a power of two >= 2"
        );
        assert!(
            (1..=100).contains(&fill_percent),
            "fill_percent must be in 1..=100"
        );
        let fill = ((page_size * fill_percent as usize) / 100).max(1);
        let tuples = tuples_of(doc);
        let mut pages = Vec::new();
        for chunk in tuples.chunks(fill) {
            pages.push(Page {
                tuples: chunk.to_vec(),
            });
        }
        if pages.is_empty() {
            pages.push(Page::default());
        }
        let page_map = (0..pages.len()).collect();
        PagedDocument {
            name: doc.name.clone(),
            pages,
            page_map,
            page_size,
            stats: UpdateStats::default(),
        }
    }

    /// Number of (used) nodes in the logical view.
    pub fn len(&self) -> usize {
        self.page_map
            .iter()
            .map(|&p| self.pages[p].tuples.len())
            .sum()
    }

    /// True if the logical view holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of allocated logical pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total unused tuple slots over all pages.
    pub fn free_slots(&self) -> usize {
        self.pages
            .iter()
            .map(|p| self.page_size - p.tuples.len().min(self.page_size))
            .sum()
    }

    /// Map a logical position (`pre`) to (logical page slot, offset in page).
    fn locate(&self, pre: usize) -> (usize, usize) {
        let mut remaining = pre;
        for (slot, &p) in self.page_map.iter().enumerate() {
            let n = self.pages[p].tuples.len();
            if remaining < n {
                return (slot, remaining);
            }
            remaining -= n;
        }
        // position right past the end maps onto the last page's end
        let last = self.page_map.len() - 1;
        (last, self.pages[self.page_map[last]].tuples.len())
    }

    fn tuple(&self, pre: usize) -> &Tuple {
        let (slot, off) = self.locate(pre);
        &self.pages[self.page_map[slot]].tuples[off]
    }

    fn tuple_mut(&mut self, pre: usize) -> &mut Tuple {
        let (slot, off) = self.locate(pre);
        let p = self.page_map[slot];
        &mut self.pages[p].tuples[off]
    }

    /// `size` of the node at logical position `pre`.
    pub fn size(&self, pre: u32) -> u32 {
        self.tuple(pre as usize).size
    }

    /// Node kind at logical position `pre`.
    pub fn kind(&self, pre: u32) -> NodeKind {
        self.tuple(pre as usize).kind
    }

    /// `level` of the node at logical position `pre`.
    pub fn level(&self, pre: u32) -> u16 {
        self.tuple(pre as usize).level
    }

    fn parent(&self, pre: u32) -> Option<u32> {
        let lv = self.level(pre);
        if lv == 0 {
            return None;
        }
        (0..pre).rev().find(|&v| self.level(v) < lv)
    }

    /// Insert `fragment` as the last child of the node at logical position
    /// `parent_pre`.  Touches one page when the fragment fits into the free
    /// space of the target page, otherwise appends new pages (Figure 11).
    ///
    /// # Panics
    /// Panics if `parent_pre` is not an element (only elements have children
    /// in the XML data model).
    pub fn insert_last_child(&mut self, parent_pre: u32, fragment: &Document) {
        assert!(
            matches!(
                self.kind(parent_pre),
                NodeKind::Element | NodeKind::Document
            ),
            "insert_last_child: parent must be an element"
        );
        let insert_pos = (parent_pre + self.size(parent_pre) + 1) as usize;
        let parent_level = self.level(parent_pre);
        let frag_tuples: Vec<Tuple> = tuples_of(fragment)
            .into_iter()
            .map(|mut t| {
                t.level += parent_level + 1;
                t
            })
            .collect();
        let added = frag_tuples.len() as u32;

        let (slot, off) = self.locate(insert_pos);
        let page_idx = self.page_map[slot];
        let free = self.page_size - self.pages[page_idx].tuples.len().min(self.page_size);

        if frag_tuples.len() <= free {
            // fits: shift within this single logical page
            let page = &mut self.pages[page_idx];
            page.tuples.splice(off..off, frag_tuples);
            self.stats.pages_touched += 1;
            self.stats.tuples_written += added as u64;
        } else {
            // does not fit: move the tail of the target page plus the new
            // tuples into freshly appended pages inserted after `slot`
            let tail: Vec<Tuple> = self.pages[page_idx].tuples.split_off(off);
            self.stats.pages_touched += 1;
            let mut pending: Vec<Tuple> = frag_tuples;
            pending.extend(tail);
            self.stats.tuples_written += pending.len() as u64;
            let mut insert_slot = slot + 1;
            for chunk in pending.chunks(self.page_size) {
                let new_idx = self.pages.len();
                self.pages.push(Page {
                    tuples: chunk.to_vec(),
                });
                self.page_map.insert(insert_slot, new_idx);
                insert_slot += 1;
                self.stats.pages_allocated += 1;
                self.stats.pages_touched += 1;
            }
        }

        // ancestor size maintenance via deltas (does not move tuples)
        let mut anc = Some(parent_pre);
        while let Some(a) = anc {
            self.tuple_mut(a as usize).size += added;
            self.stats.tuples_written += 1;
            anc = self.parent(a);
        }
    }

    /// Delete the subtree rooted at logical position `pre`.  The freed slots
    /// become unused space on their pages; no other page is rewritten.
    pub fn delete_subtree(&mut self, pre: u32) {
        let removed = self.size(pre) + 1;
        let parent = self.parent(pre);
        let mut remaining = removed as usize;
        let (mut slot, mut off) = self.locate(pre as usize);
        let mut touched = 0u64;
        while remaining > 0 {
            let page_idx = self.page_map[slot];
            let avail = self.pages[page_idx].tuples.len() - off;
            let take = avail.min(remaining);
            self.pages[page_idx].tuples.drain(off..off + take);
            touched += 1;
            remaining -= take;
            if self.pages[page_idx].tuples.is_empty() && self.page_map.len() > 1 {
                // fully emptied page: drop it from the logical view
                self.page_map.remove(slot);
            } else {
                slot += 1;
            }
            off = 0;
        }
        self.stats.pages_touched += touched;
        self.stats.tuples_written += removed as u64;
        let mut anc = parent;
        while let Some(a) = anc {
            self.tuple_mut(a as usize).size -= removed;
            self.stats.tuples_written += 1;
            anc = self.parent(a);
        }
    }

    /// Materialize the logical view as a read-only [`Document`] (the
    /// "pre|size|level table view with pages in logical order" of Fig. 11).
    pub fn to_document(&self) -> Document {
        let iter = self
            .page_map
            .iter()
            .flat_map(|&p| self.pages[p].tuples.iter().cloned())
            .collect::<Vec<_>>();
        materialize(&self.name, iter.into_iter())
    }
}

/// Build a small XML fragment document from text (helper used by examples,
/// benches and tests when composing subtrees to insert).
pub fn fragment_from_xml(xml: &str) -> Document {
    crate::shred::shred("#fragment", xml, &crate::shred::ShredOptions::default())
        .expect("invalid fragment XML")
}

/// Build a fragment programmatically from a builder closure.
pub fn fragment<F: FnOnce(&mut DocumentBuilder)>(f: F) -> Document {
    let mut b = DocumentBuilder::new("#fragment");
    f(&mut b);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::serialize_document;
    use crate::shred::{shred, ShredOptions};

    fn base() -> Document {
        shred(
            "base",
            "<a><b><c/><d/></b><f><g/><h><i/><j/></h></f></a>",
            &ShredOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn naive_insert_matches_reference_serialization() {
        let doc = base();
        let mut naive = NaiveDocument::from_document(&doc);
        naive.insert_last_child(4, &fragment_from_xml("<k><l/><m/></k>"));
        let out = serialize_document(&naive.to_document());
        assert_eq!(
            out,
            "<a><b><c/><d/></b><f><g/><h><i/><j/></h><k><l/><m/></k></f></a>"
        );
        assert!(
            naive.stats.tuples_written > 3,
            "naive insert moves following tuples"
        );
    }

    #[test]
    fn paged_insert_matches_naive() {
        let doc = base();
        let frag = fragment_from_xml("<k><l/><m/></k>");
        let mut naive = NaiveDocument::from_document(&doc);
        let mut paged = PagedDocument::from_document(&doc, 8, 75);
        naive.insert_last_child(4, &frag);
        paged.insert_last_child(4, &frag);
        assert_eq!(
            serialize_document(&naive.to_document()),
            serialize_document(&paged.to_document())
        );
        paged.to_document().check_invariants().unwrap();
    }

    #[test]
    fn paged_insert_into_free_space_touches_one_page() {
        let doc = base();
        // 50% fill of 16-tuple pages leaves plenty of free slots
        let mut paged = PagedDocument::from_document(&doc, 16, 50);
        let before_pages = paged.page_count();
        paged.insert_last_child(1, &fragment_from_xml("<x/>"));
        assert_eq!(paged.stats.pages_touched, 1);
        assert_eq!(paged.stats.pages_allocated, 0);
        assert_eq!(paged.page_count(), before_pages);
    }

    #[test]
    fn paged_large_insert_appends_pages() {
        let doc = base();
        let mut paged = PagedDocument::from_document(&doc, 4, 100);
        paged.insert_last_child(
            0,
            &fragment_from_xml("<big><x1/><x2/><x3/><x4/><x5/></big>"),
        );
        assert!(paged.stats.pages_allocated >= 1);
        paged.to_document().check_invariants().unwrap();
        assert_eq!(paged.len(), 9 + 6);
    }

    #[test]
    fn delete_subtree_both_schemes() {
        let doc = base();
        let mut naive = NaiveDocument::from_document(&doc);
        let mut paged = PagedDocument::from_document(&doc, 8, 75);
        naive.delete_subtree(1); // delete <b> subtree (3 nodes)
        paged.delete_subtree(1);
        let expected = "<a><f><g/><h><i/><j/></h></f></a>";
        assert_eq!(serialize_document(&naive.to_document()), expected);
        assert_eq!(serialize_document(&paged.to_document()), expected);
        assert_eq!(naive.len(), 6);
        assert_eq!(paged.len(), 6);
    }

    #[test]
    fn repeated_updates_keep_invariants() {
        let doc = base();
        let mut paged = PagedDocument::from_document(&doc, 8, 50);
        for i in 0..20 {
            paged.insert_last_child(0, &fragment_from_xml(&format!("<n{i}><c/></n{i}>")));
        }
        let mat = paged.to_document();
        mat.check_invariants().unwrap();
        assert_eq!(mat.len(), 9 + 40);
        assert_eq!(mat.size(0), mat.len() as u32 - 1);
    }

    #[test]
    fn value_updates_on_document() {
        let mut doc = shred("t", "<a x=\"1\"><b>old</b></a>", &ShredOptions::default()).unwrap();
        doc.set_text(2, "new");
        doc.set_attribute(0, "x", "2");
        doc.set_attribute(0, "y", "3");
        doc.rename_element(1, "c");
        assert_eq!(
            serialize_document(&doc),
            "<a x=\"2\" y=\"3\"><c>new</c></a>"
        );
        doc.remove_attribute(0, "y");
        assert_eq!(doc.attribute(0, "y"), None);
    }
}
