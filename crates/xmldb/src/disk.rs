//! On-disk page images: a checksummed, versioned binary encoding of the
//! paged store's [`PagedSnapshot`] (and of plain [`Document`] fragments,
//! which the WAL embeds in logged update primitives).
//!
//! ## Snapshot file format (version 1)
//!
//! ```text
//! "MXQP" | version:u16 | name:str | page_count:u32
//! per page:  body_len:u32 | crc:u32 (over body) | body
//! page body: tuple_count:u32 | tuples
//! tuple:     kind:u8 | level:u16 | size:u32 | name:str | text:str
//!            | attr_count:u16 | (name:str value:str)*
//! str:       len:u32 | utf-8 bytes
//! ```
//!
//! All integers little-endian.  Per-page summaries, prefix-sum offsets,
//! fragment roots and the relational column image are **not** stored:
//! they are deterministically recomputed on load, so the file can never
//! disagree with them.  Each page body carries its own CRC-32 so a
//! corrupted file is detected before any half-decoded state escapes.
//!
//! Document fragments (WAL payload content) use the same tuple stream
//! under a different magic, without page structure.

use std::sync::Arc;

use mxq_wal::crc32;

use crate::doc::Document;
use crate::node::NodeKind;
use crate::update::{materialize, tuples_of, Page, PagedSnapshot, Tuple};

/// Magic bytes of a paged-snapshot image.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"MXQP";
/// Magic bytes of a document-fragment image.
pub const DOCUMENT_MAGIC: &[u8; 4] = b"MXQD";
/// Current format version (both image kinds).
pub const FORMAT_VERSION: u16 = 1;

/// Errors from decoding an on-disk image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The file's format version is not one this build can read.
    BadVersion(u16),
    /// The file ended inside a structure.
    Truncated,
    /// A page body failed its CRC-32 check.
    PageChecksum {
        /// Index of the failing page in the file.
        page: usize,
    },
    /// A structurally invalid value (bad node kind, malformed UTF-8, …).
    Malformed(&'static str),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::BadMagic => write!(f, "not an mxq on-disk image (bad magic)"),
            DiskError::BadVersion(v) => write!(f, "unsupported on-disk format version {v}"),
            DiskError::Truncated => write!(f, "on-disk image is truncated"),
            DiskError::PageChecksum { page } => {
                write!(f, "page {page} failed its checksum (corrupted image)")
            }
            DiskError::Malformed(what) => write!(f, "malformed on-disk image: {what}"),
        }
    }
}

impl std::error::Error for DiskError {}

// ---------------------------------------------------------------------------
// primitive writers/readers
// ---------------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Cursor over an encoded byte string.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DiskError> {
        let end = self.pos.checked_add(n).ok_or(DiskError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(DiskError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DiskError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DiskError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DiskError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<&'a str, DiskError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| DiskError::Malformed("non-UTF-8 string"))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// ---------------------------------------------------------------------------
// tuple codec
// ---------------------------------------------------------------------------

fn kind_byte(kind: NodeKind) -> u8 {
    match kind {
        NodeKind::Document => 0,
        NodeKind::Element => 1,
        NodeKind::Text => 2,
        NodeKind::Comment => 3,
        NodeKind::ProcessingInstruction => 4,
    }
}

fn byte_kind(b: u8) -> Result<NodeKind, DiskError> {
    Ok(match b {
        0 => NodeKind::Document,
        1 => NodeKind::Element,
        2 => NodeKind::Text,
        3 => NodeKind::Comment,
        4 => NodeKind::ProcessingInstruction,
        _ => return Err(DiskError::Malformed("unknown node kind")),
    })
}

fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    out.push(kind_byte(t.kind));
    out.extend_from_slice(&t.level.to_le_bytes());
    out.extend_from_slice(&t.size.to_le_bytes());
    put_str(out, &t.name);
    put_str(out, &t.text);
    out.extend_from_slice(&(t.attrs.len() as u16).to_le_bytes());
    for (n, v) in &t.attrs {
        put_str(out, n);
        put_str(out, v);
    }
}

fn read_tuple(r: &mut Reader<'_>) -> Result<Tuple, DiskError> {
    let kind = byte_kind(r.u8()?)?;
    let level = r.u16()?;
    let size = r.u32()?;
    let name: Arc<str> = Arc::from(r.str()?);
    let text: Arc<str> = Arc::from(r.str()?);
    let attr_count = r.u16()? as usize;
    let mut attrs = Vec::with_capacity(attr_count);
    for _ in 0..attr_count {
        let n: Arc<str> = Arc::from(r.str()?);
        let v: Arc<str> = Arc::from(r.str()?);
        attrs.push((n, v));
    }
    Ok(Tuple {
        size,
        level,
        kind,
        name,
        text,
        attrs,
    })
}

// ---------------------------------------------------------------------------
// snapshot images
// ---------------------------------------------------------------------------

/// Encode a published snapshot as a self-contained, checksummed image.
pub fn encode_snapshot(snap: &PagedSnapshot) -> Vec<u8> {
    let pages = snap.pages();
    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    put_str(&mut out, snap.name());
    out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
    let mut body = Vec::new();
    for page in pages {
        body.clear();
        body.extend_from_slice(&(page.tuples().len() as u32).to_le_bytes());
        for t in page.tuples() {
            put_tuple(&mut body, t);
        }
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
    }
    out
}

/// Decode a snapshot image, verifying the per-page checksums, and rebuild
/// the derived state (summaries, offsets, fragment roots, column image).
pub fn decode_snapshot(bytes: &[u8]) -> Result<PagedSnapshot, DiskError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != SNAPSHOT_MAGIC {
        return Err(DiskError::BadMagic);
    }
    let version = r.u16()?;
    if version != FORMAT_VERSION {
        return Err(DiskError::BadVersion(version));
    }
    let name = r.str()?.to_string();
    let page_count = r.u32()? as usize;
    let mut pages = Vec::with_capacity(page_count);
    for page_idx in 0..page_count {
        let body_len = r.u32()? as usize;
        let crc = r.u32()?;
        let body = r.take(body_len)?;
        if crc32(body) != crc {
            return Err(DiskError::PageChecksum { page: page_idx });
        }
        let mut pr = Reader::new(body);
        let tuple_count = pr.u32()? as usize;
        let mut tuples = Vec::with_capacity(tuple_count);
        for _ in 0..tuple_count {
            tuples.push(read_tuple(&mut pr)?);
        }
        if !pr.done() {
            return Err(DiskError::Malformed("trailing bytes in page body"));
        }
        pages.push(Arc::new(Page::from_tuples(tuples)));
    }
    if !r.done() {
        return Err(DiskError::Malformed("trailing bytes after last page"));
    }
    Ok(PagedSnapshot::from_pages(name, pages))
}

// ---------------------------------------------------------------------------
// document-fragment images (WAL payload content)
// ---------------------------------------------------------------------------

/// Encode a flat document (e.g. an update primitive's content fragment)
/// as one tuple stream.
pub fn encode_document(doc: &Document) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(DOCUMENT_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    put_str(&mut out, &doc.name);
    let tuples = tuples_of(doc);
    out.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
    for t in &tuples {
        put_tuple(&mut out, t);
    }
    out
}

/// Decode a document-fragment image (no checksum of its own — fragments
/// ride inside WAL records, which are CRC-checked as a whole).
pub fn decode_document(bytes: &[u8]) -> Result<Document, DiskError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != DOCUMENT_MAGIC {
        return Err(DiskError::BadMagic);
    }
    let version = r.u16()?;
    if version != FORMAT_VERSION {
        return Err(DiskError::BadVersion(version));
    }
    let name = r.str()?.to_string();
    let tuple_count = r.u32()? as usize;
    let mut tuples = Vec::with_capacity(tuple_count);
    for _ in 0..tuple_count {
        tuples.push(read_tuple(&mut r)?);
    }
    if !r.done() {
        return Err(DiskError::Malformed("trailing bytes after document image"));
    }
    Ok(materialize(&name, tuples.into_iter()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::NodeRead;
    use crate::serialize::serialize_document;
    use crate::shred::{shred, ShredOptions};
    use crate::update::PagedDocument;

    fn sample_snapshot(page_size: usize, fill: u8) -> PagedSnapshot {
        let xml = "<site id=\"s1\"><people><person id=\"p0\"><name>Ada</name></person>\
                   <person id=\"p1\"><name>Grace</name></person></people>\
                   <!--note--><?pi data?><items><item/><item price=\"3\">x</item></items></site>";
        let opts = ShredOptions {
            document_node: true,
            ..ShredOptions::default()
        };
        let doc = shred("sample.xml", xml, &opts).unwrap();
        PagedDocument::from_document(&doc, page_size, fill).snapshot()
    }

    #[test]
    fn snapshot_round_trip_preserves_everything() {
        for (page_size, fill) in [(4, 50), (8, 100), (64, 75)] {
            let snap = sample_snapshot(page_size, fill);
            let bytes = encode_snapshot(&snap);
            let back = decode_snapshot(&bytes).unwrap();
            assert_eq!(back.name(), snap.name());
            assert_eq!(back.len(), snap.len());
            assert_eq!(back.page_count(), snap.page_count());
            for pre in 0..snap.len() as u32 {
                assert_eq!(back.size(pre), snap.size(pre), "size at {pre}");
                assert_eq!(back.level(pre), snap.level(pre), "level at {pre}");
                assert_eq!(back.kind(pre), snap.kind(pre), "kind at {pre}");
                assert_eq!(back.name_of(pre), snap.name_of(pre), "name at {pre}");
                assert_eq!(back.text_of(pre), snap.text_of(pre), "text at {pre}");
            }
            assert_eq!(back.root_pres(), snap.root_pres());
            let mut ids = 0;
            for pre in 0..snap.len() as u32 {
                let id = snap.attribute(pre, "id");
                assert_eq!(back.attribute(pre, "id"), id, "attr at {pre}");
                ids += id.is_some() as u32;
            }
            assert_eq!(ids, 3, "sample has three id attributes");
            back.columns().same_content(snap.columns()).unwrap();
        }
    }

    #[test]
    fn corrupted_page_is_detected() {
        let snap = sample_snapshot(4, 75);
        let bytes = encode_snapshot(&snap);
        // flip a byte inside the last page's body
        let mut corrupted = bytes.clone();
        let n = corrupted.len();
        corrupted[n - 3] ^= 0x10;
        match decode_snapshot(&corrupted) {
            Err(DiskError::PageChecksum { .. }) => {}
            other => panic!("expected page checksum failure, got {other:?}"),
        }
        // truncation is detected too
        assert!(matches!(
            decode_snapshot(&bytes[..bytes.len() - 1]),
            Err(DiskError::Truncated) | Err(DiskError::Malformed(_))
        ));
        // wrong magic
        assert_eq!(decode_snapshot(b"nope").unwrap_err(), DiskError::BadMagic);
    }

    #[test]
    fn document_fragment_round_trip() {
        let xml = "<bidder><date>01/01/2000</date><increase a=\"b\">9.00</increase></bidder>";
        let doc = shred("frag", xml, &ShredOptions::default()).unwrap();
        let bytes = encode_document(&doc);
        let back = decode_document(&bytes).unwrap();
        assert_eq!(serialize_document(&back), serialize_document(&doc));
        assert_eq!(back.name, "frag");
    }
}
