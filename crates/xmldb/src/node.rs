//! Node kinds and attribute rows.

use std::sync::Arc;

/// The node kinds stored in the structural table.
///
/// Attributes are *not* part of the pre|size|level plane; they live in a
/// separate property container keyed by their owner's preorder rank, exactly
/// as in Figure 9 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The document node (root of a persistent document container).
    Document,
    /// An element node.
    Element,
    /// A text node.
    Text,
    /// A comment node.
    Comment,
    /// A processing instruction.
    ProcessingInstruction,
}

impl NodeKind {
    /// Short single-character tag used in debug dumps.
    pub fn letter(self) -> char {
        match self {
            NodeKind::Document => 'D',
            NodeKind::Element => 'E',
            NodeKind::Text => 'T',
            NodeKind::Comment => 'C',
            NodeKind::ProcessingInstruction => 'P',
        }
    }
}

/// One attribute of an element, stored in the attribute property container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrRow {
    /// Preorder rank of the owning element.
    pub owner: u32,
    /// Attribute name.
    pub name: Arc<str>,
    /// Attribute value (untyped atomic).
    pub value: Arc<str>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_letters_are_distinct() {
        let kinds = [
            NodeKind::Document,
            NodeKind::Element,
            NodeKind::Text,
            NodeKind::Comment,
            NodeKind::ProcessingInstruction,
        ];
        let letters: std::collections::HashSet<char> = kinds.iter().map(|k| k.letter()).collect();
        assert_eq!(letters.len(), kinds.len());
    }
}
