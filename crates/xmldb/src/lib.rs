//! # mxq-xmldb — relational XML storage
//!
//! This crate implements the XML storage layer of MonetDB/XQuery
//! (Sections 2 and 5 of the paper):
//!
//! * the **pre|size|level encoding** of XML documents ([`Document`]), in which
//!   every node is identified by its preorder rank, carries the number of
//!   nodes in its subtree (`size`) and its depth (`level`); the postorder rank
//!   is recoverable as `post = pre + size - level`;
//! * **property containers** for the different node kinds (element/attribute
//!   qualified names, text and comment content, processing-instruction
//!   target/value pairs) referenced from the structural table;
//! * a **document shredder** ([`shred()`](shred::shred)) that parses XML text into the
//!   encoding with sequential writes, and a **serializer** ([`serialize`])
//!   that reconstructs XML text with sequential reads;
//! * a **relational image** ([`columns`]): dense structural and attribute
//!   columns with dictionary-encoded names (`Column::Dict` over shared
//!   sorted dictionaries), **incrementally maintained** by the paged
//!   update path (delta-patched per primitive, never rebuilt);
//! * a **document store** ([`store::DocStore`]) holding one container per
//!   loaded document plus a transient container for nodes constructed during
//!   query evaluation — loaded documents live in the **paged store**
//!   ([`update::PagedSnapshot`]), the single source of truth shared by the
//!   query and the update path;
//! * the **canonical read API** ([`read::NodeRead`]) every representation
//!   implements: pre/size/level/name-id/text/attribute cursors plus
//!   storage-run summaries that let scans skip whole pages;
//! * the **structural update scheme** of Section 5.2 ([`update`]): page-wise
//!   remappable pre-numbers with unused tuples (pages `Arc`-shared with
//!   published snapshots, copied on first write), compared against a naive
//!   renumbering baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columns;
pub mod disk;
pub mod doc;
pub mod node;
pub mod read;
pub mod serialize;
pub mod shred;
pub mod store;
pub mod update;

pub use columns::{shred_to_columns, DocumentColumns};
pub use disk::{decode_document, decode_snapshot, encode_document, encode_snapshot, DiskError};
pub use doc::{Document, DocumentBuilder};
pub use node::{AttrRow, NodeKind};
pub use read::{AttrsIter, NodeRead};
pub use serialize::{serialize_document, serialize_node};
pub use shred::{shred, ShredError, ShredOptions};
pub use store::{
    Container, ContainerRef, DocStore, EvictedPaged, StoreError, StoreSnapshot,
    DEFAULT_FILL_PERCENT, DEFAULT_PAGE_SIZE, TRANSIENT_FRAG,
};
pub use update::{NaiveDocument, PagedDocument, PagedSnapshot, StructuralUpdate, UpdateStats};
