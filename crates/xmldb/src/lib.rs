//! # mxq-xmldb — relational XML storage
//!
//! This crate implements the XML storage layer of MonetDB/XQuery
//! (Sections 2 and 5 of the paper):
//!
//! * the **pre|size|level encoding** of XML documents ([`Document`]), in which
//!   every node is identified by its preorder rank, carries the number of
//!   nodes in its subtree (`size`) and its depth (`level`); the postorder rank
//!   is recoverable as `post = pre + size - level`;
//! * **property containers** for the different node kinds (element/attribute
//!   qualified names, text and comment content, processing-instruction
//!   target/value pairs) referenced from the structural table;
//! * a **document shredder** ([`shred()`](shred::shred)) that parses XML text into the
//!   encoding with sequential writes, and a **serializer** ([`serialize`])
//!   that reconstructs XML text with sequential reads;
//! * a **relational export** ([`columns`]) that turns a shredded document
//!   into engine tables whose tag and attribute-name columns are
//!   dictionary-encoded (`Column::Dict` over shared sorted dictionaries);
//! * a **document store** ([`store::DocStore`]) holding one container per
//!   loaded document plus a transient container for nodes constructed during
//!   query evaluation;
//! * the **structural update scheme** of Section 5.2 ([`update`]): page-wise
//!   remappable pre-numbers with unused tuples, compared against a naive
//!   renumbering baseline.

#![warn(missing_docs)]

pub mod columns;
pub mod doc;
pub mod node;
pub mod serialize;
pub mod shred;
pub mod store;
pub mod update;

pub use columns::{shred_to_columns, DocumentColumns};
pub use doc::{Document, DocumentBuilder};
pub use node::{AttrRow, NodeKind};
pub use serialize::{serialize_document, serialize_node};
pub use shred::{shred, ShredError, ShredOptions};
pub use store::{DocStore, StoreSnapshot, TRANSIENT_FRAG};
pub use update::{NaiveDocument, PagedDocument, StructuralUpdate, UpdateStats};
