//! The document store: the "loaded documents table" of Figure 9.
//!
//! A [`DocStore`] keeps one container per loaded XML document plus a
//! dedicated *transient* container that receives every node constructed
//! during query evaluation (element constructors).  Nodes are addressed by
//! [`NodeId`] = (fragment id, preorder rank); fragment 0 is always the
//! transient container, loaded documents get fragments 1, 2, ….
//!
//! **The paged store is the source of truth**: loading a document shreds
//! it straight into logical pages ([`crate::update::PagedDocument`]) and
//! the store keeps only the published immutable view — an
//! [`Arc<PagedSnapshot>`] pinning the page set and the incrementally
//! maintained column image.  Only the transient container (per-execution
//! constructed nodes) remains a flat [`Document`].  Readers address both
//! through [`ContainerRef`], which implements [`NodeRead`].
//!
//! Containers are held behind [`Arc`] so that a [`StoreSnapshot`] — the
//! immutable view a query executes against — is a cheap clone of the
//! container list.  Publishing an updated page set ([`DocStore::publish`])
//! swaps one `Arc` and bumps the store **generation counter**; snapshots
//! taken before the swap keep the old pages alive, which is what gives
//! concurrent readers snapshot isolation for free.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use mxq_engine::NodeId;

use crate::disk::decode_snapshot;
use crate::doc::{Document, DocumentBuilder};
use crate::node::NodeKind;
use crate::read::{AttrsIter, NodeRead};
use crate::shred::{shred, ShredError, ShredOptions};
use crate::update::{PagedDocument, PagedSnapshot};

/// Fragment id of the transient container holding constructed nodes.
pub const TRANSIENT_FRAG: u32 = 0;

/// Errors from store mutations addressed by fragment id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The fragment id does not name a loaded container.
    UnknownFragment(u32),
    /// The fragment id names the transient container, which holds
    /// per-execution constructed nodes and cannot be republished.
    TransientFragment,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownFragment(frag) => write!(f, "unknown fragment id {frag}"),
            StoreError::TransientFragment => {
                write!(f, "fragment {TRANSIENT_FRAG} is the transient container")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Default logical page size (tuples) for the paged store.
pub const DEFAULT_PAGE_SIZE: usize = 64;
/// Default page fill factor (percent) for the paged store.
pub const DEFAULT_FILL_PERCENT: u8 = 75;

/// A clean paged document whose pages were dropped from memory under an
/// eviction budget.  The on-disk image (written by a checkpoint) is the
/// backing copy; the first read after eviction faults the snapshot back in
/// and caches it for the lifetime of this container value.
///
/// Snapshots taken *before* the eviction still pin the old pages — eviction
/// frees memory only once those snapshots are dropped, which is the same
/// grace rule `publish` follows.
#[derive(Debug)]
pub struct EvictedPaged {
    name: String,
    path: PathBuf,
    cell: OnceLock<Arc<PagedSnapshot>>,
}

impl EvictedPaged {
    /// The backing image path.
    pub fn path(&self) -> &PathBuf {
        &self.path
    }

    /// True if the snapshot has been faulted back in since eviction.
    pub fn is_loaded(&self) -> bool {
        self.cell.get().is_some()
    }

    /// The snapshot, reading the on-disk image on first access.
    ///
    /// # Panics
    /// Panics if the backing file is unreadable or corrupt.  Only clean,
    /// checkpointed documents are ever evicted, so a failure here means the
    /// durable copy itself was damaged after the fact — there is no
    /// in-memory fallback, and a read path cannot return an error.
    pub fn fault_in(&self) -> &Arc<PagedSnapshot> {
        self.cell.get_or_init(|| {
            let bytes = std::fs::read(&self.path).unwrap_or_else(|e| {
                panic!(
                    "evicted document {:?}: backing image {:?} unreadable: {e}",
                    self.name, self.path
                )
            });
            let snap = decode_snapshot(&bytes).unwrap_or_else(|e| {
                panic!(
                    "evicted document {:?}: backing image {:?} corrupt: {e}",
                    self.name, self.path
                )
            });
            Arc::new(snap)
        })
    }
}

/// One container of the store: the transient flat [`Document`], the
/// published page-backed view of a loaded document, or an evicted document
/// backed by its on-disk image.
#[derive(Debug, Clone)]
pub enum Container {
    /// A flat pre|size|level table (the transient container).
    Doc(Arc<Document>),
    /// The published view of a paged document (pages + column image).
    Paged(Arc<PagedSnapshot>),
    /// A clean paged document dropped under a memory budget; reads fault
    /// it back in from the checkpoint image.
    Evicted(Arc<EvictedPaged>),
}

impl Container {
    /// The container name.
    pub fn name(&self) -> &str {
        match self {
            Container::Doc(d) => &d.name,
            Container::Paged(p) => p.name(),
            Container::Evicted(e) => &e.name,
        }
    }

    /// A borrowed read handle.  An evicted container faults its snapshot
    /// back in on the first call.
    pub fn as_ref(&self) -> ContainerRef<'_> {
        match self {
            Container::Doc(d) => ContainerRef::Doc(d),
            Container::Paged(p) => ContainerRef::Paged(p),
            Container::Evicted(e) => ContainerRef::Paged(e.fault_in()),
        }
    }

    /// The paged snapshot behind this container, faulting an evicted one
    /// back in; `None` for the flat transient container.
    pub fn paged_snapshot(&self) -> Option<Arc<PagedSnapshot>> {
        match self {
            Container::Doc(_) => None,
            Container::Paged(p) => Some(p.clone()),
            Container::Evicted(e) => Some(e.fault_in().clone()),
        }
    }
}

/// A borrowed read handle on one container — the type every read path
/// (executor, serializer, naive comparator) navigates through.  Copy;
/// dispatches each [`NodeRead`] call with one two-way branch.
#[derive(Debug, Clone, Copy)]
pub enum ContainerRef<'a> {
    /// A flat document container.
    Doc(&'a Document),
    /// A paged snapshot container.
    Paged(&'a PagedSnapshot),
}

macro_rules! delegate {
    ($self:ident, $d:ident => $e:expr) => {
        match $self {
            ContainerRef::Doc($d) => $e,
            ContainerRef::Paged($d) => $e,
        }
    };
}

impl NodeRead for ContainerRef<'_> {
    fn len(&self) -> usize {
        delegate!(self, d => NodeRead::len(*d))
    }
    fn size(&self, pre: u32) -> u32 {
        delegate!(self, d => NodeRead::size(*d, pre))
    }
    fn level(&self, pre: u32) -> u16 {
        delegate!(self, d => NodeRead::level(*d, pre))
    }
    fn kind(&self, pre: u32) -> NodeKind {
        delegate!(self, d => NodeRead::kind(*d, pre))
    }
    fn name_of(&self, pre: u32) -> &str {
        delegate!(self, d => NodeRead::name_of(*d, pre))
    }
    fn text_of(&self, pre: u32) -> &str {
        delegate!(self, d => NodeRead::text_of(*d, pre))
    }
    fn qname_id(&self, pre: u32) -> Option<u32> {
        delegate!(self, d => NodeRead::qname_id(*d, pre))
    }
    fn lookup_qname(&self, name: &str) -> Option<u32> {
        delegate!(self, d => NodeRead::lookup_qname(*d, name))
    }
    fn attribute(&self, pre: u32, name: &str) -> Option<&str> {
        delegate!(self, d => NodeRead::attribute(*d, pre, name))
    }
    fn attrs(&self, pre: u32) -> AttrsIter<'_> {
        delegate!(self, d => NodeRead::attrs(*d, pre))
    }
    fn root_pres(&self) -> Vec<u32> {
        delegate!(self, d => NodeRead::root_pres(*d))
    }
    fn named_elements(&self, name: &str) -> Option<Vec<u32>> {
        delegate!(self, d => NodeRead::named_elements(*d, name))
    }
    fn run_end(&self, pre: u32) -> u32 {
        delegate!(self, d => NodeRead::run_end(*d, pre))
    }
    fn run_has_name(&self, pre: u32, name: &str) -> bool {
        delegate!(self, d => NodeRead::run_has_name(*d, pre, name))
    }
    fn run_has_kind(&self, pre: u32, kind: NodeKind) -> bool {
        delegate!(self, d => NodeRead::run_has_kind(*d, pre, kind))
    }
    fn run_min_level(&self, pre: u32) -> u16 {
        delegate!(self, d => NodeRead::run_min_level(*d, pre))
    }
    fn parent(&self, pre: u32) -> Option<u32> {
        delegate!(self, d => NodeRead::parent(*d, pre))
    }
    fn string_value(&self, pre: u32) -> String {
        delegate!(self, d => NodeRead::string_value(*d, pre))
    }
}

/// A collection of document containers addressable by fragment id or name.
#[derive(Debug)]
pub struct DocStore {
    containers: Vec<Container>,
    /// Shared with snapshots: `snapshot()` is on the commit hot path, so
    /// the name table is copy-on-write (`Arc::make_mut` on load) rather
    /// than cloned per snapshot.
    by_name: Arc<HashMap<String, u32>>,
    /// Bumped on every mutation of the loaded-documents table (load,
    /// publish).  Snapshots carry the generation they were taken at, so
    /// cached state derived from a snapshot can be revalidated with one
    /// integer compare.
    generation: u64,
    page_size: usize,
    fill_percent: u8,
}

impl Default for DocStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DocStore {
    /// Create a store with an empty transient container.
    pub fn new() -> Self {
        DocStore {
            containers: vec![Container::Doc(Arc::new(Document::new("#transient")))],
            by_name: Arc::new(HashMap::new()),
            generation: 0,
            page_size: DEFAULT_PAGE_SIZE,
            fill_percent: DEFAULT_FILL_PERCENT,
        }
    }

    /// Number of containers (including the transient one).
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// The current store generation.  Every call that changes which document
    /// contents a name resolves to (loading, publishing after an update)
    /// increments it; the transient container does not participate.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The page policy (logical page size in tuples, fill factor in percent)
    /// applied to documents loaded after the call.
    ///
    /// # Panics
    /// Panics unless `page_size` is a power of two ≥ 2 and
    /// `fill_percent ∈ (0, 100]`.
    pub fn set_page_policy(&mut self, page_size: usize, fill_percent: u8) {
        assert!(
            page_size.is_power_of_two() && page_size >= 2,
            "page_size must be a power of two >= 2"
        );
        assert!(
            (1..=100).contains(&fill_percent),
            "fill_percent must be in 1..=100"
        );
        self.page_size = page_size;
        self.fill_percent = fill_percent;
    }

    /// The configured page policy as (page size, fill percent).
    pub fn page_policy(&self) -> (usize, u8) {
        (self.page_size, self.fill_percent)
    }

    /// Load an already shredded document: pages it under the configured
    /// policy and publishes the paged view.  Returns the fragment id.
    pub fn add_document(&mut self, doc: Document) -> u32 {
        let paged = PagedDocument::from_document(&doc, self.page_size, self.fill_percent);
        self.add_paged(&doc.name.clone(), Arc::new(paged.snapshot()))
    }

    /// Register a published paged view under a name, returning its fragment
    /// id.
    pub fn add_paged(&mut self, name: &str, snap: Arc<PagedSnapshot>) -> u32 {
        let frag = self.containers.len() as u32;
        Arc::make_mut(&mut self.by_name).insert(name.to_string(), frag);
        self.containers.push(Container::Paged(snap));
        self.generation += 1;
        frag
    }

    /// Shred and load an XML text under the given name.  A document node is
    /// materialised so that `fn:doc(name)/rootelement/…` navigates as in the
    /// XQuery data model.
    pub fn load_xml(&mut self, name: &str, xml: &str) -> Result<u32, ShredError> {
        let opts = ShredOptions {
            document_node: true,
            ..ShredOptions::default()
        };
        let doc = shred(name, xml, &opts)?;
        Ok(self.add_document(doc))
    }

    /// Fragment id of the document loaded under `name` (as used by `fn:doc`).
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Publish an updated page set for the container at `frag` (the
    /// fragment id — and with it every `NodeId` namespace — stays stable).
    /// This is the writer's whole critical section: one `Arc` swap.
    /// Snapshots taken before the call keep observing the old pages.
    ///
    /// Fails with [`StoreError`] if the fragment id is unknown or refers to
    /// the transient container; the store is left untouched.
    pub fn publish(&mut self, frag: u32, snap: Arc<PagedSnapshot>) -> Result<(), StoreError> {
        if frag == TRANSIENT_FRAG {
            return Err(StoreError::TransientFragment);
        }
        if (frag as usize) >= self.containers.len() {
            return Err(StoreError::UnknownFragment(frag));
        }
        self.containers[frag as usize] = Container::Paged(snap);
        self.generation += 1;
        Ok(())
    }

    /// Replace the container at `frag` with a freshly paged view of `doc`
    /// (convenience wrapper over [`DocStore::publish`]).
    ///
    /// Fails with [`StoreError`] if the fragment id is unknown or refers to
    /// the transient container; the store is left untouched.
    pub fn replace_document(&mut self, frag: u32, doc: Document) -> Result<(), StoreError> {
        let paged = PagedDocument::from_document(&doc, self.page_size, self.fill_percent);
        self.publish(frag, Arc::new(paged.snapshot()))
    }

    /// Borrow a container by fragment id.
    ///
    /// # Panics
    /// Panics if the fragment id is unknown.
    pub fn container(&self, frag: u32) -> ContainerRef<'_> {
        self.containers[frag as usize].as_ref()
    }

    /// Shared handle to a container by fragment id (cheap `Arc` clone).
    ///
    /// # Panics
    /// Panics if the fragment id is unknown.
    pub fn container_owned(&self, frag: u32) -> Container {
        self.containers[frag as usize].clone()
    }

    /// An immutable, shareable view of all loaded documents as of now.
    /// Cloning the snapshot is cheap (it clones `Arc`s, not documents).
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            containers: self.containers.clone(),
            by_name: self.by_name.clone(),
            generation: self.generation,
        }
    }

    /// Borrow the container holding `node`.
    pub fn doc_of(&self, node: NodeId) -> ContainerRef<'_> {
        self.container(node.frag)
    }

    /// The root node of the document loaded under `name`.
    pub fn document_root(&self, name: &str) -> Option<NodeId> {
        let frag = self.lookup(name)?;
        self.container(frag)
            .root_pres()
            .first()
            .map(|&pre| NodeId::new(frag, pre))
    }

    /// Borrow the transient container (always a flat [`Document`]).
    pub fn transient(&self) -> &Document {
        match &self.containers[TRANSIENT_FRAG as usize] {
            Container::Doc(d) => d,
            _ => unreachable!("the transient container is never paged or evicted"),
        }
    }

    /// Construct new nodes in the transient container: the closure receives a
    /// [`DocumentBuilder`] positioned at a fresh fragment; the returned
    /// preorder rank (e.g. from [`DocumentBuilder::start_element`]) is wrapped
    /// into a [`NodeId`] in the transient fragment.
    pub fn construct<F>(&mut self, build: F) -> NodeId
    where
        F: FnOnce(&mut DocumentBuilder) -> u32,
    {
        let transient = std::mem::take(self.transient_mut());
        let mut builder = DocumentBuilder::append_to(transient, 0);
        let pre = build(&mut builder);
        self.containers[TRANSIENT_FRAG as usize] = Container::Doc(Arc::new(builder.finish()));
        NodeId::new(TRANSIENT_FRAG, pre)
    }

    /// Discard all nodes constructed so far (empties the transient
    /// container).  Benchmarks call this between runs so repeated element
    /// construction does not accumulate.
    pub fn clear_transient(&mut self) {
        self.containers[TRANSIENT_FRAG as usize] =
            Container::Doc(Arc::new(Document::new("#transient")));
    }

    /// Mutable access to the transient container (used by the naive
    /// interpreter's element construction, which needs to copy subtrees from
    /// other containers while building).  Clones the container first if a
    /// snapshot still shares it.
    pub fn transient_mut(&mut self) -> &mut Document {
        match &mut self.containers[TRANSIENT_FRAG as usize] {
            Container::Doc(d) => Arc::make_mut(d),
            _ => unreachable!("the transient container is never paged or evicted"),
        }
    }

    /// String value of a node.
    pub fn string_value(&self, node: NodeId) -> String {
        self.doc_of(node).string_value(node.pre)
    }

    /// Element/PI name of a node.
    pub fn name_of(&self, node: NodeId) -> &str {
        match &self.containers[node.frag as usize] {
            Container::Doc(d) => d.name_of(node.pre),
            Container::Paged(p) => NodeRead::name_of(&**p, node.pre),
            Container::Evicted(e) => NodeRead::name_of(&**e.fault_in(), node.pre),
        }
    }

    /// Attribute value on a node.
    pub fn attribute(&self, node: NodeId, name: &str) -> Option<&str> {
        match &self.containers[node.frag as usize] {
            Container::Doc(d) => d.attribute(node.pre, name),
            Container::Paged(p) => NodeRead::attribute(&**p, node.pre, name),
            Container::Evicted(e) => NodeRead::attribute(&**e.fault_in(), node.pre, name),
        }
    }

    /// Total number of nodes over all containers (diagnostics).
    pub fn total_nodes(&self) -> usize {
        self.containers.iter().map(|c| c.as_ref().len()).sum()
    }

    /// Force the generation counter (crash recovery replays a WAL whose
    /// records are stamped with the generations the original publishes
    /// produced; after replay the store must report the same generation the
    /// pre-crash store did, so stamps stay comparable across restarts).
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Drop a clean paged document's pages from memory, leaving a fault-in
    /// stub backed by the on-disk image at `path` (which the caller — the
    /// checkpoint logic — has already written).  Reads fault the snapshot
    /// back in transparently; the generation does not change, because the
    /// logical content does not.  A document that was evicted earlier and
    /// faulted back in by a read is evicted again the same way: the loaded
    /// stub is replaced by a fresh unloaded one, so a memory budget stays
    /// enforceable across fault-ins.
    ///
    /// Fails if the fragment is unknown or transient.
    pub fn evict_paged(&mut self, frag: u32, path: PathBuf) -> Result<(), StoreError> {
        if frag == TRANSIENT_FRAG {
            return Err(StoreError::TransientFragment);
        }
        let name = match self.containers.get(frag as usize) {
            Some(Container::Paged(p)) => p.name().to_string(),
            Some(Container::Evicted(e)) => e.name.clone(),
            Some(Container::Doc(_)) | None => return Err(StoreError::UnknownFragment(frag)),
        };
        let stub = EvictedPaged {
            name,
            path,
            cell: OnceLock::new(),
        };
        self.containers[frag as usize] = Container::Evicted(Arc::new(stub));
        Ok(())
    }

    /// True if the fragment's pages are resident in memory (loaded, or
    /// evicted and faulted back in).
    pub fn is_resident(&self, frag: u32) -> bool {
        match self.containers.get(frag as usize) {
            Some(Container::Evicted(e)) => e.is_loaded(),
            Some(_) => true,
            None => false,
        }
    }

    /// Approximate bytes of resident page/column data over all loaded
    /// documents (the quantity an eviction budget is compared against).
    /// Evicted-but-not-faulted documents contribute nothing.
    pub fn resident_page_bytes(&self) -> usize {
        self.containers
            .iter()
            .map(|c| match c {
                Container::Doc(_) => 0,
                Container::Paged(p) => p.approx_bytes(),
                Container::Evicted(e) => e.cell.get().map_or(0, |p| p.approx_bytes()),
            })
            .sum()
    }
}

/// An immutable view of a [`DocStore`] at a point in time.
///
/// A snapshot is what a query executes against: it pins every loaded
/// document's page set and column image (via `Arc`), so a concurrent
/// writer publishing an update can never pull the data out from under a
/// running query or an already produced result.  The
/// [`StoreSnapshot::generation`] records which store state the snapshot
/// reflects; comparing it against [`DocStore::generation`] tells whether
/// the snapshot is still current.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    containers: Vec<Container>,
    by_name: Arc<HashMap<String, u32>>,
    generation: u64,
}

impl StoreSnapshot {
    /// The store generation this snapshot was taken at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of containers (including the transient slot).
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Borrow a container by fragment id.
    ///
    /// # Panics
    /// Panics if the fragment id is unknown.
    pub fn container(&self, frag: u32) -> ContainerRef<'_> {
        self.containers[frag as usize].as_ref()
    }

    /// Shared handle to a container (cheap `Arc` clone).
    pub fn container_owned(&self, frag: u32) -> Container {
        self.containers[frag as usize].clone()
    }

    /// Fragment id of the document loaded under `name`.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The root node of the document loaded under `name`.
    pub fn document_root(&self, name: &str) -> Option<NodeId> {
        let frag = self.lookup(name)?;
        self.container(frag)
            .root_pres()
            .first()
            .map(|&pre| NodeId::new(frag, pre))
    }

    /// Borrow the container holding `node`.
    pub fn doc_of(&self, node: NodeId) -> ContainerRef<'_> {
        self.container(node.frag)
    }

    /// String value of a node.
    pub fn string_value(&self, node: NodeId) -> String {
        self.doc_of(node).string_value(node.pre)
    }

    /// Element/PI name of a node.
    pub fn name_of(&self, node: NodeId) -> &str {
        match &self.containers[node.frag as usize] {
            Container::Doc(d) => d.name_of(node.pre),
            Container::Paged(p) => NodeRead::name_of(&**p, node.pre),
            Container::Evicted(e) => NodeRead::name_of(&**e.fault_in(), node.pre),
        }
    }

    /// Attribute value on a node.
    pub fn attribute(&self, node: NodeId, name: &str) -> Option<&str> {
        match &self.containers[node.frag as usize] {
            Container::Doc(d) => d.attribute(node.pre, name),
            Container::Paged(p) => NodeRead::attribute(&**p, node.pre, name),
            Container::Evicted(e) => NodeRead::attribute(&**e.fault_in(), node.pre, name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_lookup_and_roots() {
        let mut store = DocStore::new();
        let frag = store.load_xml("doc.xml", "<a><b/></a>").unwrap();
        assert_eq!(frag, 1);
        assert_eq!(store.lookup("doc.xml"), Some(1));
        assert_eq!(store.lookup("other.xml"), None);
        let root = store.document_root("doc.xml").unwrap();
        assert_eq!(root, NodeId::new(1, 0));
        // the root is the document node; its single child is the `a` element
        let doc = store.container(root.frag);
        let first_child = doc.children(root.pre).next().unwrap();
        assert_eq!(doc.name_of(first_child), "a");
        // loaded documents live in the paged store
        assert!(matches!(store.container(frag), ContainerRef::Paged(_)));
    }

    #[test]
    fn construct_appends_fragments_to_transient() {
        let mut store = DocStore::new();
        let n1 = store.construct(|b| {
            let pre = b.start_element("greeting");
            b.text("hi");
            b.end_element();
            pre
        });
        let n2 = store.construct(|b| {
            let pre = b.start_element("other");
            b.end_element();
            pre
        });
        assert_eq!(n1.frag, TRANSIENT_FRAG);
        assert_eq!(n2.frag, TRANSIENT_FRAG);
        assert!(n1.pre < n2.pre);
        assert_eq!(store.string_value(n1), "hi");
        assert_eq!(store.name_of(n2), "other");
        assert_eq!(store.transient().fragment_roots().len(), 2);
    }

    #[test]
    fn multiple_documents_get_distinct_fragments() {
        let mut store = DocStore::new();
        let a = store.load_xml("a.xml", "<a/>").unwrap();
        let b = store.load_xml("b.xml", "<b/>").unwrap();
        assert_ne!(a, b);
        assert_eq!(store.container_count(), 3);
        assert_eq!(store.total_nodes(), 4);
    }

    #[test]
    fn publish_to_bad_fragment_is_an_error_not_an_abort() {
        let mut store = DocStore::new();
        let frag = store.load_xml("a.xml", "<a/>").unwrap();
        let snap = store
            .container_owned(frag)
            .paged_snapshot()
            .expect("loaded documents are paged");
        let gen_before = store.generation();
        assert_eq!(
            store.publish(TRANSIENT_FRAG, snap.clone()),
            Err(StoreError::TransientFragment)
        );
        assert_eq!(
            store.publish(999, snap.clone()),
            Err(StoreError::UnknownFragment(999))
        );
        let opts = ShredOptions::default();
        let doc = shred("b.xml", "<b/>", &opts).unwrap();
        assert_eq!(
            store.replace_document(42, doc),
            Err(StoreError::UnknownFragment(42))
        );
        // failed publishes leave the store untouched
        assert_eq!(store.generation(), gen_before);
        assert!(store.publish(frag, snap).is_ok());
        assert_eq!(store.generation(), gen_before + 1);
    }

    #[test]
    fn snapshots_pin_replaced_documents() {
        let mut store = DocStore::new();
        let frag = store.load_xml("a.xml", "<a><old/></a>").unwrap();
        let before = store.snapshot();
        let gen_before = store.generation();

        let opts = ShredOptions {
            document_node: true,
            ..ShredOptions::default()
        };
        let doc = shred("a.xml", "<a><new/></a>", &opts).unwrap();
        store.replace_document(frag, doc).unwrap();

        assert!(store.generation() > gen_before);
        assert_eq!(before.generation(), gen_before);
        // the snapshot still sees the pre-replacement tree
        let root = before.document_root("a.xml").unwrap();
        let a = before.container(frag).children(root.pre).next().unwrap();
        let child = before.container(frag).children(a).next().unwrap();
        assert_eq!(before.name_of(NodeId::new(frag, child)), "old");
        // the store sees the replacement
        let root = store.document_root("a.xml").unwrap();
        let a = store.container(frag).children(root.pre).next().unwrap();
        let child = store.container(frag).children(a).next().unwrap();
        assert_eq!(store.name_of(NodeId::new(frag, child)), "new");
    }

    #[test]
    fn paged_container_reads_match_flat_shred() {
        let xml = "<site a=\"1\"><item><name>x</name></item><item/><!--c--></site>";
        let mut store = DocStore::new();
        let frag = store.load_xml("d.xml", xml).unwrap();
        let opts = ShredOptions {
            document_node: true,
            ..ShredOptions::default()
        };
        let flat = shred("d.xml", xml, &opts).unwrap();
        let paged = store.container(frag);
        assert_eq!(paged.len(), flat.len());
        for p in 0..flat.len() as u32 {
            assert_eq!(paged.size(p), flat.size(p), "size at {p}");
            assert_eq!(paged.level(p), flat.level(p), "level at {p}");
            assert_eq!(paged.kind(p), flat.kind(p), "kind at {p}");
            assert_eq!(paged.name_of(p), flat.name_of(p), "name at {p}");
            assert_eq!(paged.text_of(p), flat.text_of(p), "text at {p}");
            assert_eq!(NodeRead::parent(&paged, p), flat.parent(p), "parent at {p}");
            assert_eq!(paged.string_value(p), flat.string_value(p));
        }
        assert_eq!(paged.attribute(1, "a"), Some("1"));
        assert_eq!(
            paged.named_elements("item"),
            Some(flat.elements_named("item").to_vec())
        );
    }
}
