//! The document store: the "loaded documents table" of Figure 9.
//!
//! A [`DocStore`] keeps one [`Document`] container per loaded XML document
//! plus a dedicated *transient* container that receives every node
//! constructed during query evaluation (element constructors).  Nodes are
//! addressed by [`NodeId`] = (fragment id, preorder rank); fragment 0 is
//! always the transient container, loaded documents get fragments 1, 2, ….

use std::collections::HashMap;

use mxq_engine::NodeId;

use crate::doc::{Document, DocumentBuilder};
use crate::shred::{shred, ShredError, ShredOptions};

/// Fragment id of the transient container holding constructed nodes.
pub const TRANSIENT_FRAG: u32 = 0;

/// A collection of document containers addressable by fragment id or name.
#[derive(Debug)]
pub struct DocStore {
    containers: Vec<Document>,
    by_name: HashMap<String, u32>,
}

impl Default for DocStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DocStore {
    /// Create a store with an empty transient container.
    pub fn new() -> Self {
        DocStore {
            containers: vec![Document::new("#transient")],
            by_name: HashMap::new(),
        }
    }

    /// Number of containers (including the transient one).
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Load an already shredded document, returning its fragment id.
    pub fn add_document(&mut self, doc: Document) -> u32 {
        let frag = self.containers.len() as u32;
        self.by_name.insert(doc.name.clone(), frag);
        self.containers.push(doc);
        frag
    }

    /// Shred and load an XML text under the given name.  A document node is
    /// materialised so that `fn:doc(name)/rootelement/…` navigates as in the
    /// XQuery data model.
    pub fn load_xml(&mut self, name: &str, xml: &str) -> Result<u32, ShredError> {
        let opts = ShredOptions {
            document_node: true,
            ..ShredOptions::default()
        };
        let doc = shred(name, xml, &opts)?;
        Ok(self.add_document(doc))
    }

    /// Fragment id of the document loaded under `name` (as used by `fn:doc`).
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Replace the container at `frag` in place (the fragment id — and with
    /// it every `NodeId` namespace — stays stable).  Used by the update path
    /// to swap in the re-materialized view of an updated paged document.
    ///
    /// # Panics
    /// Panics if the fragment id is unknown or refers to the transient
    /// container.
    pub fn replace_document(&mut self, frag: u32, doc: Document) {
        assert!(
            frag != TRANSIENT_FRAG && (frag as usize) < self.containers.len(),
            "replace_document: unknown or transient fragment {frag}"
        );
        self.containers[frag as usize] = doc;
    }

    /// Borrow a container by fragment id.
    ///
    /// # Panics
    /// Panics if the fragment id is unknown.
    pub fn container(&self, frag: u32) -> &Document {
        &self.containers[frag as usize]
    }

    /// Borrow the container holding `node`.
    pub fn doc_of(&self, node: NodeId) -> &Document {
        self.container(node.frag)
    }

    /// The root node of the document loaded under `name`.
    pub fn document_root(&self, name: &str) -> Option<NodeId> {
        let frag = self.lookup(name)?;
        let doc = self.container(frag);
        doc.fragment_roots()
            .first()
            .map(|&pre| NodeId::new(frag, pre))
    }

    /// Construct new nodes in the transient container: the closure receives a
    /// [`DocumentBuilder`] positioned at a fresh fragment; the returned
    /// preorder rank (e.g. from [`DocumentBuilder::start_element`]) is wrapped
    /// into a [`NodeId`] in the transient fragment.
    pub fn construct<F>(&mut self, build: F) -> NodeId
    where
        F: FnOnce(&mut DocumentBuilder) -> u32,
    {
        let transient = std::mem::take(&mut self.containers[TRANSIENT_FRAG as usize]);
        let mut builder = DocumentBuilder::append_to(transient, 0);
        let pre = build(&mut builder);
        self.containers[TRANSIENT_FRAG as usize] = builder.finish();
        NodeId::new(TRANSIENT_FRAG, pre)
    }

    /// Discard all nodes constructed so far (empties the transient
    /// container).  Benchmarks call this between runs so repeated element
    /// construction does not accumulate.
    pub fn clear_transient(&mut self) {
        self.containers[TRANSIENT_FRAG as usize] = Document::new("#transient");
    }

    /// Mutable access to the transient container (used by the executor's
    /// element construction, which needs to copy subtrees from other
    /// containers while building).
    pub fn transient_mut(&mut self) -> &mut Document {
        &mut self.containers[TRANSIENT_FRAG as usize]
    }

    /// String value of a node (see [`Document::string_value`]).
    pub fn string_value(&self, node: NodeId) -> String {
        self.doc_of(node).string_value(node.pre)
    }

    /// Element/PI name of a node.
    pub fn name_of(&self, node: NodeId) -> &str {
        self.doc_of(node).name_of(node.pre)
    }

    /// Attribute value on a node.
    pub fn attribute(&self, node: NodeId, name: &str) -> Option<&str> {
        self.doc_of(node).attribute(node.pre, name)
    }

    /// Total number of nodes over all containers (diagnostics).
    pub fn total_nodes(&self) -> usize {
        self.containers.iter().map(|d| d.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_lookup_and_roots() {
        let mut store = DocStore::new();
        let frag = store.load_xml("doc.xml", "<a><b/></a>").unwrap();
        assert_eq!(frag, 1);
        assert_eq!(store.lookup("doc.xml"), Some(1));
        assert_eq!(store.lookup("other.xml"), None);
        let root = store.document_root("doc.xml").unwrap();
        assert_eq!(root, NodeId::new(1, 0));
        // the root is the document node; its single child is the `a` element
        let doc = store.container(root.frag);
        let first_child = doc.children(root.pre).next().unwrap();
        assert_eq!(doc.name_of(first_child), "a");
    }

    #[test]
    fn construct_appends_fragments_to_transient() {
        let mut store = DocStore::new();
        let n1 = store.construct(|b| {
            let pre = b.start_element("greeting");
            b.text("hi");
            b.end_element();
            pre
        });
        let n2 = store.construct(|b| {
            let pre = b.start_element("other");
            b.end_element();
            pre
        });
        assert_eq!(n1.frag, TRANSIENT_FRAG);
        assert_eq!(n2.frag, TRANSIENT_FRAG);
        assert!(n1.pre < n2.pre);
        assert_eq!(store.string_value(n1), "hi");
        assert_eq!(store.name_of(n2), "other");
        assert_eq!(store.container(TRANSIENT_FRAG).fragment_roots().len(), 2);
    }

    #[test]
    fn multiple_documents_get_distinct_fragments() {
        let mut store = DocStore::new();
        let a = store.load_xml("a.xml", "<a/>").unwrap();
        let b = store.load_xml("b.xml", "<b/>").unwrap();
        assert_ne!(a, b);
        assert_eq!(store.container_count(), 3);
        assert_eq!(store.total_nodes(), 4);
    }
}
