//! The document store: the "loaded documents table" of Figure 9.
//!
//! A [`DocStore`] keeps one [`Document`] container per loaded XML document
//! plus a dedicated *transient* container that receives every node
//! constructed during query evaluation (element constructors).  Nodes are
//! addressed by [`NodeId`] = (fragment id, preorder rank); fragment 0 is
//! always the transient container, loaded documents get fragments 1, 2, ….
//!
//! Containers are held behind [`Arc`] so that a [`StoreSnapshot`] — the
//! immutable view a query executes against — is a cheap clone of the
//! container list.  Replacing a document (the update path) swaps the `Arc`
//! and bumps the store **generation counter**; snapshots taken before the
//! swap keep the old containers alive, which is what gives concurrent
//! readers snapshot isolation for free.

use std::collections::HashMap;
use std::sync::Arc;

use mxq_engine::NodeId;

use crate::doc::{Document, DocumentBuilder};
use crate::shred::{shred, ShredError, ShredOptions};

/// Fragment id of the transient container holding constructed nodes.
pub const TRANSIENT_FRAG: u32 = 0;

/// A collection of document containers addressable by fragment id or name.
#[derive(Debug)]
pub struct DocStore {
    containers: Vec<Arc<Document>>,
    by_name: HashMap<String, u32>,
    /// Bumped on every mutation of the loaded-documents table (load, replace).
    /// Snapshots carry the generation they were taken at, so cached state
    /// derived from a snapshot can be revalidated with one integer compare.
    generation: u64,
}

impl Default for DocStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DocStore {
    /// Create a store with an empty transient container.
    pub fn new() -> Self {
        DocStore {
            containers: vec![Arc::new(Document::new("#transient"))],
            by_name: HashMap::new(),
            generation: 0,
        }
    }

    /// Number of containers (including the transient one).
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// The current store generation.  Every call that changes which document
    /// contents a name resolves to (loading, replacing after an update)
    /// increments it; the transient container does not participate.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Load an already shredded document, returning its fragment id.
    pub fn add_document(&mut self, doc: Document) -> u32 {
        let frag = self.containers.len() as u32;
        self.by_name.insert(doc.name.clone(), frag);
        self.containers.push(Arc::new(doc));
        self.generation += 1;
        frag
    }

    /// Shred and load an XML text under the given name.  A document node is
    /// materialised so that `fn:doc(name)/rootelement/…` navigates as in the
    /// XQuery data model.
    pub fn load_xml(&mut self, name: &str, xml: &str) -> Result<u32, ShredError> {
        let opts = ShredOptions {
            document_node: true,
            ..ShredOptions::default()
        };
        let doc = shred(name, xml, &opts)?;
        Ok(self.add_document(doc))
    }

    /// Fragment id of the document loaded under `name` (as used by `fn:doc`).
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Replace the container at `frag` in place (the fragment id — and with
    /// it every `NodeId` namespace — stays stable).  Used by the update path
    /// to swap in the re-materialized view of an updated paged document.
    /// Snapshots taken before the call keep observing the old contents.
    ///
    /// # Panics
    /// Panics if the fragment id is unknown or refers to the transient
    /// container.
    pub fn replace_document(&mut self, frag: u32, doc: Document) {
        assert!(
            frag != TRANSIENT_FRAG && (frag as usize) < self.containers.len(),
            "replace_document: unknown or transient fragment {frag}"
        );
        self.containers[frag as usize] = Arc::new(doc);
        self.generation += 1;
    }

    /// Borrow a container by fragment id.
    ///
    /// # Panics
    /// Panics if the fragment id is unknown.
    pub fn container(&self, frag: u32) -> &Document {
        &self.containers[frag as usize]
    }

    /// Shared handle to a container by fragment id (cheap `Arc` clone).
    ///
    /// # Panics
    /// Panics if the fragment id is unknown.
    pub fn container_arc(&self, frag: u32) -> Arc<Document> {
        self.containers[frag as usize].clone()
    }

    /// An immutable, shareable view of all loaded documents as of now.
    /// Cloning the snapshot is cheap (it clones `Arc`s, not documents).
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            containers: self.containers.clone(),
            by_name: Arc::new(self.by_name.clone()),
            generation: self.generation,
        }
    }

    /// Borrow the container holding `node`.
    pub fn doc_of(&self, node: NodeId) -> &Document {
        self.container(node.frag)
    }

    /// The root node of the document loaded under `name`.
    pub fn document_root(&self, name: &str) -> Option<NodeId> {
        let frag = self.lookup(name)?;
        let doc = self.container(frag);
        doc.fragment_roots()
            .first()
            .map(|&pre| NodeId::new(frag, pre))
    }

    /// Construct new nodes in the transient container: the closure receives a
    /// [`DocumentBuilder`] positioned at a fresh fragment; the returned
    /// preorder rank (e.g. from [`DocumentBuilder::start_element`]) is wrapped
    /// into a [`NodeId`] in the transient fragment.
    pub fn construct<F>(&mut self, build: F) -> NodeId
    where
        F: FnOnce(&mut DocumentBuilder) -> u32,
    {
        let transient = std::mem::take(self.transient_mut());
        let mut builder = DocumentBuilder::append_to(transient, 0);
        let pre = build(&mut builder);
        self.containers[TRANSIENT_FRAG as usize] = Arc::new(builder.finish());
        NodeId::new(TRANSIENT_FRAG, pre)
    }

    /// Discard all nodes constructed so far (empties the transient
    /// container).  Benchmarks call this between runs so repeated element
    /// construction does not accumulate.
    pub fn clear_transient(&mut self) {
        self.containers[TRANSIENT_FRAG as usize] = Arc::new(Document::new("#transient"));
    }

    /// Mutable access to the transient container (used by the naive
    /// interpreter's element construction, which needs to copy subtrees from
    /// other containers while building).  Clones the container first if a
    /// snapshot still shares it.
    pub fn transient_mut(&mut self) -> &mut Document {
        Arc::make_mut(&mut self.containers[TRANSIENT_FRAG as usize])
    }

    /// String value of a node (see [`Document::string_value`]).
    pub fn string_value(&self, node: NodeId) -> String {
        self.doc_of(node).string_value(node.pre)
    }

    /// Element/PI name of a node.
    pub fn name_of(&self, node: NodeId) -> &str {
        self.doc_of(node).name_of(node.pre)
    }

    /// Attribute value on a node.
    pub fn attribute(&self, node: NodeId, name: &str) -> Option<&str> {
        self.doc_of(node).attribute(node.pre, name)
    }

    /// Total number of nodes over all containers (diagnostics).
    pub fn total_nodes(&self) -> usize {
        self.containers.iter().map(|d| d.len()).sum()
    }
}

/// An immutable view of a [`DocStore`] at a point in time.
///
/// A snapshot is what a query executes against: it pins every loaded
/// document (via `Arc`), so a concurrent writer replacing a document can
/// never pull the data out from under a running query or an already
/// produced result.  The [`StoreSnapshot::generation`] records which store
/// state the snapshot reflects; comparing it against
/// [`DocStore::generation`] tells whether the snapshot is still current.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    containers: Vec<Arc<Document>>,
    by_name: Arc<HashMap<String, u32>>,
    generation: u64,
}

impl StoreSnapshot {
    /// The store generation this snapshot was taken at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of containers (including the transient slot).
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Borrow a container by fragment id.
    ///
    /// # Panics
    /// Panics if the fragment id is unknown.
    pub fn container(&self, frag: u32) -> &Document {
        &self.containers[frag as usize]
    }

    /// Shared handle to a container (cheap `Arc` clone).
    pub fn container_arc(&self, frag: u32) -> Arc<Document> {
        self.containers[frag as usize].clone()
    }

    /// Fragment id of the document loaded under `name`.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The root node of the document loaded under `name`.
    pub fn document_root(&self, name: &str) -> Option<NodeId> {
        let frag = self.lookup(name)?;
        let doc = self.container(frag);
        doc.fragment_roots()
            .first()
            .map(|&pre| NodeId::new(frag, pre))
    }

    /// Borrow the container holding `node`.
    pub fn doc_of(&self, node: NodeId) -> &Document {
        self.container(node.frag)
    }

    /// String value of a node.
    pub fn string_value(&self, node: NodeId) -> String {
        self.doc_of(node).string_value(node.pre)
    }

    /// Element/PI name of a node.
    pub fn name_of(&self, node: NodeId) -> &str {
        self.doc_of(node).name_of(node.pre)
    }

    /// Attribute value on a node.
    pub fn attribute(&self, node: NodeId, name: &str) -> Option<&str> {
        self.doc_of(node).attribute(node.pre, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_lookup_and_roots() {
        let mut store = DocStore::new();
        let frag = store.load_xml("doc.xml", "<a><b/></a>").unwrap();
        assert_eq!(frag, 1);
        assert_eq!(store.lookup("doc.xml"), Some(1));
        assert_eq!(store.lookup("other.xml"), None);
        let root = store.document_root("doc.xml").unwrap();
        assert_eq!(root, NodeId::new(1, 0));
        // the root is the document node; its single child is the `a` element
        let doc = store.container(root.frag);
        let first_child = doc.children(root.pre).next().unwrap();
        assert_eq!(doc.name_of(first_child), "a");
    }

    #[test]
    fn construct_appends_fragments_to_transient() {
        let mut store = DocStore::new();
        let n1 = store.construct(|b| {
            let pre = b.start_element("greeting");
            b.text("hi");
            b.end_element();
            pre
        });
        let n2 = store.construct(|b| {
            let pre = b.start_element("other");
            b.end_element();
            pre
        });
        assert_eq!(n1.frag, TRANSIENT_FRAG);
        assert_eq!(n2.frag, TRANSIENT_FRAG);
        assert!(n1.pre < n2.pre);
        assert_eq!(store.string_value(n1), "hi");
        assert_eq!(store.name_of(n2), "other");
        assert_eq!(store.container(TRANSIENT_FRAG).fragment_roots().len(), 2);
    }

    #[test]
    fn multiple_documents_get_distinct_fragments() {
        let mut store = DocStore::new();
        let a = store.load_xml("a.xml", "<a/>").unwrap();
        let b = store.load_xml("b.xml", "<b/>").unwrap();
        assert_ne!(a, b);
        assert_eq!(store.container_count(), 3);
        assert_eq!(store.total_nodes(), 4);
    }

    #[test]
    fn snapshots_pin_replaced_documents() {
        let mut store = DocStore::new();
        let frag = store.load_xml("a.xml", "<a><old/></a>").unwrap();
        let before = store.snapshot();
        let gen_before = store.generation();

        let opts = ShredOptions {
            document_node: true,
            ..ShredOptions::default()
        };
        let doc = shred("a.xml", "<a><new/></a>", &opts).unwrap();
        store.replace_document(frag, doc);

        assert!(store.generation() > gen_before);
        assert_eq!(before.generation(), gen_before);
        // the snapshot still sees the pre-replacement tree
        let root = before.document_root("a.xml").unwrap();
        let a = before.container(frag).children(root.pre).next().unwrap();
        let child = before.container(frag).children(a).next().unwrap();
        assert_eq!(before.name_of(NodeId::new(frag, child)), "old");
        // the store sees the replacement
        let root = store.document_root("a.xml").unwrap();
        let a = store.container(frag).children(root.pre).next().unwrap();
        let child = store.container(frag).children(a).next().unwrap();
        assert_eq!(store.name_of(NodeId::new(frag, child)), "new");
    }
}
