//! Offline stand-in for the `rand` crate.
//!
//! The container this repository builds in has no crates.io registry, so the
//! workspace vendors the minimal API surface the XMark generator needs:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer and float ranges,
//! and `Rng::gen_bool`.  The generator only requires *determinism*, not any
//! particular stream, so the core is a SplitMix64 sequence (the same mixer
//! rand itself uses for seeding).  Replace with the real crate once the build
//! environment has registry access.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (mirrors `rand::SeedableRng` for the one constructor
/// the workspace uses).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A deterministic pseudo-random generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits in [0, 1)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A sampleable range of values (mirrors `rand::distributions::uniform`
/// just far enough for `gen_range`).
pub trait SampleRange {
    /// The value type produced by sampling.
    type Output;
    /// Draw one uniform sample from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Random value generation (mirrors the `rand::Rng` methods the workspace
/// uses).
pub trait Rng {
    /// Uniform sample from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output;
    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.next_f64() < p
    }
}

/// Module mirror of `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(3..17);
            assert_eq!(x, b.gen_range(3..17));
            assert!((3..17).contains(&x));
            let f = a.gen_range(1.5..2.5);
            assert_eq!(f, b.gen_range(1.5..2.5));
            assert!((1.5..2.5).contains(&f));
            let y = a.gen_range(1..=5);
            assert_eq!(y, b.gen_range(1..=5));
            assert!((1..=5).contains(&y));
            assert_eq!(a.gen_bool(0.5), b.gen_bool(0.5));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
