//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io registry, so the workspace vendors
//! the subset of proptest's API that `tests/property_based.rs` uses: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive`, boxed strategies,
//! range / tuple / collection / sample strategies, a tiny `[a-z]{m,n}`
//! pattern interpreter for `&str` strategies, and the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!` macros.
//!
//! Differences from the real crate: inputs are generated from a fixed
//! deterministic seed (reproducible CI runs), failures panic immediately and
//! there is **no shrinking** — a failing case prints its inputs via the
//! panic message only.  Swap in the real crate once the environment has
//! registry access.

#![warn(missing_docs)]

use std::ops::Range;
use std::rc::Rc;

use rand::{Rng, SeedableRng};

/// The deterministic RNG driving all strategies.
pub struct TestRng {
    inner: rand::StdRng,
}

impl TestRng {
    /// A fixed-seed RNG (reproducible runs).
    pub fn deterministic() -> Self {
        TestRng {
            inner: rand::StdRng::seed_from_u64(0x5eed_cafe),
        }
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.inner.gen_range(0..n)
        }
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of random values (mirror of `proptest::strategy::Strategy`,
/// without shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: `self` is the leaf, `recurse` builds one level of
    /// branching on top of the strategy for the levels below.  `depth` bounds
    /// the recursion; the size hints are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            let leaf = leaf.clone();
            strat = BoxedStrategy::new(move |rng| {
                // lean towards leaves so generated trees stay small
                if rng.chance(0.4) {
                    leaf.generate(rng)
                } else {
                    branch.generate(rng)
                }
            });
        }
        strat
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(move |rng| self.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wrap a generation function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Strategy returning a fixed value (mirror of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as usize;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as usize;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// `&str` strategies interpret a miniature regex dialect: a literal string,
/// or `[c1-c2...]{m,n}` (one character class with a repetition count), which
/// covers the patterns used by the workspace tests.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let bytes = pattern.as_bytes();
        let Some(class_start) = pattern.find('[') else {
            return pattern.to_string();
        };
        let class_end = pattern.find(']').expect("unterminated character class");
        let mut alphabet: Vec<char> = Vec::new();
        let chars: Vec<char> = pattern[class_start + 1..class_end].chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c).unwrap());
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        assert!(!alphabet.is_empty(), "empty character class in {pattern}");
        let (min, max) = repetition(&pattern[class_end + 1..]);
        let len = min + rng.below(max - min + 1);
        let mut out = String::with_capacity(len + class_start);
        out.push_str(&pattern[..class_start]);
        for _ in 0..len {
            out.push(alphabet[rng.below(alphabet.len())]);
        }
        debug_assert!(bytes[class_start] == b'[');
        out
    }

    fn repetition(rest: &str) -> (usize, usize) {
        if let Some(body) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
            if let Some((lo, hi)) = body.split_once(',') {
                (lo.trim().parse().unwrap(), hi.trim().parse().unwrap())
            } else {
                let n = body.trim().parse().unwrap();
                (n, n)
            }
        } else {
            (1, 1)
        }
    }
}

// ---------------------------------------------------------------------------
// arbitrary + module mirrors (prop::collection, prop::sample)
// ---------------------------------------------------------------------------

/// Types with a canonical strategy (mirror of `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for an arbitrary `bool`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.chance(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = Range<$t>;
            fn arbitrary() -> Range<$t> {
                <$t>::MIN..<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, i8, i16, i32, i64, usize);

/// The canonical strategy for `T` (mirror of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (mirror of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with element strategy `element` and length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(
                self.size.start < self.size.end,
                "cannot sample vec length from empty range"
            );
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (mirror of `proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy drawing uniformly from a fixed list.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniform choice from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// Define property tests: each `#[test] fn name(arg in strategy, ...)` body
/// runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // the body may consume its inputs, so keep clones for the report
                let inputs = ($(::std::clone::Clone::clone(&$arg),)+);
                let result =
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || $body));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {case} of {} failed with inputs {inputs:#?}",
                        stringify!($name)
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// Assert inside a property test (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The common imports (mirror of `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Module mirror so `prop::collection::vec` / `prop::sample::select`
    /// resolve as they do with the real crate.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn patterns_and_collections(
            s in "[a-e]{1,6}",
            v in prop::collection::vec((1i64..4, 0usize..64), 1..12),
            b in any::<bool>(),
            pick in prop::sample::select(vec!["x", "y"]),
        ) {
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.chars().all(|c| ('a'..='e').contains(&c)));
            prop_assert!(!v.is_empty() && v.len() < 12);
            for (a, p) in v {
                prop_assert!((1..4).contains(&a));
                prop_assert!(p < 64);
            }
            let truthy = if b { b } else { !b };
            prop_assert!(truthy);
            prop_assert!(pick == "x" || pick == "y");
        }

        #[test]
        fn recursive_strategies_terminate(tree in arb()) {
            prop_assert!(tree.starts_with('<'));
        }
    }

    fn arb() -> impl Strategy<Value = String> {
        let leaf = prop_oneof![
            "[a-c]{1,3}".prop_map(|t| format!("<l>{t}</l>")),
            Just("<e/>".to_string()),
        ];
        leaf.prop_recursive(4, 64, 5, |inner| {
            prop::collection::vec(inner, 0..5)
                .prop_map(|children| format!("<n>{}</n>", children.join("")))
        })
    }
}
