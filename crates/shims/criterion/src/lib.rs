//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io registry, so the workspace vendors
//! the subset of criterion's API that the `crates/bench` targets use:
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.  Instead of criterion's
//! statistical machinery it runs a fixed warm-up plus a measured loop and
//! prints mean wall-clock time per iteration — enough to compare the
//! configurations of the paper's figures, and enough for
//! `cargo bench --no-run` to gate compilation.  Swap in the real crate once
//! the environment has registry access.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (mirror of
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are sized (only a marker here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs the measured closures (mirror of `criterion::Bencher`).
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Filled in by the routines: (total elapsed, iterations).
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time a routine by calling it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            black_box(routine());
        }
        // measure: run batches until the measurement budget or sample count is met
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let deadline = Instant::now();
        while elapsed < self.measurement && (iters as usize) < self.sample_size.max(10) * 100 {
            let t = Instant::now();
            black_box(routine());
            elapsed += t.elapsed();
            iters += 1;
            if deadline.elapsed() > self.measurement * 2 {
                break;
            }
        }
        self.result = Some((elapsed, iters.max(1)));
    }

    /// Time a routine with a fresh input per call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let budget = Instant::now();
        while elapsed < self.measurement && (iters as usize) < self.sample_size.max(10) * 100 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            elapsed += t.elapsed();
            iters += 1;
            if budget.elapsed() > self.measurement * 4 {
                break;
            }
        }
        self.result = Some((elapsed, iters.max(1)));
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the target sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Set the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Set the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        self.report(&id.id, b.result);
        self
    }

    /// Benchmark a closure that receives `input` under `id`.
    pub fn bench_with_input<I, F, In: ?Sized>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &In),
    {
        let id = id.into();
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b, input);
        self.report(&id.id, b.result);
        self
    }

    fn report(&mut self, id: &str, result: Option<(Duration, u64)>) {
        let line = match result {
            Some((elapsed, iters)) => {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let thr = match self.throughput {
                    Some(Throughput::Bytes(bytes)) if per_iter > 0.0 => format!(
                        "  ({:.1} MiB/s)",
                        bytes as f64 / per_iter / (1024.0 * 1024.0)
                    ),
                    Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                        format!("  ({:.0} elem/s)", n as f64 / per_iter)
                    }
                    _ => String::new(),
                };
                format!(
                    "{}/{:<44} {:>12.3} ms/iter  [{} iters]{}",
                    self.name,
                    id,
                    per_iter * 1e3,
                    iters,
                    thr
                )
            }
            None => format!("{}/{id}: no measurement recorded", self.name),
        };
        self.criterion.lines.push(line);
    }

    /// Flush the group's report.
    pub fn finish(&mut self) {
        for line in self.criterion.lines.drain(..) {
            println!("{line}");
        }
    }
}

/// Entry point for defining benchmarks (mirror of `criterion::Criterion`).
pub struct Criterion {
    lines: Vec<String>,
    default_sample_size: usize,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            lines: Vec::new(),
            default_sample_size: 10,
            default_measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Start a benchmark group (inherits the builder-level defaults).
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            warm_up: Duration::from_millis(300),
            measurement: self.default_measurement,
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmark a closure outside a group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }

    /// Set the default sample count (builder-style, used by
    /// `criterion_group!` `config = ...` forms).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n;
        self
    }

    /// Set the default measurement budget (builder-style).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.default_measurement = d;
        self
    }
}

/// Define a benchmark group function (mirror of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench `main` (mirror of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --list`-style flags are accepted and ignored.
            $( $group(); )+
        }
    };
}
