//! Durability cost and recovery speed (no counterpart figure in the paper —
//! the paper's MonetDB/XQuery prototype defers to MonetDB's own logger):
//!
//! * **sync-policy cost**: a fixed burst of XQUF inserts against an
//!   in-memory store vs. a durable store under `SyncPolicy::Always`,
//!   `EveryN(8)` and `Never` — the price of the WAL append alone vs. the
//!   fsyncs.
//! * **recovery time vs. log length**: `Database::open` replaying a WAL of
//!   K = 16 / 64 / 256 update records.
//! * **cold vs. warm start**: opening from checkpoint page images vs.
//!   shredding the XML text from scratch.
//!
//! Each part prints the WAL/checkpoint counters (`DatabaseStats`) so the
//! recorded baselines are self-describing.  `MXQ_SCALE` overrides the
//! document scale factor.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mxq_bench::{bench_dir, scale_factor, xmark_db, xmark_durable_db, xmark_xml};
use mxq_xquery::{Database, DurabilityOptions, SyncPolicy};

const WRITES: usize = 24;

fn insert_stmt(i: usize) -> String {
    format!(
        "insert nodes <bidder><date>2006-08-{:02}</date><increase>{}.25</increase></bidder> \
         as last into doc(\"auction.xml\")/site/open_auctions/open_auction[1]",
        (i % 28) + 1,
        i % 9
    )
}

fn run_writes(db: &std::sync::Arc<Database>, n: usize) {
    let mut s = db.session();
    for i in 0..n {
        s.execute_update(&insert_stmt(i)).expect("bench insert");
    }
}

fn bench(c: &mut Criterion) {
    let factor = scale_factor(0.001);
    let xml = xmark_xml(factor);
    let mut group = c.benchmark_group("fig_durability");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.throughput(Throughput::Elements(WRITES as u64));

    // -- part A: write burst under each sync policy ------------------------
    let policies: [(&str, Option<SyncPolicy>); 4] = [
        ("memory", None),
        ("wal_always", Some(SyncPolicy::Always)),
        ("wal_every8", Some(SyncPolicy::EveryN(8))),
        ("wal_never", Some(SyncPolicy::Never)),
    ];
    for (name, policy) in policies {
        group.bench_with_input(
            BenchmarkId::new(format!("writes_{name}"), format!("sf{factor}")),
            &policy,
            |b, &policy| {
                b.iter_batched(
                    || match policy {
                        None => xmark_db(&xml),
                        Some(sync) => xmark_durable_db(
                            &xml,
                            &bench_dir(&format!("figdur-{name}")),
                            DurabilityOptions {
                                sync,
                                ..DurabilityOptions::default()
                            },
                        ),
                    },
                    |db| run_writes(&db, WRITES),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        // one representative run for the textual counters
        let db = match policy {
            None => xmark_db(&xml),
            Some(sync) => xmark_durable_db(
                &xml,
                &bench_dir(&format!("figdur-{name}")),
                DurabilityOptions {
                    sync,
                    ..DurabilityOptions::default()
                },
            ),
        };
        let started = Instant::now();
        run_writes(&db, WRITES);
        let secs = started.elapsed().as_secs_f64();
        let stats = db.stats();
        println!(
            "fig_durability/writes_{name}: {WRITES} writes in {:.3}s ({:.0} wr/s), \
             wal {} B, {} fsyncs",
            secs,
            WRITES as f64 / secs,
            stats.wal_bytes_written,
            stats.wal_fsyncs
        );
    }

    // -- part B: recovery time vs. log length ------------------------------
    for k in [16usize, 64, 256] {
        let dir = bench_dir(&format!("figdur-recover-{k}"));
        {
            let db = xmark_durable_db(&xml, &dir, DurabilityOptions::default());
            run_writes(&db, k);
        }
        group.bench_with_input(
            BenchmarkId::new("recover", format!("k{k}")),
            &dir,
            |b, dir| b.iter(|| Database::open(dir).expect("recovery open")),
        );
        let started = Instant::now();
        let db = Database::open(&dir).expect("recovery open");
        let secs = started.elapsed().as_secs_f64();
        println!(
            "fig_durability/recover_k{k}: {} records replayed in {:.3}s",
            db.stats().recovery_replays,
            secs
        );
    }

    // -- part C: cold start from checkpoint images vs. shredding XML ------
    let dir = bench_dir("figdur-cold");
    {
        let db = xmark_durable_db(&xml, &dir, DurabilityOptions::default());
        run_writes(&db, WRITES);
        db.checkpoint().expect("checkpoint");
    }
    group.bench_function(
        BenchmarkId::new("open_checkpoint", format!("sf{factor}")),
        |b| b.iter(|| Database::open(&dir).expect("checkpoint open")),
    );
    group.bench_function(
        BenchmarkId::new("load_from_xml", format!("sf{factor}")),
        |b| b.iter(|| xmark_db(&xml)),
    );
    let cold = {
        let started = Instant::now();
        let db = Database::open(&dir).expect("checkpoint open");
        assert_eq!(db.stats().recovery_replays, 0);
        started.elapsed().as_secs_f64()
    };
    let warm = {
        let started = Instant::now();
        let _ = xmark_db(&xml);
        started.elapsed().as_secs_f64()
    };
    println!(
        "fig_durability/cold_vs_warm: checkpoint open {:.3}s vs xml shred {:.3}s",
        cold, warm
    );

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
