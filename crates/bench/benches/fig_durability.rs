//! Durability cost and recovery speed (no counterpart figure in the paper —
//! the paper's MonetDB/XQuery prototype defers to MonetDB's own logger):
//!
//! * **sync-policy cost**: a fixed burst of XQUF inserts against an
//!   in-memory store vs. a durable store under `SyncPolicy::Always`,
//!   `EveryN(8)` and `Never` — the price of the WAL append alone vs. the
//!   fsyncs.
//! * **recovery time vs. log length**: `Database::open` replaying a WAL of
//!   K = 16 / 64 / 256 update records.
//! * **cold vs. warm start**: opening from checkpoint page images vs.
//!   shredding the XML text from scratch.
//! * **group commit vs. fsync-per-commit**: 4 writer sessions on disjoint
//!   documents under `SyncPolicy::Always` (one fsync per commit) vs.
//!   `SyncPolicy::GroupCommit` (one fsync per gather window, shared by every
//!   commit that landed in it) — the multi-writer payoff of the group log.
//!
//! Each part prints the WAL/checkpoint counters (`DatabaseStats`) so the
//! recorded baselines are self-describing.  `MXQ_SCALE` overrides the
//! document scale factor.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mxq_bench::{bench_dir, scale_factor, writer_doc, xmark_db, xmark_durable_db, xmark_xml};
use mxq_xquery::{Database, DurabilityOptions, SyncPolicy};

const WRITES: usize = 24;

fn insert_stmt(i: usize) -> String {
    format!(
        "insert nodes <bidder><date>2006-08-{:02}</date><increase>{}.25</increase></bidder> \
         as last into doc(\"auction.xml\")/site/open_auctions/open_auction[1]",
        (i % 28) + 1,
        i % 9
    )
}

/// The part-D commit: deliberately the cheapest possible update (a tiny
/// element appended under the document root, no positional predicate), so
/// the burst measures the logging policy rather than update evaluation.
fn gc_stmt(doc: &str, w: usize) -> String {
    format!("insert nodes <b w=\"{w}\"/> as last into doc(\"{doc}\")/site")
}

fn run_writes(db: &std::sync::Arc<Database>, n: usize) {
    let mut s = db.session();
    for i in 0..n {
        s.execute_update(&insert_stmt(i)).expect("bench insert");
    }
}

fn bench(c: &mut Criterion) {
    let factor = scale_factor(0.001);
    let xml = xmark_xml(factor);
    let mut group = c.benchmark_group("fig_durability");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.throughput(Throughput::Elements(WRITES as u64));

    // -- part A: write burst under each sync policy ------------------------
    let policies: [(&str, Option<SyncPolicy>); 4] = [
        ("memory", None),
        ("wal_always", Some(SyncPolicy::Always)),
        ("wal_every8", Some(SyncPolicy::EveryN(8))),
        ("wal_never", Some(SyncPolicy::Never)),
    ];
    for (name, policy) in policies {
        group.bench_with_input(
            BenchmarkId::new(format!("writes_{name}"), format!("sf{factor}")),
            &policy,
            |b, &policy| {
                b.iter_batched(
                    || match policy {
                        None => xmark_db(&xml),
                        Some(sync) => xmark_durable_db(
                            &xml,
                            &bench_dir(&format!("figdur-{name}")),
                            DurabilityOptions {
                                sync,
                                ..DurabilityOptions::default()
                            },
                        ),
                    },
                    |db| run_writes(&db, WRITES),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        // one representative run for the textual counters
        let db = match policy {
            None => xmark_db(&xml),
            Some(sync) => xmark_durable_db(
                &xml,
                &bench_dir(&format!("figdur-{name}")),
                DurabilityOptions {
                    sync,
                    ..DurabilityOptions::default()
                },
            ),
        };
        let started = Instant::now();
        run_writes(&db, WRITES);
        let secs = started.elapsed().as_secs_f64();
        let stats = db.stats();
        println!(
            "fig_durability/writes_{name}: {WRITES} writes in {:.3}s ({:.0} wr/s), \
             wal {} B, {} fsyncs",
            secs,
            WRITES as f64 / secs,
            stats.wal_bytes_written,
            stats.wal_fsyncs
        );
    }

    // -- part B: recovery time vs. log length ------------------------------
    for k in [16usize, 64, 256] {
        let dir = bench_dir(&format!("figdur-recover-{k}"));
        {
            let db = xmark_durable_db(&xml, &dir, DurabilityOptions::default());
            run_writes(&db, k);
        }
        group.bench_with_input(
            BenchmarkId::new("recover", format!("k{k}")),
            &dir,
            |b, dir| b.iter(|| Database::open(dir).expect("recovery open")),
        );
        let started = Instant::now();
        let db = Database::open(&dir).expect("recovery open");
        let secs = started.elapsed().as_secs_f64();
        println!(
            "fig_durability/recover_k{k}: {} records replayed in {:.3}s",
            db.stats().recovery_replays,
            secs
        );
    }

    // -- part C: cold start from checkpoint images vs. shredding XML ------
    let dir = bench_dir("figdur-cold");
    {
        let db = xmark_durable_db(&xml, &dir, DurabilityOptions::default());
        run_writes(&db, WRITES);
        db.checkpoint().expect("checkpoint");
    }
    group.bench_function(
        BenchmarkId::new("open_checkpoint", format!("sf{factor}")),
        |b| b.iter(|| Database::open(&dir).expect("checkpoint open")),
    );
    group.bench_function(
        BenchmarkId::new("load_from_xml", format!("sf{factor}")),
        |b| b.iter(|| xmark_db(&xml)),
    );
    let cold = {
        let started = Instant::now();
        let db = Database::open(&dir).expect("checkpoint open");
        assert_eq!(db.stats().recovery_replays, 0);
        started.elapsed().as_secs_f64()
    };
    let warm = {
        let started = Instant::now();
        let _ = xmark_db(&xml);
        started.elapsed().as_secs_f64()
    };
    println!(
        "fig_durability/cold_vs_warm: checkpoint open {:.3}s vs xml shred {:.3}s",
        cold, warm
    );

    // -- part D: group commit vs fsync-per-commit, 4 disjoint writers -----
    // Printed, not criterion-timed: alternating bursts per policy, best-of-N
    // (fsync latency on shared storage is spiky; the best burst is the
    // comparable figure).  The writers commit to pairwise disjoint
    // documents, so under group commit every fsync should cover several
    // commits; under Always each commit pays its own.  The ratio is the
    // group-commit payoff.  The fixture is capped at a small scale factor
    // on purpose: this part measures the logging policy, and on a single
    // core a large document's commit CPU (serialized across the writers
    // either way) would mask the fsync savings being compared.
    const GC_WRITERS: usize = 4;
    const GC_WRITES_PER_WRITER: usize = 128;
    const GC_ROUNDS: usize = 5;
    let gc_xml = xmark_xml(factor.min(0.00025));
    let run_multi = |tag: &str, sync: SyncPolicy| {
        let db = xmark_durable_db(
            &gc_xml,
            &bench_dir(&format!("figdur-gc-{tag}")),
            DurabilityOptions {
                sync,
                ..DurabilityOptions::default()
            },
        );
        for w in 0..GC_WRITERS {
            db.load_document(&writer_doc(w), &gc_xml)
                .expect("writer copy must load");
        }
        let before = db.stats();
        let started = Instant::now();
        std::thread::scope(|scope| {
            for w in 0..GC_WRITERS {
                let mut s = db.session();
                // one statement text per writer, so after the first commit
                // the plan cache serves the compile and the measured cost is
                // the commit pipeline + logging, not statement compilation
                let stmt = gc_stmt(&writer_doc(w), w);
                scope.spawn(move || {
                    for _ in 0..GC_WRITES_PER_WRITER {
                        s.execute_update(&stmt).expect("multi-writer insert");
                    }
                });
            }
        });
        let secs = started.elapsed().as_secs_f64();
        let stats = db.stats();
        let writes = GC_WRITERS * GC_WRITES_PER_WRITER;
        println!(
            "fig_durability/multi_writer_{tag}: {writes} writes by {GC_WRITERS} writers in \
             {:.3}s ({:.0} wr/s), {} fsyncs, {} group-commit batches covering {} records",
            secs,
            writes as f64 / secs,
            stats.wal_fsyncs - before.wal_fsyncs,
            stats.group_commit_batches - before.group_commit_batches,
            stats.group_commit_records - before.group_commit_records,
        );
        secs
    };
    let mut never_secs = f64::INFINITY;
    let mut always_secs = f64::INFINITY;
    let mut group_secs = f64::INFINITY;
    for _ in 0..GC_ROUNDS {
        // the Never burst is the no-fsync floor: what the commit pipeline
        // costs with the log appended but never synced
        never_secs = never_secs.min(run_multi("never", SyncPolicy::Never));
        always_secs = always_secs.min(run_multi("always", SyncPolicy::Always));
        group_secs = group_secs.min(run_multi(
            "group",
            SyncPolicy::GroupCommit(Duration::from_millis(2)),
        ));
    }
    println!(
        "fig_durability/multi_writer_floor: no-fsync floor {:.3}s, fsync cost: always \
         +{:.3}s, group +{:.3}s",
        never_secs,
        always_secs - never_secs,
        group_secs - never_secs
    );
    println!(
        "fig_durability/multi_writer_ratio: group commit {:.2}x faster than fsync-per-commit \
         (best of {GC_ROUNDS})",
        always_secs / group_secs
    );

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
