//! Table 1 — XMark query evaluation, this engine vs. the naive comparator.
//!
//! The paper's Table 1 compares MonetDB/XQuery against eXist, Galax, X-Hive
//! and BerkeleyDB XML.  Those systems are substituted by the naive
//! DOM-walking interpreter (see DESIGN.md §3); the shape to reproduce is that
//! the relational engine wins clearly on the join queries (Q8–Q12) and the
//! path-heavy queries, while simple lookups are close.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mxq_bench::{run_query, run_query_naive, scale_factor, session_with_xmark, xmark_xml};
use mxq_xquery::ExecConfig;

fn bench(c: &mut Criterion) {
    // keep the naive interpreter affordable: very small instance
    let xml = xmark_xml(scale_factor(0.0005));
    let mut group = c.benchmark_group("table1_xmark");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    // a representative subset: lookup, construction, aggregation, joins, paths
    let queries = [1usize, 2, 5, 6, 8, 11, 14, 15, 19, 20];
    let mut session = session_with_xmark(&xml, ExecConfig::default());
    for q in queries {
        group.bench_function(format!("Q{q}/relational"), |b| {
            b.iter(|| run_query(&mut session, q))
        });
        group.bench_function(format!("Q{q}/naive"), |b| {
            b.iter(|| run_query_naive(&xml, q))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
