//! Section 6, "Shredding and Serialization": document loading and
//! serialization scale linearly with document size because both are purely
//! sequential passes over the pre|size|level table.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mxq_bench::{scale_factors, xmark_xml};
use mxq_xmldb::{serialize_document, shred, ShredOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("shred_serialize");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for factor in scale_factors(&[0.001, 0.002, 0.004]) {
        let xml = xmark_xml(factor);
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::new("shred", factor), &xml, |b, xml| {
            b.iter(|| shred("auction.xml", xml, &ShredOptions::default()).unwrap())
        });
        let doc = shred("auction.xml", &xml, &ShredOptions::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("serialize", factor), &doc, |b, doc| {
            b.iter(|| serialize_document(doc).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
