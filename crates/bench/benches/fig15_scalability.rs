//! Figure 15 — scalability with respect to document size.
//!
//! The 20 XMark queries at three scale factors a decade apart.  The paper's
//! claim: execution time grows linearly with document size for all queries
//! except Q11/Q12 (whose theta-join result itself grows quadratically), and
//! sub-linearly for the index-assisted Q6/Q7/Q15/Q16.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mxq_bench::{run_query, scale_factors, session_with_xmark, xmark_xml};
use mxq_xmark::queries::QUERY_IDS;
use mxq_xquery::ExecConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_scalability");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for factor in scale_factors(&[0.0005, 0.001, 0.002]) {
        let xml = xmark_xml(factor);
        let mut session = session_with_xmark(&xml, ExecConfig::default());
        group.bench_with_input(BenchmarkId::new("all_queries", factor), &factor, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for id in QUERY_IDS {
                    total += run_query(&mut session, id);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
