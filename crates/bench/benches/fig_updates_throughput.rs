//! Mixed query/update throughput over the paged store (the workload the
//! paper's Section 5.2 update scheme exists for, but does not benchmark):
//! a configurable read/write mix of XMark queries and XQuery Update Facility
//! statements runs end-to-end — parser → plan cache → pending update list →
//! paged pages → re-materialization — against one shared database, with one
//! reader session and one writer session.
//!
//! Reported as ops/sec (criterion `Throughput::Elements`) for the
//! read/write mixes 90/10 and 50/50; each run also prints the plan-cache
//! hit rate and per-session op/s.  `MXQ_SCALE` overrides the document scale
//! factor.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mxq_bench::{
    bench_dir, contention_summary, run_mixed_workload, scale_factor, xmark_db, xmark_durable_db,
    xmark_xml,
};
use mxq_xquery::DurabilityOptions;

const OPS: usize = 60;

fn bench(c: &mut Criterion) {
    let factor = scale_factor(0.001);
    let xml = xmark_xml(factor);
    let mut group = c.benchmark_group("fig_updates_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.throughput(Throughput::Elements(OPS as u64));
    for read_pct in [90u8, 50] {
        group.bench_with_input(
            BenchmarkId::new(
                format!("mix_{read_pct}_{}", 100 - read_pct),
                format!("sf{factor}"),
            ),
            &read_pct,
            |b, &read_pct| {
                b.iter_batched(
                    || xmark_db(&xml),
                    |db| run_mixed_workload(&db, 1, read_pct, OPS, 0xbeef),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        // one representative run for the textual counters the baselines record
        let db = xmark_db(&xml);
        let report = run_mixed_workload(&db, 1, read_pct, OPS, 0xbeef);
        println!(
            "fig_updates_throughput/mix_{read_pct}_{}: {}",
            100 - read_pct,
            report.summary()
        );
    }

    // durable round: the same 50/50 mix against a WAL-logged store, so the
    // baselines record the durability overhead and WAL volume next to the
    // in-memory figures
    group.bench_with_input(
        BenchmarkId::new("mix_50_50_durable", format!("sf{factor}")),
        &(),
        |b, ()| {
            b.iter_batched(
                || xmark_durable_db(&xml, &bench_dir("figupd"), DurabilityOptions::default()),
                |db| run_mixed_workload(&db, 1, 50, OPS, 0xbeef),
                criterion::BatchSize::LargeInput,
            )
        },
    );
    let db = xmark_durable_db(&xml, &bench_dir("figupd"), DurabilityOptions::default());
    let before = db.stats();
    let report = run_mixed_workload(&db, 1, 50, OPS, 0xbeef);
    let stats = db.stats();
    println!(
        "fig_updates_throughput/mix_50_50_durable: {} — wal {} B, {} fsyncs, \
         {} checkpoints",
        report.summary(),
        stats.wal_bytes_written,
        stats.wal_fsyncs,
        stats.checkpoints
    );
    println!(
        "fig_updates_throughput/mix_50_50_durable: contention: {}",
        contention_summary(&before, &stats)
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
