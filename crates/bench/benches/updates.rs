//! Section 5.2 — structural updates: page-wise remappable pre-numbers vs
//! naive renumbering.
//!
//! Each iteration inserts a small subtree into the middle of an XMark
//! document.  The naive scheme moves O(N) tuples per insert; the paged scheme
//! touches a constant number of logical pages.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mxq_bench::{scale_factors, xmark_xml};
use mxq_xmldb::update::{fragment_from_xml, NaiveDocument, PagedDocument};
use mxq_xmldb::{shred, ShredOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("updates");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for factor in scale_factors(&[0.001, 0.004]) {
        let xml = xmark_xml(factor);
        let doc = shred("auction.xml", &xml, &ShredOptions::default()).unwrap();
        let frag =
            fragment_from_xml("<bidder><date>2006-06-20</date><increase>6.00</increase></bidder>");
        // insert under the first open_auction element
        let target = doc.elements_named("open_auction")[0];

        group.bench_with_input(BenchmarkId::new("paged_insert", factor), &doc, |b, doc| {
            b.iter_batched(
                || PagedDocument::from_document(doc, 64, 75),
                |mut paged| {
                    for _ in 0..8 {
                        paged.insert_last_child(target, &frag);
                    }
                    paged.stats
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("naive_insert", factor), &doc, |b, doc| {
            b.iter_batched(
                || NaiveDocument::from_document(doc),
                |mut naive| {
                    for _ in 0..8 {
                        naive.insert_last_child(target, &frag);
                    }
                    naive.stats
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
