//! Concurrent sessions over one shared database — the server workload of
//! paper Section 6 (one shredded store, many clients) that the
//! `Database`/`Session` API exists for.
//!
//! Two modes per reader count:
//!
//! * **budget** — the original fixed-op-budget mix (90/10 read/write, the
//!   budget *split* across readers): flat ms/iter across 1→8 readers shows
//!   that reader concurrency adds no contention, but cannot show scaling.
//! * **saturation** — every reader runs flat-out until a shared deadline
//!   and the writer applies updates back-to-back until the same deadline,
//!   so total reads/sec measures true parallel read throughput and the
//!   per-write latency exposes the cost of the writer's critical section
//!   (page publish, not re-materialization).
//! * **multi-writer saturation** — 1/2/4 writer sessions on pairwise
//!   disjoint documents plus 4 readers, all deadline-driven.  With
//!   per-fragment latches the writers never contend (the printed latch-wait
//!   counter must stay 0); aggregate writes/sec is the multi-writer scaling
//!   figure (on a multi-core host — a single core serializes the CPU work
//!   even though the latching admits parallelism).
//!
//! `MXQ_SCALE` overrides the document scale factor.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mxq_bench::{
    contention_summary, run_mixed_workload, run_multi_writer_saturation, run_saturation_workload,
    scale_factor, xmark_db, xmark_multi_writer_db, xmark_xml,
};

const OPS: usize = 80;
const READ_PCT: u8 = 90;
const SATURATION_DEADLINE: Duration = Duration::from_millis(250);

fn bench(c: &mut Criterion) {
    let factor = scale_factor(0.001);
    let xml = xmark_xml(factor);
    let mut group = c.benchmark_group("fig_concurrent_sessions");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.throughput(Throughput::Elements(OPS as u64));
    for sessions in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(format!("readers_{sessions}"), format!("sf{factor}")),
            &sessions,
            |b, &sessions| {
                b.iter_batched(
                    || xmark_db(&xml),
                    |db| run_mixed_workload(&db, sessions, READ_PCT, OPS, 0xcafe),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        // a warm-database run for the counters the baselines record: the
        // second run over one database is served by the plan cache
        let db = xmark_db(&xml);
        let _ = run_mixed_workload(&db, sessions, READ_PCT, OPS, 0xcafe);
        let report = run_mixed_workload(&db, sessions, READ_PCT, OPS, 0xcafe);
        println!(
            "fig_concurrent_sessions/readers_{sessions}: {}",
            report.summary()
        );
    }
    group.finish();

    // saturation mode: deadline-driven, printed (not criterion-timed — the
    // run length is fixed by construction; the interesting numbers are the
    // throughput/latency counters)
    for sessions in [1usize, 4, 8] {
        let db = xmark_db(&xml);
        // warm the plan cache so the measured window is steady-state
        let _ = run_saturation_workload(&db, sessions, Duration::from_millis(100), 0xcafe);
        let before = db.stats();
        let report = run_saturation_workload(&db, sessions, SATURATION_DEADLINE, 0xcafe);
        println!(
            "fig_concurrent_sessions/saturation_readers_{sessions}: {}",
            report.summary()
        );
        println!(
            "fig_concurrent_sessions/saturation_readers_{sessions}: contention: {}",
            contention_summary(&before, &db.stats())
        );
    }

    // multi-writer saturation: 1/2/4 writers on disjoint documents plus 4
    // readers, deadline-driven.  Printed, not criterion-timed; the claim
    // under test is "zero cross-document latch waits" plus aggregate
    // writes/sec.
    for writers in [1usize, 2, 4] {
        let db = xmark_multi_writer_db(&xml, writers);
        let _ = run_multi_writer_saturation(&db, writers, 4, Duration::from_millis(100), 0xbeef);
        let before = db.stats();
        let report = run_multi_writer_saturation(&db, writers, 4, SATURATION_DEADLINE, 0xbeef);
        println!(
            "fig_concurrent_sessions/multi_writer_{writers}: {}",
            report.summary()
        );
        println!(
            "fig_concurrent_sessions/multi_writer_{writers}: contention: {}",
            contention_summary(&before, &db.stats())
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
