//! Concurrent sessions over one shared database — the server workload of
//! paper Section 6 (one shredded store, many clients) that the
//! `Database`/`Session` API exists for.
//!
//! N reader sessions (each on its own thread) execute XMark queries served
//! by the shared plan cache while one writer session applies XQuery Update
//! Facility statements.  Reported as ops/sec for 1, 4 and 8 reader
//! sessions at a 90/10 read/write mix; each configuration also prints the
//! plan-cache hit rate and per-session op/s.  `MXQ_SCALE` overrides the
//! document scale factor.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mxq_bench::{run_mixed_workload, scale_factor, xmark_db, xmark_xml};

const OPS: usize = 80;
const READ_PCT: u8 = 90;

fn bench(c: &mut Criterion) {
    let factor = scale_factor(0.001);
    let xml = xmark_xml(factor);
    let mut group = c.benchmark_group("fig_concurrent_sessions");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.throughput(Throughput::Elements(OPS as u64));
    for sessions in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(format!("readers_{sessions}"), format!("sf{factor}")),
            &sessions,
            |b, &sessions| {
                b.iter_batched(
                    || xmark_db(&xml),
                    |db| run_mixed_workload(&db, sessions, READ_PCT, OPS, 0xcafe),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        // a warm-database run for the counters the baselines record: the
        // second run over one database is served by the plan cache
        let db = xmark_db(&xml);
        let _ = run_mixed_workload(&db, sessions, READ_PCT, OPS, 0xcafe);
        let report = run_mixed_workload(&db, sessions, READ_PCT, OPS, 0xcafe);
        println!(
            "fig_concurrent_sessions/readers_{sessions}: {}",
            report.summary()
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
