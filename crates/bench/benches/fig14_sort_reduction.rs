//! Figure 14 — benefits of sort reduction (order-aware peephole optimization).
//!
//! All 20 XMark queries with and without the order-property machinery:
//! without it every order requirement is re-established with a full sort and
//! row numbering always sorts; with it sorts are pruned and the streaming
//! (hash-based) numbering is used.  The paper reports a factor of ≈2 overall.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mxq_bench::{run_query, scale_factor, session_with_xmark, xmark_xml, SMALL_FACTOR};
use mxq_xmark::queries::QUERY_IDS;
use mxq_xquery::ExecConfig;

fn bench(c: &mut Criterion) {
    let xml = xmark_xml(scale_factor(SMALL_FACTOR));
    let mut group = c.benchmark_group("fig14_sort_reduction");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (name, config) in [
        ("order-preserving", ExecConfig::default()),
        (
            "non-order-preserving",
            ExecConfig {
                order_aware: false,
                ..ExecConfig::default()
            },
        ),
    ] {
        let mut session = session_with_xmark(&xml, config);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut total = 0usize;
                for id in QUERY_IDS {
                    total += run_query(&mut session, id);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
