//! Figure 8 / Section 4.2 — existential join strategies.
//!
//! The theta-join queries Q11/Q12 (general comparison `>`) are evaluated with
//! the min/max aggregate pushdown of Figure 8(b) and with the plain
//! theta-join + duplicate elimination of Figure 8(a).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mxq_bench::{run_query, scale_factor, session_with_xmark, xmark_xml, SMALL_FACTOR};
use mxq_xquery::ExecConfig;

fn bench(c: &mut Criterion) {
    let xml = xmark_xml(scale_factor(SMALL_FACTOR));
    let mut group = c.benchmark_group("existential_join");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (name, config) in [
        ("minmax-pushdown", ExecConfig::default()),
        (
            "theta-join-then-distinct",
            ExecConfig {
                existential_minmax: false,
                ..ExecConfig::default()
            },
        ),
    ] {
        for query in [11usize, 12] {
            let mut session = session_with_xmark(&xml, config);
            group.bench_function(format!("Q{query}/{name}"), |b| {
                b.iter(|| run_query(&mut session, query))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
