//! Figure 12 — benefit of the loop-lifted staircase join.
//!
//! Runs the 20 XMark queries under the five staircase-join configurations of
//! the paper (iterative vs loop-lifted child/descendant steps, plus nametest
//! pushdown).  The paper reports 10–30× improvements for path-heavy queries
//! on the 110 MB document; at laptop scale the ordering of the configurations
//! (and the large win of loop-lifting) is what this bench reproduces.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mxq_bench::{
    fig12_configs, run_query, scale_factor, session_with_xmark, xmark_xml, SMALL_FACTOR,
};
use mxq_xmark::queries::QUERY_IDS;

fn bench(c: &mut Criterion) {
    let xml = xmark_xml(scale_factor(SMALL_FACTOR));
    let mut group = c.benchmark_group("fig12_looplift");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (name, config) in fig12_configs() {
        let mut session = session_with_xmark(&xml, config);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut total = 0usize;
                for id in QUERY_IDS {
                    total += run_query(&mut session, id);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
