//! Figures 1–3 / Section 3 micro-benchmark: staircase join work on a single
//! axis step, iterative vs loop-lifted, for growing numbers of iterations.
//!
//! The loop-lifted variant performs one sequential pass regardless of the
//! number of iterations; the iterative variant rescans the document once per
//! iteration, so its cost grows linearly with the iteration count.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mxq_bench::{scale_factor, xmark_xml};
use mxq_staircase::{looplifted_step, staircase_step, Axis, NodeTest, ScanStats};
use mxq_xmldb::{shred, ShredOptions};

fn bench(c: &mut Criterion) {
    let xml = xmark_xml(scale_factor(0.002));
    let doc = shred("auction.xml", &xml, &ShredOptions::default()).unwrap();
    // context: every open_auction element, spread over a growing number of iterations
    let auctions: Vec<u32> = doc.elements_named("open_auction").to_vec();
    let mut group = c.benchmark_group("staircase_micro");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for &iterations in &[1usize, 8, 64] {
        let ctx: Vec<(i64, u32)> = auctions
            .iter()
            .enumerate()
            .map(|(i, &pre)| ((i % iterations) as i64 + 1, pre))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("loop-lifted descendant", iterations),
            &ctx,
            |b, ctx| {
                b.iter(|| {
                    let mut stats = ScanStats::default();
                    looplifted_step(&doc, ctx, Axis::Descendant, &NodeTest::AnyKind, &mut stats)
                        .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("iterative descendant", iterations),
            &ctx,
            |b, ctx| {
                b.iter(|| {
                    let mut total = 0usize;
                    let mut stats = ScanStats::default();
                    for it in 1..=iterations as i64 {
                        let c: Vec<u32> = ctx
                            .iter()
                            .filter(|&&(i, _)| i == it)
                            .map(|&(_, p)| p)
                            .collect();
                        total += staircase_step(
                            &doc,
                            &c,
                            Axis::Descendant,
                            &NodeTest::AnyKind,
                            &mut stats,
                        )
                        .len();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
