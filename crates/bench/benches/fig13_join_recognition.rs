//! Figure 13 — XQuery join recognition (cross product vs join).
//!
//! The XMark join queries Q8–Q12 are run with and without join recognition.
//! Without it, loop-lifting materialises the Cartesian product of persons and
//! auctions; with it, the comparison is evaluated as a relational join with
//! existential semantics (Section 4).  The paper reports one to two orders of
//! magnitude on the 11 MB document.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mxq_bench::{run_query, scale_factor, session_with_xmark, xmark_xml, SMALL_FACTOR};
use mxq_xquery::ExecConfig;

fn bench(c: &mut Criterion) {
    let xml = xmark_xml(scale_factor(SMALL_FACTOR));
    let mut group = c.benchmark_group("fig13_join_recognition");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (name, config) in [
        ("join", ExecConfig::default()),
        (
            "cross-product",
            ExecConfig {
                join_recognition: false,
                ..ExecConfig::default()
            },
        ),
    ] {
        for query in [8usize, 9, 10, 11, 12] {
            let mut session = session_with_xmark(&xml, config);
            group.bench_function(format!("Q{query}/{name}"), |b| {
                b.iter(|| run_query(&mut session, query))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
