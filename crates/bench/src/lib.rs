//! Shared fixtures for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation (Section 6) has one bench
//! target in `benches/`; this library provides the common set-up: generating
//! an XMark document at a given scale factor, loading it into an engine with
//! a given [`ExecConfig`], and running one query.
//!
//! The scale factors used here are laptop-scale (see DESIGN.md §3): the
//! paper's claims that these benches reproduce are about *relative* shape
//! (speedups, crossovers, scaling exponents), which are visible at these
//! sizes.

use mxq_xmark::gen::{generate_xml, GenParams};
use mxq_xmark::naive::NaiveInterpreter;
use mxq_xmark::queries::query_text;
use mxq_xmldb::{DocStore, UpdateStats};
use mxq_xquery::{ExecConfig, XQueryEngine};
use rand::{Rng, SeedableRng, StdRng};

/// Default scale factor for single-document benches (≈0.1 MB of XML).
pub const SMALL_FACTOR: f64 = 0.001;

/// The `MXQ_SCALE` environment variable, parsed.  An unset or empty
/// variable means "use the bench defaults"; a set-but-invalid value panics
/// so a typo can never silently fall back and corrupt recorded baselines.
fn env_scale() -> Option<f64> {
    let raw = std::env::var("MXQ_SCALE").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<f64>() {
        Ok(f) if f > 0.0 => Some(f),
        _ => panic!("MXQ_SCALE must be a positive number, got `{raw}`"),
    }
}

/// The XMark scale factor to run a bench at: the `MXQ_SCALE` environment
/// variable when set (e.g. `MXQ_SCALE=0.01 cargo bench`), else `default`.
pub fn scale_factor(default: f64) -> f64 {
    env_scale().unwrap_or(default)
}

/// The scale factors a multi-factor bench iterates over: `[MXQ_SCALE]` when
/// the environment variable is set, else the bench's `defaults`.
pub fn scale_factors(defaults: &[f64]) -> Vec<f64> {
    match env_scale() {
        Some(f) => vec![f],
        None => defaults.to_vec(),
    }
}

/// Generate the XMark XML text at a scale factor (deterministic).
pub fn xmark_xml(factor: f64) -> String {
    generate_xml(&GenParams::with_factor(factor))
}

/// Build an engine with the given config and a loaded XMark document.
pub fn engine_with_xmark(xml: &str, config: ExecConfig) -> XQueryEngine {
    let mut engine = XQueryEngine::with_config(config);
    engine
        .load_document("auction.xml", xml)
        .expect("generated XMark document must load");
    engine
}

/// Run one XMark query on an engine, resetting the transient container so
/// repeated runs do not accumulate constructed nodes.
pub fn run_query(engine: &mut XQueryEngine, id: usize) -> usize {
    engine.reset_transient();
    let result = engine
        .execute(query_text(id))
        .unwrap_or_else(|e| panic!("XMark Q{id} failed: {e}"));
    result.len()
}

/// Run one XMark query through the naive DOM-walking interpreter.
pub fn run_query_naive(xml: &str, id: usize) -> usize {
    let mut store = DocStore::new();
    store.load_xml("auction.xml", xml).expect("load");
    let mut naive = NaiveInterpreter::new(&mut store);
    naive
        .run(query_text(id))
        .unwrap_or_else(|e| panic!("naive XMark Q{id} failed: {e}"))
        .len()
}

/// Outcome counters of one mixed query/update workload run.
#[derive(Debug, Clone, Default)]
pub struct MixedWorkloadReport {
    /// Operations executed as queries.
    pub reads: usize,
    /// Operations executed as updates.
    pub writes: usize,
    /// Total result items returned by the read operations.
    pub read_items: usize,
    /// Update primitives applied by the write operations.
    pub primitives: usize,
    /// Storage-level cost counters accumulated over the write operations.
    pub stats: UpdateStats,
}

/// Run a mixed query/update workload against an engine holding an XMark
/// document under `auction.xml`: `ops` operations, of which `read_pct`
/// percent are queries (XMark Q1 plus bidder/current scans) and the rest are
/// XQuery Update Facility statements (bidder inserts/deletes, `current`
/// value replacement, annotation-subtree replacement, renames) against
/// random open auctions.  Deterministic for a given `seed`.
pub fn run_mixed_workload(
    engine: &mut XQueryEngine,
    read_pct: u8,
    ops: usize,
    seed: u64,
) -> MixedWorkloadReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = MixedWorkloadReport::default();
    let auctions: usize = engine
        .execute("count(doc(\"auction.xml\")/site/open_auctions/open_auction)")
        .expect("auction count query")
        .serialize()
        .parse()
        .unwrap_or(0);
    assert!(auctions > 0, "workload needs at least one open auction");
    let queries = [
        query_text(1).to_string(),
        "count(doc(\"auction.xml\")/site/open_auctions/open_auction/bidder)".to_string(),
        "for $a in doc(\"auction.xml\")/site/open_auctions/open_auction \
         where $a/current > 100 return $a/current/text()"
            .to_string(),
    ];
    for op in 0..ops {
        if rng.gen_range(0..100u32) < read_pct as u32 {
            engine.reset_transient();
            let q = &queries[rng.gen_range(0..queries.len())];
            let result = engine.execute(q).expect("workload query");
            report.reads += 1;
            report.read_items += result.len();
        } else {
            let k = rng.gen_range(0..auctions) + 1;
            let auction = format!("doc(\"auction.xml\")/site/open_auctions/open_auction[{k}]");
            let stmt = match rng.gen_range(0..5u32) {
                0 => format!(
                    "insert nodes <bidder><date>2006-07-{:02}</date>\
                     <increase>{}.50</increase></bidder> as last into {auction}",
                    1 + op % 28,
                    1 + op % 9
                ),
                1 => format!("delete nodes {auction}/bidder[1]"),
                2 => format!(
                    "replace value of node {auction}/current with \"{}.37\"",
                    100 + op % 400
                ),
                3 => format!(
                    "replace node {auction}/annotation/happiness \
                     with <happiness>{}</happiness>",
                    op % 10
                ),
                _ => format!("rename node {auction}/type as \"type\""),
            };
            let rep = engine.execute_update(&stmt).expect("workload update");
            report.writes += 1;
            report.primitives += rep.primitives;
            report.stats.accumulate(&rep.stats);
        }
    }
    report
}

/// The five staircase-join configurations of Figure 12, in the paper's order.
pub fn fig12_configs() -> Vec<(&'static str, ExecConfig)> {
    let base = ExecConfig {
        nametest_pushdown: false,
        ..ExecConfig::default()
    };
    vec![
        (
            "iterative child, iterative descendant",
            ExecConfig {
                loop_lifted_child: false,
                loop_lifted_descendant: false,
                ..base
            },
        ),
        (
            "iterative child, loop-lifted descendant",
            ExecConfig {
                loop_lifted_child: false,
                loop_lifted_descendant: true,
                ..base
            },
        ),
        (
            "loop-lifted child, iterative descendant",
            ExecConfig {
                loop_lifted_child: true,
                loop_lifted_descendant: false,
                ..base
            },
        ),
        (
            "loop-lifted child, loop-lifted descendant",
            ExecConfig {
                loop_lifted_child: true,
                loop_lifted_descendant: true,
                ..base
            },
        ),
        (
            "loop-lifted child, loop-lifted descendant, nametest",
            ExecConfig {
                loop_lifted_child: true,
                loop_lifted_descendant: true,
                nametest_pushdown: true,
                ..base
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_work() {
        let xml = xmark_xml(0.0005);
        let mut e = engine_with_xmark(&xml, ExecConfig::default());
        assert!(run_query(&mut e, 1) <= 1);
        assert!(run_query(&mut e, 6) >= 1);
        assert_eq!(fig12_configs().len(), 5);
    }

    #[test]
    fn scale_factor_defaults_without_env() {
        // MXQ_SCALE is not set in the test environment
        if std::env::var("MXQ_SCALE").is_err() {
            assert_eq!(scale_factor(0.002), 0.002);
            assert_eq!(scale_factors(&[0.001, 0.004]), vec![0.001, 0.004]);
        }
    }

    #[test]
    fn mixed_workload_runs_and_mutates() {
        let xml = xmark_xml(0.0005);
        let mut e = engine_with_xmark(&xml, ExecConfig::default());
        let report = run_mixed_workload(&mut e, 50, 30, 42);
        assert_eq!(report.reads + report.writes, 30);
        assert!(report.writes > 0, "a 50/50 mix over 30 ops must write");
        assert!(report.stats.tuples_written > 0);
        // determinism: the same seed produces the same counts on a fresh engine
        let mut e2 = engine_with_xmark(&xml, ExecConfig::default());
        let report2 = run_mixed_workload(&mut e2, 50, 30, 42);
        assert_eq!(report.reads, report2.reads);
        assert_eq!(report.read_items, report2.read_items);
        assert_eq!(report.primitives, report2.primitives);
    }
}
