//! Shared fixtures for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation (Section 6) has one bench
//! target in `benches/`; this library provides the common set-up: generating
//! an XMark document at a given scale factor, loading it into an engine with
//! a given [`ExecConfig`], and running one query.
//!
//! The scale factors used here are laptop-scale (see DESIGN.md §3): the
//! paper's claims that these benches reproduce are about *relative* shape
//! (speedups, crossovers, scaling exponents), which are visible at these
//! sizes.

use mxq_xmark::gen::{generate_xml, GenParams};
use mxq_xmark::naive::NaiveInterpreter;
use mxq_xmark::queries::query_text;
use mxq_xmldb::DocStore;
use mxq_xquery::{ExecConfig, XQueryEngine};

/// Default scale factor for single-document benches (≈0.1 MB of XML).
pub const SMALL_FACTOR: f64 = 0.001;

/// Generate the XMark XML text at a scale factor (deterministic).
pub fn xmark_xml(factor: f64) -> String {
    generate_xml(&GenParams::with_factor(factor))
}

/// Build an engine with the given config and a loaded XMark document.
pub fn engine_with_xmark(xml: &str, config: ExecConfig) -> XQueryEngine {
    let mut engine = XQueryEngine::with_config(config);
    engine
        .load_document("auction.xml", xml)
        .expect("generated XMark document must load");
    engine
}

/// Run one XMark query on an engine, resetting the transient container so
/// repeated runs do not accumulate constructed nodes.
pub fn run_query(engine: &mut XQueryEngine, id: usize) -> usize {
    engine.reset_transient();
    let result = engine
        .execute(query_text(id))
        .unwrap_or_else(|e| panic!("XMark Q{id} failed: {e}"));
    result.len()
}

/// Run one XMark query through the naive DOM-walking interpreter.
pub fn run_query_naive(xml: &str, id: usize) -> usize {
    let mut store = DocStore::new();
    store.load_xml("auction.xml", xml).expect("load");
    let mut naive = NaiveInterpreter::new(&mut store);
    naive
        .run(query_text(id))
        .unwrap_or_else(|e| panic!("naive XMark Q{id} failed: {e}"))
        .len()
}

/// The five staircase-join configurations of Figure 12, in the paper's order.
pub fn fig12_configs() -> Vec<(&'static str, ExecConfig)> {
    let base = ExecConfig {
        nametest_pushdown: false,
        ..ExecConfig::default()
    };
    vec![
        (
            "iterative child, iterative descendant",
            ExecConfig {
                loop_lifted_child: false,
                loop_lifted_descendant: false,
                ..base
            },
        ),
        (
            "iterative child, loop-lifted descendant",
            ExecConfig {
                loop_lifted_child: false,
                loop_lifted_descendant: true,
                ..base
            },
        ),
        (
            "loop-lifted child, iterative descendant",
            ExecConfig {
                loop_lifted_child: true,
                loop_lifted_descendant: false,
                ..base
            },
        ),
        (
            "loop-lifted child, loop-lifted descendant",
            ExecConfig {
                loop_lifted_child: true,
                loop_lifted_descendant: true,
                ..base
            },
        ),
        (
            "loop-lifted child, loop-lifted descendant, nametest",
            ExecConfig {
                loop_lifted_child: true,
                loop_lifted_descendant: true,
                nametest_pushdown: true,
                ..base
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_work() {
        let xml = xmark_xml(0.0005);
        let mut e = engine_with_xmark(&xml, ExecConfig::default());
        assert!(run_query(&mut e, 1) <= 1);
        assert!(run_query(&mut e, 6) >= 1);
        assert_eq!(fig12_configs().len(), 5);
    }
}
