//! Shared fixtures for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation (Section 6) has one bench
//! target in `benches/`; this library provides the common set-up: generating
//! an XMark document at a given scale factor, loading it into a shared
//! [`Database`], opening [`Session`]s with a given [`ExecConfig`], and
//! running queries.
//!
//! The scale factors used here are laptop-scale (see DESIGN.md §3): the
//! paper's claims that these benches reproduce are about *relative* shape
//! (speedups, crossovers, scaling exponents), which are visible at these
//! sizes.

#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Instant;

use mxq_xmark::gen::{generate_xml, GenParams};
use mxq_xmark::naive::NaiveInterpreter;
use mxq_xmark::queries::query_text;
use mxq_xmldb::{DocStore, UpdateStats};
use mxq_xquery::{Database, DatabaseStats, DurabilityOptions, ExecConfig, Session};
use rand::{Rng, SeedableRng, StdRng};

/// Default scale factor for single-document benches (≈0.1 MB of XML).
pub const SMALL_FACTOR: f64 = 0.001;

/// The `MXQ_SCALE` environment variable, parsed.  An unset or empty
/// variable means "use the bench defaults"; a set-but-invalid value panics
/// so a typo can never silently fall back and corrupt recorded baselines.
fn env_scale() -> Option<f64> {
    let raw = std::env::var("MXQ_SCALE").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<f64>() {
        Ok(f) if f > 0.0 => Some(f),
        _ => panic!("MXQ_SCALE must be a positive number, got `{raw}`"),
    }
}

/// The worker-thread count the engine kernels will actually run with: the
/// `MXQ_THREADS` environment variable resolved exactly as the executor
/// resolves it (invalid values panic loudly, unset means single-threaded).
pub fn active_threads() -> usize {
    mxq_engine::par::resolve_threads(0)
}

/// Print the effective bench environment (scale factor and thread count) so
/// every recorded baseline row is self-describing.
fn report_env(factors: &[f64]) {
    eprintln!(
        "[mxq-bench] scale factor(s) {factors:?}, threads {}",
        active_threads()
    );
}

/// The XMark scale factor to run a bench at: the `MXQ_SCALE` environment
/// variable when set (e.g. `MXQ_SCALE=0.01 cargo bench`), else `default`.
pub fn scale_factor(default: f64) -> f64 {
    let f = env_scale().unwrap_or(default);
    report_env(&[f]);
    f
}

/// The scale factors a multi-factor bench iterates over: `[MXQ_SCALE]` when
/// the environment variable is set, else the bench's `defaults`.
pub fn scale_factors(defaults: &[f64]) -> Vec<f64> {
    let factors = match env_scale() {
        Some(f) => vec![f],
        None => defaults.to_vec(),
    };
    report_env(&factors);
    factors
}

/// Generate the XMark XML text at a scale factor (deterministic).
pub fn xmark_xml(factor: f64) -> String {
    generate_xml(&GenParams::with_factor(factor))
}

/// Build a shared database with a loaded XMark document (`auction.xml`).
pub fn xmark_db(xml: &str) -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.load_document("auction.xml", xml)
        .expect("generated XMark document must load");
    db
}

/// The document name writer `w` owns in a multi-writer fixture.
pub fn writer_doc(w: usize) -> String {
    format!("auction-w{w}.xml")
}

/// Build a shared database for the multi-writer rounds: `auction.xml` for
/// the readers plus one private copy per writer ([`writer_doc`]), so the
/// writers' update targets are pairwise disjoint documents.
pub fn xmark_multi_writer_db(xml: &str, writers: usize) -> Arc<Database> {
    let db = xmark_db(xml);
    for w in 0..writers {
        db.load_document(&writer_doc(w), xml)
            .expect("writer copy must load");
    }
    db
}

/// One line of writer-contention counters (latch waits/conflicts, the
/// group-commit batch histogram and the background-checkpoint count) for
/// the bench printouts, computed as the delta between two stats snapshots.
pub fn contention_summary(before: &DatabaseStats, after: &DatabaseStats) -> String {
    let batches = after.group_commit_batches - before.group_commit_batches;
    let records = after.group_commit_records - before.group_commit_records;
    let mean = if batches > 0 {
        records as f64 / batches as f64
    } else {
        0.0
    };
    format!(
        "latch waits {}, latch conflicts {}, group-commit batches {} \
         (min/mean/max {}/{:.1}/{}), background checkpoints {}",
        after.latch_waits - before.latch_waits,
        after.latch_conflicts - before.latch_conflicts,
        batches,
        // min/max are lifetime extrema, not windowed — report them raw
        after.group_commit_batch_min,
        mean,
        after.group_commit_batch_max,
        after.background_checkpoints - before.background_checkpoints,
    )
}

/// A scratch directory for a durable-database bench fixture: recreated
/// empty under the system temp dir, namespaced by pid and tag.
pub fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mxq-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    dir
}

/// Build a durable database in `dir` with a loaded XMark document
/// (`auction.xml`) — the WAL-logged counterpart of [`xmark_db`].
pub fn xmark_durable_db(
    xml: &str,
    dir: &std::path::Path,
    options: DurabilityOptions,
) -> Arc<Database> {
    let db = Arc::new(Database::open_with(dir, options).expect("durable open"));
    db.load_document("auction.xml", xml)
        .expect("generated XMark document must load");
    db
}

/// Build a session (over a fresh single-document database) with the given
/// config and a loaded XMark document — the single-client bench fixture.
pub fn session_with_xmark(xml: &str, config: ExecConfig) -> Session {
    xmark_db(xml).session_with_config(config)
}

/// Run one XMark query on a session.
pub fn run_query(session: &mut Session, id: usize) -> usize {
    let result = session
        .query(query_text(id))
        .unwrap_or_else(|e| panic!("XMark Q{id} failed: {e}"));
    result.len()
}

/// Run one XMark query through the naive DOM-walking interpreter.
pub fn run_query_naive(xml: &str, id: usize) -> usize {
    let mut store = DocStore::new();
    store.load_xml("auction.xml", xml).expect("load");
    let mut naive = NaiveInterpreter::new(&mut store);
    naive
        .run(query_text(id))
        .unwrap_or_else(|e| panic!("naive XMark Q{id} failed: {e}"))
        .len()
}

/// Outcome counters of one mixed query/update workload run.
#[derive(Debug, Clone, Default)]
pub struct MixedWorkloadReport {
    /// Reader sessions driven (each on its own thread).
    pub reader_sessions: usize,
    /// Operations executed as queries.
    pub reads: usize,
    /// Operations executed as updates.
    pub writes: usize,
    /// Total result items returned by the read operations.
    pub read_items: usize,
    /// Update primitives applied by the write operations.
    pub primitives: usize,
    /// Storage-level cost counters accumulated over the write operations.
    pub stats: UpdateStats,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Total operations per second over the run.
    pub ops_per_sec: f64,
    /// Operations per second per session (readers + the writer).
    pub per_session_ops_per_sec: f64,
    /// Plan-cache hits observed during the run (database-level delta).
    pub plan_cache_hits: u64,
    /// Plan-cache misses observed during the run.
    pub plan_cache_misses: u64,
    /// Mean wall-clock latency of one write operation (statement text →
    /// published update) in milliseconds; 0 when the run performed no
    /// writes.
    pub write_latency_ms: f64,
}

impl MixedWorkloadReport {
    /// Plan-cache hit rate in `[0, 1]` during the run; `None` if the run
    /// performed no cache lookups.
    pub fn plan_cache_hit_rate(&self) -> Option<f64> {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        (total > 0).then(|| self.plan_cache_hits as f64 / total as f64)
    }

    /// One-line human-readable summary (used by the throughput benches).
    pub fn summary(&self) -> String {
        format!(
            "{} reader(s)+1 writer: {} reads / {} writes in {:.3}s — {:.0} op/s total, \
             {:.0} op/s per session, {:.3} ms/write, plan-cache hit rate {:.0}%",
            self.reader_sessions,
            self.reads,
            self.writes,
            self.elapsed_secs,
            self.ops_per_sec,
            self.per_session_ops_per_sec,
            self.write_latency_ms,
            self.plan_cache_hit_rate().unwrap_or(0.0) * 100.0
        )
    }
}

/// Outcome of one saturation-mode run ([`run_saturation_workload`]): every
/// session runs flat-out until a shared deadline instead of splitting a
/// fixed op budget, so 1→N reader scaling is measurable as total read
/// throughput.
#[derive(Debug, Clone, Default)]
pub struct SaturationReport {
    /// Reader sessions driven (each on its own thread).
    pub reader_sessions: usize,
    /// Total queries completed by all readers before the deadline.
    pub reads: usize,
    /// Total updates completed by the writer before the deadline.
    pub writes: usize,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Reads per second over all readers — the scaling figure.
    pub reads_per_sec: f64,
    /// Reads per second per reader session.
    pub reads_per_sec_per_reader: f64,
    /// Mean wall-clock latency of one write in milliseconds.
    pub write_latency_ms: f64,
}

impl SaturationReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} reader(s)+1 writer, {:.2}s deadline: {} reads ({:.0}/s total, {:.0}/s per \
             reader), {} writes ({:.3} ms/write)",
            self.reader_sessions,
            self.elapsed_secs,
            self.reads,
            self.reads_per_sec,
            self.reads_per_sec_per_reader,
            self.writes,
            self.write_latency_ms
        )
    }
}

/// Saturation-mode variant of [`run_mixed_workload`]: `readers` reader
/// sessions each execute workload queries in a closed loop **until the
/// deadline** (no shared op budget — adding readers adds offered load), and
/// one writer session applies XQUF statements back-to-back until the same
/// deadline, measuring per-write latency.  This is the configuration that
/// makes 1→N reader scaling and writer-latency regressions measurable.
pub fn run_saturation_workload(
    db: &Arc<Database>,
    readers: usize,
    deadline: std::time::Duration,
    seed: u64,
) -> SaturationReport {
    assert!(readers >= 1, "the workload needs at least one reader");
    let auctions: usize = db
        .execute("count(doc(\"auction.xml\")/site/open_auctions/open_auction)")
        .expect("auction count query")
        .into_query()
        .expect("count is a query")
        .serialize()
        .parse()
        .unwrap_or(0);
    assert!(auctions > 0, "workload needs at least one open auction");

    let started = Instant::now();
    let stop_at = started + deadline;
    let mut report = std::thread::scope(|scope| {
        let queries = Arc::new(workload_queries());
        let mut handles = Vec::new();
        for r in 0..readers {
            let mut session = db.session();
            let queries = queries.clone();
            let seed = seed ^ (r as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut reads = 0usize;
                while Instant::now() < stop_at {
                    let q = &queries[rng.gen_range(0..queries.len())];
                    session
                        .execute(q)
                        .expect("workload query")
                        .into_query()
                        .expect("read ops are queries");
                    reads += 1;
                }
                reads
            }));
        }

        // the writer runs until the same deadline from this thread
        let mut writer = db.session();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut writes = 0usize;
        let mut write_secs = 0.0f64;
        let mut op = 0usize;
        while Instant::now() < stop_at {
            let auction_idx = rng.gen_range(0..auctions) + 1;
            let kind = rng.gen_range(0..5u32);
            let stmt = workload_update(op, auction_idx, kind);
            let write_started = Instant::now();
            writer
                .execute(&stmt)
                .expect("workload update")
                .into_update()
                .expect("write ops are updates");
            write_secs += write_started.elapsed().as_secs_f64();
            writes += 1;
            op += 1;
        }

        let mut report = SaturationReport {
            reader_sessions: readers,
            writes,
            write_latency_ms: if writes > 0 {
                write_secs * 1000.0 / writes as f64
            } else {
                0.0
            },
            ..SaturationReport::default()
        };
        for handle in handles {
            report.reads += handle.join().expect("reader session thread");
        }
        report
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    report.elapsed_secs = elapsed;
    report.reads_per_sec = report.reads as f64 / elapsed;
    report.reads_per_sec_per_reader = report.reads_per_sec / readers as f64;
    report
}

/// The read queries of the mixed workload: XMark Q1 plus bidder/current
/// scans.
fn workload_queries() -> Vec<String> {
    vec![
        query_text(1).to_string(),
        "count(doc(\"auction.xml\")/site/open_auctions/open_auction/bidder)".to_string(),
        "for $a in doc(\"auction.xml\")/site/open_auctions/open_auction \
         where $a/current > 100 return $a/current/text()"
            .to_string(),
    ]
}

/// The update statement for write op number `op` against a random auction.
fn workload_update(op: usize, auction_idx: usize, kind: u32) -> String {
    workload_update_on("auction.xml", op, auction_idx, kind)
}

/// [`workload_update`] against an arbitrary document — the multi-writer
/// rounds point each writer at its own copy ([`writer_doc`]) so the update
/// targets are disjoint.
fn workload_update_on(doc: &str, op: usize, auction_idx: usize, kind: u32) -> String {
    let auction = format!("doc(\"{doc}\")/site/open_auctions/open_auction[{auction_idx}]");
    match kind {
        0 => format!(
            "insert nodes <bidder><date>2006-07-{:02}</date>\
             <increase>{}.50</increase></bidder> as last into {auction}",
            1 + op % 28,
            1 + op % 9
        ),
        1 => format!("delete nodes {auction}/bidder[1]"),
        2 => format!(
            "replace value of node {auction}/current with \"{}.37\"",
            100 + op % 400
        ),
        3 => format!(
            "replace node {auction}/annotation/happiness \
             with <happiness>{}</happiness>",
            op % 10
        ),
        _ => format!("rename node {auction}/type as \"type\""),
    }
}

/// Outcome of one multi-writer saturation run
/// ([`run_multi_writer_saturation`]): `writers` writer sessions each
/// updating their own document ([`writer_doc`]) plus `readers` reader
/// sessions, all flat-out until a shared deadline.
#[derive(Debug, Clone, Default)]
pub struct MultiWriterReport {
    /// Writer sessions driven (each on its own thread, own document).
    pub writer_sessions: usize,
    /// Reader sessions driven (each on its own thread).
    pub reader_sessions: usize,
    /// Total updates completed by all writers before the deadline.
    pub writes: usize,
    /// Total queries completed by all readers before the deadline.
    pub reads: usize,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Writes per second over all writers — the multi-writer scaling figure.
    pub writes_per_sec: f64,
    /// Mean wall-clock latency of one write in milliseconds.
    pub write_latency_ms: f64,
    /// Latch waits incurred during the run (should be 0: the writers touch
    /// disjoint documents).
    pub latch_waits: u64,
    /// Latch conflicts (stale-snapshot re-evaluations) during the run.
    pub latch_conflicts: u64,
}

impl MultiWriterReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} writer(s)+{} reader(s), {:.2}s deadline: {} writes ({:.0}/s, {:.3} ms/write), \
             {} reads, {} latch waits, {} latch conflicts",
            self.writer_sessions,
            self.reader_sessions,
            self.elapsed_secs,
            self.writes,
            self.writes_per_sec,
            self.write_latency_ms,
            self.reads,
            self.latch_waits,
            self.latch_conflicts
        )
    }
}

/// Multi-writer variant of [`run_saturation_workload`]: `writers` writer
/// sessions each apply XQUF statements back-to-back **to their own
/// document** ([`writer_doc`], loaded by [`xmark_multi_writer_db`]) until
/// the deadline, while `readers` reader sessions loop the workload queries
/// against `auction.xml`.  Because the writers' documents are pairwise
/// disjoint, their commits should proceed without a single fragment-latch
/// wait — the report carries the latch counters so the bench can assert
/// that claim in print.
pub fn run_multi_writer_saturation(
    db: &Arc<Database>,
    writers: usize,
    readers: usize,
    deadline: std::time::Duration,
    seed: u64,
) -> MultiWriterReport {
    assert!(writers >= 1, "the workload needs at least one writer");
    let auctions: usize = db
        .execute("count(doc(\"auction.xml\")/site/open_auctions/open_auction)")
        .expect("auction count query")
        .into_query()
        .expect("count is a query")
        .serialize()
        .parse()
        .unwrap_or(0);
    assert!(auctions > 0, "workload needs at least one open auction");

    let stats_before = db.stats();
    let started = Instant::now();
    let stop_at = started + deadline;
    let mut report = std::thread::scope(|scope| {
        let queries = Arc::new(workload_queries());
        let mut reader_handles = Vec::new();
        for r in 0..readers {
            let mut session = db.session();
            let queries = queries.clone();
            let seed = seed ^ (r as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            reader_handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut reads = 0usize;
                while Instant::now() < stop_at {
                    let q = &queries[rng.gen_range(0..queries.len())];
                    session
                        .execute(q)
                        .expect("workload query")
                        .into_query()
                        .expect("read ops are queries");
                    reads += 1;
                }
                reads
            }));
        }

        let mut writer_handles = Vec::new();
        for w in 0..writers {
            let mut session = db.session();
            let doc = writer_doc(w);
            let seed = seed ^ (w as u64 + 101).wrapping_mul(0x2545_f491_4f6c_dd1d);
            writer_handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut writes = 0usize;
                let mut write_secs = 0.0f64;
                let mut op = 0usize;
                while Instant::now() < stop_at {
                    let auction_idx = rng.gen_range(0..auctions) + 1;
                    let kind = rng.gen_range(0..5u32);
                    let stmt = workload_update_on(&doc, op, auction_idx, kind);
                    let write_started = Instant::now();
                    session
                        .execute(&stmt)
                        .expect("workload update")
                        .into_update()
                        .expect("write ops are updates");
                    write_secs += write_started.elapsed().as_secs_f64();
                    writes += 1;
                    op += 1;
                }
                (writes, write_secs)
            }));
        }

        let mut report = MultiWriterReport {
            writer_sessions: writers,
            reader_sessions: readers,
            ..MultiWriterReport::default()
        };
        let mut write_secs = 0.0f64;
        for handle in writer_handles {
            let (writes, secs) = handle.join().expect("writer session thread");
            report.writes += writes;
            write_secs += secs;
        }
        if report.writes > 0 {
            report.write_latency_ms = write_secs * 1000.0 / report.writes as f64;
        }
        for handle in reader_handles {
            report.reads += handle.join().expect("reader session thread");
        }
        report
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    report.elapsed_secs = elapsed;
    report.writes_per_sec = report.writes as f64 / elapsed;
    let stats_after = db.stats();
    report.latch_waits = stats_after.latch_waits - stats_before.latch_waits;
    report.latch_conflicts = stats_after.latch_conflicts - stats_before.latch_conflicts;
    report
}

/// Run a mixed query/update workload against a shared database holding an
/// XMark document under `auction.xml`: `readers` reader sessions (each on
/// its own thread) execute queries (XMark Q1 plus bidder/current scans)
/// while one writer session applies XQuery Update Facility statements
/// (bidder inserts/deletes, `current` value replacement, annotation-subtree
/// replacement, renames) against random open auctions.
///
/// Of the `ops` total operations, `read_pct` percent are reads, split
/// evenly over the reader sessions; the rest are writes, all issued by the
/// writer.  The op mix is deterministic for a given `seed`; the
/// interleaving (and therefore the per-read item counts) is not, since the
/// sessions genuinely run concurrently.
pub fn run_mixed_workload(
    db: &Arc<Database>,
    readers: usize,
    read_pct: u8,
    ops: usize,
    seed: u64,
) -> MixedWorkloadReport {
    assert!(readers >= 1, "the workload needs at least one reader");
    let auctions: usize = db
        .execute("count(doc(\"auction.xml\")/site/open_auctions/open_auction)")
        .expect("auction count query")
        .into_query()
        .expect("count is a query")
        .serialize()
        .parse()
        .unwrap_or(0);
    assert!(auctions > 0, "workload needs at least one open auction");

    let total_reads = ops * read_pct as usize / 100;
    let total_writes = ops - total_reads;
    let stats_before = db.stats();
    let started = Instant::now();

    let mut report = std::thread::scope(|scope| {
        let queries = Arc::new(workload_queries());
        let mut handles = Vec::new();
        for r in 0..readers {
            let reads = total_reads / readers + usize::from(r < total_reads % readers);
            let mut session = db.session();
            let queries = queries.clone();
            let seed = seed ^ (r as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut items = 0usize;
                for _ in 0..reads {
                    let q = &queries[rng.gen_range(0..queries.len())];
                    let result = session
                        .execute(q)
                        .expect("workload query")
                        .into_query()
                        .expect("read ops are queries");
                    items += result.len();
                }
                (reads, items)
            }));
        }

        // the writer drives its share from this thread
        let mut writer = db.session();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut report = MixedWorkloadReport {
            reader_sessions: readers,
            ..MixedWorkloadReport::default()
        };
        let mut write_secs = 0.0f64;
        for op in 0..total_writes {
            let auction_idx = rng.gen_range(0..auctions) + 1;
            let kind = rng.gen_range(0..5u32);
            let stmt = workload_update(op, auction_idx, kind);
            let write_started = Instant::now();
            let rep = writer
                .execute(&stmt)
                .expect("workload update")
                .into_update()
                .expect("write ops are updates");
            write_secs += write_started.elapsed().as_secs_f64();
            report.writes += 1;
            report.primitives += rep.primitives;
            report.stats.accumulate(&rep.stats);
        }
        if report.writes > 0 {
            report.write_latency_ms = write_secs * 1000.0 / report.writes as f64;
        }
        for handle in handles {
            let (reads, items) = handle.join().expect("reader session thread");
            report.reads += reads;
            report.read_items += items;
        }
        report
    });

    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let stats_after = db.stats();
    report.elapsed_secs = elapsed;
    report.ops_per_sec = ops as f64 / elapsed;
    report.per_session_ops_per_sec = ops as f64 / elapsed / (readers + 1) as f64;
    report.plan_cache_hits = stats_after.plan_cache_hits - stats_before.plan_cache_hits;
    report.plan_cache_misses = stats_after.plan_cache_misses - stats_before.plan_cache_misses;
    report
}

/// The five staircase-join configurations of Figure 12, in the paper's order.
pub fn fig12_configs() -> Vec<(&'static str, ExecConfig)> {
    let base = ExecConfig {
        nametest_pushdown: false,
        ..ExecConfig::default()
    };
    vec![
        (
            "iterative child, iterative descendant",
            ExecConfig {
                loop_lifted_child: false,
                loop_lifted_descendant: false,
                ..base
            },
        ),
        (
            "iterative child, loop-lifted descendant",
            ExecConfig {
                loop_lifted_child: false,
                loop_lifted_descendant: true,
                ..base
            },
        ),
        (
            "loop-lifted child, iterative descendant",
            ExecConfig {
                loop_lifted_child: true,
                loop_lifted_descendant: false,
                ..base
            },
        ),
        (
            "loop-lifted child, loop-lifted descendant",
            ExecConfig {
                loop_lifted_child: true,
                loop_lifted_descendant: true,
                ..base
            },
        ),
        (
            "loop-lifted child, loop-lifted descendant, nametest",
            ExecConfig {
                loop_lifted_child: true,
                loop_lifted_descendant: true,
                nametest_pushdown: true,
                ..base
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_work() {
        let xml = xmark_xml(0.0005);
        let mut s = session_with_xmark(&xml, ExecConfig::default());
        assert!(run_query(&mut s, 1) <= 1);
        assert!(run_query(&mut s, 6) >= 1);
        assert_eq!(fig12_configs().len(), 5);
    }

    #[test]
    fn scale_factor_defaults_without_env() {
        // MXQ_SCALE is not set in the test environment
        if std::env::var("MXQ_SCALE").is_err() {
            assert_eq!(scale_factor(0.002), 0.002);
            assert_eq!(scale_factors(&[0.001, 0.004]), vec![0.001, 0.004]);
        }
    }

    #[test]
    fn saturation_workload_runs_until_deadline() {
        let xml = xmark_xml(0.0005);
        let db = xmark_db(&xml);
        let report = run_saturation_workload(&db, 2, std::time::Duration::from_millis(120), 7);
        assert_eq!(report.reader_sessions, 2);
        assert!(report.reads > 0, "readers must complete work");
        assert!(report.writes > 0, "the writer must complete work");
        assert!(report.elapsed_secs >= 0.1);
        assert!(report.reads_per_sec > 0.0);
        assert!(report.write_latency_ms > 0.0);
    }

    #[test]
    fn multi_writer_saturation_runs_without_latch_waits() {
        let xml = xmark_xml(0.0005);
        let db = xmark_multi_writer_db(&xml, 2);
        let before = db.stats();
        let report =
            run_multi_writer_saturation(&db, 2, 1, std::time::Duration::from_millis(120), 9);
        assert_eq!(report.writer_sessions, 2);
        assert!(report.writes > 0, "writers must complete work");
        assert!(report.reads > 0, "the reader must complete work");
        assert_eq!(report.latch_waits, 0, "disjoint docs must not contend");
        assert_eq!(report.latch_conflicts, 0);
        let line = contention_summary(&before, &db.stats());
        assert!(line.contains("latch waits 0"), "{line}");
    }

    #[test]
    fn mixed_workload_runs_and_mutates() {
        let xml = xmark_xml(0.0005);
        let db = xmark_db(&xml);
        let report = run_mixed_workload(&db, 2, 50, 30, 42);
        assert_eq!(report.reads + report.writes, 30);
        assert_eq!(report.reader_sessions, 2);
        assert!(report.writes > 0, "a 50/50 mix over 30 ops must write");
        assert!(report.stats.tuples_written > 0);
        assert!(report.ops_per_sec > 0.0);
        // the op mix is deterministic for a given seed on a fresh database
        let db2 = xmark_db(&xml);
        let report2 = run_mixed_workload(&db2, 2, 50, 30, 42);
        assert_eq!(report.reads, report2.reads);
        assert_eq!(report.writes, report2.writes);
        assert_eq!(report.primitives, report2.primitives);
        // the second run over the same database is served by the plan cache
        let report3 = run_mixed_workload(&db, 2, 50, 30, 42);
        assert!(report3.plan_cache_hit_rate().unwrap_or(0.0) > 0.3);
    }
}
