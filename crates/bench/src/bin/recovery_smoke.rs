//! Crash-recovery smoke driver for CI.
//!
//! Two subcommands over one durable database directory:
//!
//! * `recovery_smoke run <dir> [writers]` — open the directory, load an
//!   XMark document (`MXQ_SCALE`, default 0.003), take a checkpoint, then
//!   apply updates in a tight loop until killed.  With `writers` = N > 1,
//!   N concurrent writer threads run: thread 0 on `auction.xml`, thread w
//!   on its own copy `auction-w<w>.xml`, so the kill lands mid-flight in a
//!   multi-writer commit pipeline (latches, commit ordering, and — under
//!   `MXQ_SYNC=group=W` — group-committed WAL batches).  CI SIGKILLs this
//!   process mid-run to simulate a crash at an arbitrary point.
//! * `recovery_smoke verify <dir>` — reopen the directory (recovering the
//!   checkpoint + WAL tail, discarding any torn record the kill produced)
//!   and verify the store end-to-end: every recovered document (the base
//!   one plus any writer copies found) serializes, the serialization
//!   reshreds to a byte-identical image with valid pre|size|level
//!   invariants, the incremental column image agrees with a from-scratch
//!   rebuild, and a real XMark query runs.  Prints `RECOVERY OK` on
//!   success; any disagreement panics.

use std::sync::Arc;

use mxq_xmark::gen::{generate_xml, GenParams};
use mxq_xmldb::{serialize_document, shred, DocumentColumns, NodeRead, ShredOptions};
use mxq_xquery::{Database, DurabilityOptions};

fn scale() -> f64 {
    match std::env::var("MXQ_SCALE") {
        Ok(raw) if !raw.trim().is_empty() => raw
            .trim()
            .parse()
            .expect("MXQ_SCALE must be a positive number"),
        _ => 0.003,
    }
}

/// Document updated by writer thread `w`: thread 0 keeps the historical
/// single-writer behavior on `auction.xml`, the rest get their own copies
/// so the writers commit to pairwise disjoint documents.
fn writer_doc(w: usize) -> String {
    if w == 0 {
        "auction.xml".to_string()
    } else {
        format!("auction-w{w}.xml")
    }
}

fn update_stmt(doc: &str, i: usize) -> String {
    match i % 3 {
        0 => format!(
            "insert nodes <bidder><date>2006-08-{:02}</date>\
             <increase>{}.50</increase></bidder> as last into \
             doc(\"{doc}\")/site/open_auctions/open_auction[{}]",
            (i % 28) + 1,
            i % 9,
            (i % 5) + 1
        ),
        1 => format!(
            "replace value of node doc(\"{doc}\")/site/open_auctions/\
             open_auction[{}]/current with \"{}.00\"",
            (i % 5) + 1,
            i % 100
        ),
        _ => format!(
            "insert nodes <watch open_auction=\"open_auction{}\"/> as first into \
             doc(\"{doc}\")/site/people/person[{}]/watches",
            i % 5,
            (i % 3) + 1
        ),
    }
}

fn update_loop(db: &Arc<Database>, w: usize) -> ! {
    let doc = writer_doc(w);
    let mut s = db.session();
    let mut i: usize = 0;
    loop {
        // a statement may legitimately select nothing at tiny scales — only
        // I/O or store failures should abort the driver
        match s.execute_update(&update_stmt(&doc, i)) {
            Ok(_) => {}
            Err(mxq_xquery::Error::Durability(e)) => panic!("durability failure mid-run: {e}"),
            Err(_) => {}
        }
        i += 1;
        if i.is_multiple_of(64) {
            eprintln!("[recovery_smoke] writer {w}: {i} updates applied");
        }
    }
}

fn run(dir: &str, writers: usize) -> ! {
    assert!(writers >= 1, "writer count must be at least 1");
    // honor MXQ_SYNC / MXQ_CHECKPOINT_MS so CI can point the kill at a
    // specific logging configuration (e.g. group commit)
    let db = Arc::new(
        Database::open_with(dir, DurabilityOptions::from_env()).expect("open durable database"),
    );
    let xml = generate_xml(&GenParams::with_factor(scale()));
    for w in 0..writers {
        db.load_document(&writer_doc(w), &xml).expect("load XMark");
    }
    db.checkpoint().expect("initial checkpoint");
    eprintln!(
        "[recovery_smoke] loaded + checkpointed {writers} document(s), \
         entering update loop ({writers} writer(s))"
    );
    for w in 1..writers {
        let db = Arc::clone(&db);
        std::thread::spawn(move || update_loop(&db, w));
    }
    update_loop(&db, 0)
}

/// Full per-document agreement check: serialize, reshred, compare images
/// and the incrementally maintained columns against a from-scratch rebuild.
fn verify_doc(db: &Database, name: &str) {
    let text = {
        let store = db.store();
        let frag = store
            .lookup(name)
            .unwrap_or_else(|| panic!("document {name} survives the crash"));
        serialize_document(&store.container(frag))
    };
    let opts = ShredOptions {
        document_node: true,
        ..ShredOptions::default()
    };
    let reshred = shred("check.xml", &text, &opts).expect("recovered store serializes valid XML");
    reshred
        .check_invariants()
        .expect("pre|size|level invariants hold after recovery");
    assert_eq!(
        serialize_document(&reshred),
        text,
        "serialization agreement for {name}: reshred of the recovered store is a fixpoint"
    );
    {
        let store = db.store();
        let frag = store.lookup(name).unwrap();
        assert_eq!(
            store.container(frag).len(),
            reshred.len(),
            "node count agreement for {name} after recovery"
        );
    }
    db.document_columns(name)
        .unwrap()
        .same_content(&DocumentColumns::new(&reshred))
        .expect("recovered column image agrees with a from-scratch rebuild");
}

fn verify(dir: &str) {
    let db = Database::open(dir).expect("recovery must succeed after SIGKILL");
    let stats = db.stats();
    eprintln!(
        "[recovery_smoke] reopened: generation {}, {} WAL records replayed",
        db.generation(),
        stats.recovery_replays
    );

    // the base document must exist; writer copies are verified if the run
    // that was killed had loaded them (their names are deterministic)
    verify_doc(&db, "auction.xml");
    let mut docs = 1usize;
    for w in 1.. {
        let name = writer_doc(w);
        if db.store().lookup(&name).is_none() {
            break;
        }
        verify_doc(&db, &name);
        docs += 1;
    }
    eprintln!("[recovery_smoke] {docs} document(s) verified");

    let db = Arc::new(db);
    let mut s = db.session();
    let n = s
        .query("count(doc(\"auction.xml\")/site/open_auctions/open_auction/bidder)")
        .expect("recovered store answers queries")
        .serialize()
        .to_string();
    eprintln!("[recovery_smoke] {n} bidders after recovery");
    println!("RECOVERY OK");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("run") if args.len() == 3 => run(&args[2], 1),
        Some("run") if args.len() == 4 => run(
            &args[2],
            args[3].parse().expect("writer count must be a number"),
        ),
        Some("verify") if args.len() == 3 => verify(&args[2]),
        _ => {
            eprintln!("usage: recovery_smoke <run|verify> <dir> [writers]");
            std::process::exit(2);
        }
    }
}
