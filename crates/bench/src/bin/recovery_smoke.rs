//! Crash-recovery smoke driver for CI.
//!
//! Two subcommands over one durable database directory:
//!
//! * `recovery_smoke run <dir>` — open the directory, load an XMark
//!   document (`MXQ_SCALE`, default 0.003), take a checkpoint, then apply
//!   updates in a tight loop until killed.  CI SIGKILLs this process
//!   mid-run to simulate a crash at an arbitrary point.
//! * `recovery_smoke verify <dir>` — reopen the directory (recovering the
//!   checkpoint + WAL tail, discarding any torn record the kill produced)
//!   and verify the store end-to-end: the document serializes, the
//!   serialization reshreds to a byte-identical image with valid
//!   pre|size|level invariants, the incremental column image agrees with a
//!   from-scratch rebuild, and a real XMark query runs.  Prints
//!   `RECOVERY OK` on success; any disagreement panics.

use std::sync::Arc;

use mxq_xmark::gen::{generate_xml, GenParams};
use mxq_xmldb::{serialize_document, shred, DocumentColumns, NodeRead, ShredOptions};
use mxq_xquery::Database;

fn scale() -> f64 {
    match std::env::var("MXQ_SCALE") {
        Ok(raw) if !raw.trim().is_empty() => raw
            .trim()
            .parse()
            .expect("MXQ_SCALE must be a positive number"),
        _ => 0.003,
    }
}

fn run(dir: &str) {
    let db = Arc::new(Database::open(dir).expect("open durable database"));
    let xml = generate_xml(&GenParams::with_factor(scale()));
    db.load_document("auction.xml", &xml).expect("load XMark");
    db.checkpoint().expect("initial checkpoint");
    eprintln!("[recovery_smoke] loaded + checkpointed, entering update loop");
    let mut s = db.session();
    let mut i: usize = 0;
    loop {
        let stmt = match i % 3 {
            0 => format!(
                "insert nodes <bidder><date>2006-08-{:02}</date>\
                 <increase>{}.50</increase></bidder> as last into \
                 doc(\"auction.xml\")/site/open_auctions/open_auction[{}]",
                (i % 28) + 1,
                i % 9,
                (i % 5) + 1
            ),
            1 => format!(
                "replace value of node doc(\"auction.xml\")/site/open_auctions/\
                 open_auction[{}]/current with \"{}.00\"",
                (i % 5) + 1,
                i % 100
            ),
            _ => format!(
                "insert nodes <watch open_auction=\"open_auction{}\"/> as first into \
                 doc(\"auction.xml\")/site/people/person[{}]/watches",
                i % 5,
                (i % 3) + 1
            ),
        };
        // a statement may legitimately select nothing at tiny scales — only
        // I/O or store failures should abort the driver
        match s.execute_update(&stmt) {
            Ok(_) => {}
            Err(mxq_xquery::Error::Durability(e)) => panic!("durability failure mid-run: {e}"),
            Err(_) => {}
        }
        i += 1;
        if i.is_multiple_of(64) {
            eprintln!("[recovery_smoke] {i} updates applied");
        }
    }
}

fn verify(dir: &str) {
    let db = Database::open(dir).expect("recovery must succeed after SIGKILL");
    let stats = db.stats();
    eprintln!(
        "[recovery_smoke] reopened: generation {}, {} WAL records replayed",
        db.generation(),
        stats.recovery_replays
    );

    let text = {
        let store = db.store();
        let frag = store
            .lookup("auction.xml")
            .expect("the checkpointed document survives the crash");
        serialize_document(&store.container(frag))
    };
    let opts = ShredOptions {
        document_node: true,
        ..ShredOptions::default()
    };
    let reshred = shred("check.xml", &text, &opts).expect("recovered store serializes valid XML");
    reshred
        .check_invariants()
        .expect("pre|size|level invariants hold after recovery");
    assert_eq!(
        serialize_document(&reshred),
        text,
        "serialization agreement: reshred of the recovered store is a fixpoint"
    );
    {
        let store = db.store();
        let frag = store.lookup("auction.xml").unwrap();
        assert_eq!(
            store.container(frag).len(),
            reshred.len(),
            "node count agreement after recovery"
        );
    }
    db.document_columns("auction.xml")
        .unwrap()
        .same_content(&DocumentColumns::new(&reshred))
        .expect("recovered column image agrees with a from-scratch rebuild");

    let db = Arc::new(db);
    let mut s = db.session();
    let n = s
        .query("count(doc(\"auction.xml\")/site/open_auctions/open_auction/bidder)")
        .expect("recovered store answers queries")
        .serialize()
        .to_string();
    eprintln!("[recovery_smoke] {n} bidders after recovery");
    println!("RECOVERY OK");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("run") if args.len() == 3 => run(&args[2]),
        Some("verify") if args.len() == 3 => verify(&args[2]),
        _ => {
            eprintln!("usage: recovery_smoke <run|verify> <dir>");
            std::process::exit(2);
        }
    }
}
