//! The server-style public API: a shared [`Database`], cheap per-client
//! [`Session`] handles and compile-once/execute-many [`Prepared`] statements.
//!
//! MonetDB/XQuery is a *server*: one shredded store serves many concurrent
//! clients, and loop-lifted plans are compiled once and reused (paper
//! Sections 2 and 6).  This module reproduces that shape:
//!
//! * [`Database`] owns the documents behind a `RwLock` (atomic publishes,
//!   many concurrent readers), a hash-sharded LRU **plan cache** keyed by
//!   (statement text, configuration fingerprint), and the paged update
//!   state behind **per-document write latches**: sessions updating
//!   disjoint documents commit fully in parallel, conflicting sessions
//!   queue on the fragment latch, and a commit-ordering ticket assigns
//!   generations so publishes stay atomic `Arc` swaps in generation
//!   order.  It is `Send + Sync` and meant to be shared via `Arc`.
//! * [`Session`] is a cheap handle created by [`Database::session`]: it
//!   carries the per-client [`ExecConfig`] and statistics.  Statements go
//!   through [`Session::execute`], which auto-detects query vs. update text.
//! * [`Prepared`] is produced by [`Session::prepare`]: the text is parsed
//!   and compiled exactly once (external variables declared with
//!   `declare variable $x external;` stay symbolic) and can then be executed
//!   many times — concurrently from many threads — with values supplied
//!   through the [`Params`] binder (`prepared.bind("x", 42).execute()`).
//!
//! Every query execution pins an immutable [`StoreSnapshot`], so readers
//! never block each other and a writer can never pull document data out
//! from under a running query or an already produced [`QueryResult`].

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard};

use mxq_engine::{Item, NodeId};
use mxq_wal::WalWriter;
use mxq_xmldb::disk::encode_snapshot;
use mxq_xmldb::{
    decode_snapshot, shred, Container, ContainerRef, DocStore, Document, DocumentBuilder,
    DocumentColumns, NodeKind, NodeRead, PagedDocument, ShredOptions, StoreSnapshot, UpdateStats,
    TRANSIENT_FRAG,
};

use crate::algebra::PlanRef;
use crate::ast::Statement;
use crate::compile::Compiler;
use crate::config::{ExecConfig, ExecStats};
use crate::durability::{
    self, decode_op, doc_file_name, Catalog, CatalogDoc, DurabilityError, DurabilityOptions,
    Durable, WalOp, CATALOG_FILE, WAL_FILE,
};
use crate::exec::{serialize_item_snapshot, serialize_items_snapshot, ExecError, Executor};
use crate::params::Params;
use crate::parser::parse_statement;
use crate::pul::{self, PendingUpdateList, PulError, UpdateKind, UpdatePlan, UpdatePrimitive};
use crate::Error;

// ---------------------------------------------------------------------------
// results
// ---------------------------------------------------------------------------

/// The result of a query: the item sequence, pinned to the store snapshot
/// and the private transient container it was produced against.
///
/// Serialization is lazy: [`QueryResult::serialize`] renders the whole
/// sequence to one string on first use, while [`QueryResult::into_iter`]
/// streams the items without ever building that string.
#[derive(Debug, Clone)]
pub struct QueryResult {
    items: Vec<Item>,
    snap: StoreSnapshot,
    transient: Arc<Document>,
    serialized: OnceLock<String>,
}

impl QueryResult {
    pub(crate) fn new(items: Vec<Item>, snap: StoreSnapshot, transient: Document) -> Self {
        QueryResult {
            items,
            snap,
            transient: Arc::new(transient),
            serialized: OnceLock::new(),
        }
    }

    /// The result items in sequence order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items in the result sequence.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the result is the empty sequence.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// XML/text serialization of the result sequence, rendered lazily on
    /// first call and cached.
    pub fn serialize(&self) -> &str {
        self.serialized
            .get_or_init(|| serialize_items_snapshot(&self.snap, &self.transient, &self.items))
    }

    /// Serialize a single item of this result (nodes as XML, atomics as
    /// their string value) without materialising the full result string.
    pub fn serialize_item(&self, item: &Item) -> String {
        serialize_item_snapshot(&self.snap, &self.transient, item)
    }

    /// Iterate over the items without consuming the result.
    pub fn iter(&self) -> std::slice::Iter<'_, Item> {
        self.items.iter()
    }

    /// Turn the result into a [`ResultStream`] that yields the items one by
    /// one — the path for large sequences that should not be serialized to
    /// one `String`.
    pub fn into_stream(self) -> ResultStream {
        ResultStream {
            iter: self.items.into_iter(),
            snap: self.snap,
            transient: self.transient,
        }
    }
}

impl IntoIterator for QueryResult {
    type Item = Item;
    type IntoIter = ResultStream;

    fn into_iter(self) -> ResultStream {
        self.into_stream()
    }
}

impl<'a> IntoIterator for &'a QueryResult {
    type Item = &'a Item;
    type IntoIter = std::slice::Iter<'a, Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// A streaming view of a query result: an iterator over the items that
/// still pins the snapshot/transient containers, so node items can be
/// serialized individually while streaming.
#[derive(Debug)]
pub struct ResultStream {
    iter: std::vec::IntoIter<Item>,
    snap: StoreSnapshot,
    transient: Arc<Document>,
}

impl ResultStream {
    /// Serialize one item (typically one just yielded by the iterator).
    pub fn serialize_item(&self, item: &Item) -> String {
        serialize_item_snapshot(&self.snap, &self.transient, item)
    }
}

impl Iterator for ResultStream {
    type Item = Item;

    fn next(&mut self) -> Option<Item> {
        self.iter.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

impl ExactSizeIterator for ResultStream {}

/// Diagnostics of one query execution: plan size and runtime counters.
#[derive(Debug, Clone, Default)]
pub struct QueryReport {
    /// Number of algebra operators in the compiled plan (the paper reports an
    /// average of 86 for XMark).
    pub plan_operators: usize,
    /// Runtime statistics.
    pub stats: ExecStats,
}

/// Diagnostics of one update execution.
#[derive(Debug, Clone, Default)]
pub struct UpdateReport {
    /// Number of updating statements in the executed text.
    pub statements: usize,
    /// Number of update primitives applied (after delete deduplication).
    pub primitives: usize,
    /// Number of distinct documents mutated.
    pub documents_touched: usize,
    /// Storage-level cost counters accumulated over the touched documents.
    pub stats: UpdateStats,
}

/// The outcome of [`Session::execute`] / [`Prepared::execute`]: a query
/// result or an update report, depending on what the statement text was.
#[derive(Debug)]
pub enum StatementResult {
    /// The statement was a query.
    Query(QueryResult),
    /// The statement was an XQuery Update Facility statement list.
    Update(UpdateReport),
}

impl StatementResult {
    /// True if the statement was an update.
    pub fn is_update(&self) -> bool {
        matches!(self, StatementResult::Update(_))
    }

    /// The query result, if the statement was a query.
    pub fn as_query(&self) -> Option<&QueryResult> {
        match self {
            StatementResult::Query(r) => Some(r),
            StatementResult::Update(_) => None,
        }
    }

    /// The update report, if the statement was an update.
    pub fn as_update(&self) -> Option<&UpdateReport> {
        match self {
            StatementResult::Update(r) => Some(r),
            StatementResult::Query(_) => None,
        }
    }

    /// Unwrap into a query result; errors if the statement was an update.
    pub fn into_query(self) -> Result<QueryResult, Error> {
        match self {
            StatementResult::Query(r) => Ok(r),
            StatementResult::Update(_) => Err(Error::WrongStatementKind { expected: "query" }),
        }
    }

    /// Unwrap into an update report; errors if the statement was a query.
    pub fn into_update(self) -> Result<UpdateReport, Error> {
        match self {
            StatementResult::Update(r) => Ok(r),
            StatementResult::Query(_) => Err(Error::WrongStatementKind { expected: "update" }),
        }
    }
}

// ---------------------------------------------------------------------------
// compiled statements and the plan cache
// ---------------------------------------------------------------------------

/// A parsed + compiled statement, shareable across sessions and threads.
#[derive(Debug)]
pub(crate) enum CompiledStatement {
    /// A compiled query plan.
    Query {
        plan: PlanRef,
        operators: usize,
        externals: Vec<String>,
        /// Property-driven rewrites the simplifier applied at compile time.
        rewrites: Vec<crate::analysis::Rewrite>,
    },
    /// A compiled update plan.
    Update {
        plan: UpdatePlan,
        externals: Vec<String>,
    },
}

impl CompiledStatement {
    fn externals(&self) -> &[String] {
        match self {
            CompiledStatement::Query { externals, .. } => externals,
            CompiledStatement::Update { externals, .. } => externals,
        }
    }
}

/// LRU cache of compiled statements keyed by (config fingerprint, text).
struct PlanCache {
    capacity: usize,
    tick: u64,
    len: usize,
    /// Config fingerprint → statement text → (compiled, last-used tick).
    /// The nesting exists so hot-path lookups can borrow the text (`&str`)
    /// instead of allocating an owned key per call.
    map: HashMap<u64, HashMap<String, (Arc<CompiledStatement>, u64)>>,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            tick: 0,
            len: 0,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, fp: u64, text: &str) -> Option<Arc<CompiledStatement>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&fp)?.get_mut(text).map(|entry| {
            entry.1 = tick;
            entry.0.clone()
        })
    }

    fn insert(&mut self, fp: u64, text: String, stmt: Arc<CompiledStatement>) {
        let exists = self
            .map
            .get(&fp)
            .is_some_and(|inner| inner.contains_key(&text));
        if !exists && self.len >= self.capacity {
            // evict the least recently used entry (linear scan: the cache is
            // small and eviction is rare compared to hits)
            let victim = self
                .map
                .iter()
                .flat_map(|(fp, inner)| inner.iter().map(move |(t, (_, tick))| (*tick, *fp, t)))
                .min()
                .map(|(_, fp, t)| (fp, t.clone()));
            if let Some((vfp, vtext)) = victim {
                if let Some(inner) = self.map.get_mut(&vfp) {
                    if inner.remove(&vtext).is_some() {
                        self.len -= 1;
                    }
                }
            }
        }
        self.tick += 1;
        if self
            .map
            .entry(fp)
            .or_default()
            .insert(text, (stmt, self.tick))
            .is_none()
        {
            self.len += 1;
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Number of plan-cache shards.  Concurrent sessions hash their statement
/// onto a shard, so N preparing sessions serialize only when they collide
/// on one of the 8 shard mutexes instead of always on a single lock.
const PLAN_CACHE_SHARDS: usize = 8;

/// The plan cache split into [`PLAN_CACHE_SHARDS`] independently locked
/// LRUs.  Each shard gets an equal slice of the capacity; eviction is
/// per-shard (a shard's LRU entry goes when that shard fills), which
/// approximates global LRU well enough for a cache of compiled plans.
struct ShardedPlanCache {
    shards: Vec<Mutex<PlanCache>>,
}

impl ShardedPlanCache {
    fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(PLAN_CACHE_SHARDS);
        ShardedPlanCache {
            shards: (0..PLAN_CACHE_SHARDS)
                .map(|_| Mutex::new(PlanCache::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, fp: u64, text: &str) -> &Mutex<PlanCache> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        fp.hash(&mut h);
        text.hash(&mut h);
        &self.shards[h.finish() as usize % self.shards.len()]
    }

    fn get(&self, fp: u64, text: &str) -> Option<Arc<CompiledStatement>> {
        self.shard(fp, text).lock().unwrap().get(fp, text)
    }

    fn insert(&self, fp: u64, text: String, stmt: Arc<CompiledStatement>) {
        self.shard(fp, &text).lock().unwrap().insert(fp, text, stmt);
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }
}

// ---------------------------------------------------------------------------
// the database
// ---------------------------------------------------------------------------

/// One fragment's write latch: a mutex whose critical section is the whole
/// commit pipeline for that fragment (PUL application onto the master,
/// durability wait, publish).  The guarded slot holds the fragment's
/// mutable master, when one exists.
///
/// The master shares its pages and column image with the published
/// snapshot via `Arc` (copy-on-write per touched page), so keeping it
/// around costs no duplicate storage; an empty slot is reconstructed from
/// the published snapshot on the fragment's next update (cheap `Arc`
/// clones).  Invariant: between commits, a non-empty slot's content equals
/// the fragment's published state — a writer that mutated the master but
/// failed to publish (WAL append or group fsync error) clears the slot.
struct FragLatch {
    slot: Mutex<Option<PagedDocument>>,
}

/// The per-document latch table.  Writers latch the fragments their
/// pending-update list touches — written or read — in ascending fragment
/// order (so two writers overlapping on several documents can never
/// deadlock); disjoint-document writers take disjoint latches and run
/// fully in parallel.  A latch taken for a read-only fragment leaves the
/// master slot untouched; it is held purely so the fragment cannot be
/// republished while a commit that read from it is in flight.
#[derive(Default)]
struct LatchTable {
    map: Mutex<HashMap<u32, Arc<FragLatch>>>,
}

impl LatchTable {
    /// The latch for a fragment, created on first use.
    fn latch(&self, frag: u32) -> Arc<FragLatch> {
        self.map
            .lock()
            .unwrap()
            .entry(frag)
            .or_insert_with(|| {
                Arc::new(FragLatch {
                    slot: Mutex::new(None),
                })
            })
            .clone()
    }

    /// Drop a fragment's master if no writer currently holds its latch
    /// (used by checkpoint eviction).  Returns false when the latch is
    /// held — the fragment is mid-commit and must not be evicted.
    fn try_clear(&self, frag: u32) -> bool {
        let latch = {
            let map = self.map.lock().unwrap();
            match map.get(&frag) {
                Some(l) => l.clone(),
                None => return true,
            }
        };
        let cleared = match latch.slot.try_lock() {
            Ok(mut slot) => {
                *slot = None;
                true
            }
            Err(_) => false,
        };
        cleared
    }
}

/// The commit-ordering ticket.  `begin` hands out the generation a commit
/// will land on; `publish` is a turnstile that runs the publish closures
/// in strict ticket order, so the store generation stays the count of
/// committed tickets and readers observe commits in the order they were
/// stamped into the WAL.  A commit that fails after taking a ticket calls
/// `abort`, which lets the turnstile move past the hole (the skipped
/// generation is never published — recovery tolerates gaps because replay
/// orders by stamp, not by density).
struct CommitOrder {
    state: Mutex<CommitClock>,
}

struct CommitClock {
    /// The next generation to hand out.
    next_ticket: u64,
    /// The lowest ticket that has not yet published.
    next_publish: u64,
    /// Commits parked waiting for their turn, keyed by ticket.  Each
    /// publish unparks exactly its successor — a shared condvar broadcast
    /// would wake every waiter per advance (a thundering herd on the
    /// commit hot path when a group-commit batch drains).
    waiters: HashMap<u64, std::thread::Thread>,
}

impl CommitOrder {
    fn new(generation: u64) -> CommitOrder {
        CommitOrder {
            state: Mutex::new(CommitClock {
                next_ticket: generation + 1,
                next_publish: generation + 1,
                waiters: HashMap::new(),
            }),
        }
    }

    /// Take the next commit ticket.  Call only with every needed fragment
    /// latch already held — a ticket holder blocking on a latch held by a
    /// *later* ticket would deadlock the turnstile.
    fn begin(&self) -> u64 {
        let mut s = self.state.lock().unwrap();
        let t = s.next_ticket;
        s.next_ticket += 1;
        t
    }

    /// Reset both counters after recovery landed the store on `generation`.
    fn reset(&self, generation: u64) {
        let mut s = self.state.lock().unwrap();
        s.next_ticket = generation + 1;
        s.next_publish = generation + 1;
    }

    /// Wait for `ticket`'s turn, run the publish closure, advance the
    /// turnstile.
    fn publish<R>(&self, ticket: u64, f: impl FnOnce() -> R) -> R {
        let mut s = self.state.lock().unwrap();
        while s.next_publish != ticket {
            s.waiters.insert(ticket, std::thread::current());
            drop(s);
            // park() may return spuriously or from a stale unpark token;
            // the loop re-checks the turn either way
            std::thread::park();
            s = self.state.lock().unwrap();
        }
        s.waiters.remove(&ticket);
        let r = f();
        s.next_publish = ticket + 1;
        let successor = s.waiters.get(&s.next_publish).cloned();
        drop(s);
        if let Some(t) = successor {
            t.unpark();
        }
        r
    }

    /// Give up a ticket after a failed commit: take the turn and publish
    /// nothing, so later tickets are not stalled forever.
    fn abort(&self, ticket: u64) {
        self.publish(ticket, || ());
    }
}

/// Counters over the whole database (all sessions).
#[derive(Debug, Default)]
struct Counters {
    /// Statements actually parsed + compiled (plan-cache misses and
    /// uncached compiles).
    prepares: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    queries: AtomicU64,
    updates: AtomicU64,
    checkpoints: AtomicU64,
    background_checkpoints: AtomicU64,
    recovery_replays: AtomicU64,
    /// Writer blocked acquiring a fragment latch another writer held.
    latch_waits: AtomicU64,
    /// Writer found its snapshot stale after latching (another commit to
    /// the same fragment published in between) and re-evaluated under the
    /// latch.
    latch_conflicts: AtomicU64,
}

/// A point-in-time copy of the database counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DatabaseStats {
    /// Statements parsed + compiled since the database was created.  Stays
    /// flat while executions are served from the plan cache or a
    /// [`Prepared`] statement.
    pub prepares: u64,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses.
    pub plan_cache_misses: u64,
    /// Queries executed (all sessions and prepared statements).
    pub queries: u64,
    /// Updates executed.
    pub updates: u64,
    /// Bytes appended to the write-ahead log (record headers included).
    /// Stays 0 for an in-memory database.
    pub wal_bytes_written: u64,
    /// `fsync` calls issued by the write-ahead log (appends under the
    /// configured [`SyncPolicy`](crate::SyncPolicy), group-commit batch
    /// fsyncs, plus checkpoint rotations).
    pub wal_fsyncs: u64,
    /// Checkpoints taken ([`Database::checkpoint`] plus background).
    pub checkpoints: u64,
    /// Checkpoints initiated by the background checkpoint thread
    /// (a subset of `checkpoints`).
    pub background_checkpoints: u64,
    /// WAL records replayed by crash recovery when this database was
    /// opened ([`Database::open`]); 0 after a clean shutdown.
    pub recovery_replays: u64,
    /// Times a writer blocked acquiring a fragment latch held by another
    /// writer.  Stays 0 while writers touch disjoint documents.
    pub latch_waits: u64,
    /// Times a writer found its evaluation snapshot stale after latching
    /// (a conflicting commit published the fragment first) and
    /// re-evaluated under the latch.
    pub latch_conflicts: u64,
    /// Group-commit fsync batches completed (0 unless the sync policy is
    /// [`SyncPolicy::GroupCommit`](crate::SyncPolicy)).
    pub group_commit_batches: u64,
    /// WAL records covered by those batches.
    pub group_commit_records: u64,
    /// Smallest batch (records per fsync); 0 before the first batch.
    pub group_commit_batch_min: u64,
    /// Largest batch (records per fsync).
    pub group_commit_batch_max: u64,
    /// True once a group-commit fsync has failed: the write-ahead log is
    /// poisoned, every subsequent durable commit or load fails with
    /// [`DurabilityError::Poisoned`](crate::durability::DurabilityError),
    /// and the database must be reopened to recover (reads keep working).
    /// Always false for an in-memory database.
    pub wal_poisoned: bool,
    /// Compiled statements currently cached.
    pub plan_cache_len: usize,
}

impl DatabaseStats {
    /// Plan-cache hit rate in `[0, 1]`; `None` before the first lookup.
    pub fn plan_cache_hit_rate(&self) -> Option<f64> {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        (total > 0).then(|| self.plan_cache_hits as f64 / total as f64)
    }

    /// Mean group-commit batch size (records per fsync); `None` before
    /// the first batch.
    pub fn group_commit_batch_mean(&self) -> Option<f64> {
        (self.group_commit_batches > 0)
            .then(|| self.group_commit_records as f64 / self.group_commit_batches as f64)
    }
}

/// Read guard over the shared document store (see [`Database::store`]).
/// Dereferences to [`DocStore`]; holding it blocks writers, so keep it
/// short-lived.
pub struct StoreReadGuard<'a>(RwLockReadGuard<'a, DocStore>);

impl std::ops::Deref for StoreReadGuard<'_> {
    type Target = DocStore;

    fn deref(&self) -> &DocStore {
        &self.0
    }
}

/// A shared XQuery database: the document store, the plan cache and the
/// update substrate, safe to share across threads via `Arc`.
///
/// ```
/// use std::sync::Arc;
/// use mxq_xquery::Database;
///
/// let db = Arc::new(Database::new());
/// db.load_document("books.xml", "<books><book>DB</book></books>").unwrap();
/// let mut session = db.session();
/// let result = session.query("doc(\"books.xml\")/books/book/text()").unwrap();
/// assert_eq!(result.serialize(), "DB");
/// ```
pub struct Database {
    store: Arc<RwLock<DocStore>>,
    /// Per-document write latches + master slots (see [`LatchTable`]).
    latches: Arc<LatchTable>,
    /// Commit-ordering tickets: generation assignment + publish turnstile.
    commit: CommitOrder,
    plan_cache: ShardedPlanCache,
    counters: Arc<Counters>,
    /// Durability attachment: present when the database was opened on a
    /// directory ([`Database::open`]); `None` for an in-memory database.
    durable: Option<Arc<Durable>>,
    /// The background checkpoint thread, when
    /// [`DurabilityOptions::checkpoint_interval`] is set.  Signalled to
    /// stop and joined when the database is dropped.
    background: Option<CheckpointThread>,
}

/// Handle on the background checkpoint thread: dropping it (with the
/// database) signals the thread to stop and joins it.
struct CheckpointThread {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for CheckpointThread {
    fn drop(&mut self) {
        *self.stop.0.lock().unwrap() = true;
        self.stop.1.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("generation", &self.generation())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

/// Number of compiled statements the plan cache retains.
const PLAN_CACHE_CAPACITY: usize = 256;

impl Database {
    /// An empty in-memory database (no durability: nothing is written to
    /// disk, and dropping the database loses all documents).
    pub fn new() -> Self {
        Database {
            store: Arc::new(RwLock::new(DocStore::new())),
            latches: Arc::new(LatchTable::default()),
            commit: CommitOrder::new(0),
            plan_cache: ShardedPlanCache::new(PLAN_CACHE_CAPACITY),
            counters: Arc::new(Counters::default()),
            durable: None,
            background: None,
        }
    }

    /// Open (or create) a durable database rooted at `dir` with default
    /// [`DurabilityOptions`] (fsync on every WAL append, no eviction).
    ///
    /// If the directory holds an earlier database, its state is recovered:
    /// the last checkpoint's page images are loaded and the write-ahead
    /// log's complete records are replayed, which lands the store exactly on
    /// the last published generation.  A torn or corrupt log tail (a crash
    /// mid-append) is detected by checksum, discarded and truncated — the
    /// update it belonged to was never acknowledged, because
    /// update application syncs the log *before* it publishes.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, Error> {
        Self::open_with(dir, DurabilityOptions::default())
    }

    /// [`Database::open`] with explicit durability options.
    pub fn open_with(dir: impl AsRef<Path>, options: DurabilityOptions) -> Result<Self, Error> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| Error::Durability(e.into()))?;
        // debris from a crashed write_atomic: a temp file is meaningless
        // outside the write that created it
        durability::remove_stale_tmp_files(&dir);

        let mut db = Database::new();
        let mut replays: u64 = 0;
        let mut dirty = HashSet::new();

        // 1. last checkpoint: page images + the generation they capture
        let catalog = durability::read_catalog(&dir).map_err(Error::Durability)?;
        let checkpoint_generation = catalog.as_ref().map_or(0, |c| c.generation);
        let mut images: HashMap<u32, String> = HashMap::new();
        if let Some(cat) = &catalog {
            let mut store = db.store.write().unwrap();
            store.set_page_policy(cat.page_size, cat.fill_percent);
            for doc in &cat.docs {
                let bytes = std::fs::read(dir.join(&doc.file)).map_err(|e| {
                    Error::Durability(DurabilityError::Corrupt(format!(
                        "checkpoint image `{}` for document `{}` unreadable: {e}",
                        doc.file, doc.name
                    )))
                })?;
                let snap = decode_snapshot(&bytes).map_err(|e| Error::Durability(e.into()))?;
                let frag = store.add_paged(&doc.name, Arc::new(snap));
                if frag != doc.frag {
                    return Err(Error::Durability(DurabilityError::Corrupt(format!(
                        "catalog names fragment {} for `{}` but the store assigned {frag}",
                        doc.frag, doc.name
                    ))));
                }
                images.insert(doc.frag, doc.file.clone());
            }
            store.set_generation(cat.generation);
        }
        // image files the committed catalog does not reference were written
        // by a checkpoint that crashed before its commit point; the WAL
        // replay below re-derives whatever state they captured
        durability::remove_unreferenced_images(&dir, &images);

        // 2. replay the WAL's complete records past the checkpoint in
        //    generation order — concurrent commits interleave records in
        //    file order, but each record's stamp is its commit ticket, and
        //    per fragment the stamps are monotone (a later commit on the
        //    same document appended under the latch the earlier one had
        //    released), so stamp order is a valid replay order.
        //    WalWriter::open truncates any torn/corrupt tail.
        let (wal, mut scan) = WalWriter::open(&dir.join(WAL_FILE), options.sync)
            .map_err(|e| Error::Durability(e.into()))?;
        scan.records.sort_by_key(|r| r.generation);
        for record in &scan.records {
            if record.generation <= checkpoint_generation {
                // logged before the checkpoint that survived it — a crash
                // between catalog commit and log rotation leaves these
                continue;
            }
            let op = decode_op(&record.payload).map_err(Error::Durability)?;
            db.replay(op, record.generation, &mut dirty)?;
            replays += 1;
        }

        db.counters
            .recovery_replays
            .store(replays, Ordering::Relaxed);
        let durable = Arc::new(Durable::new(
            dir,
            options,
            wal,
            checkpoint_generation,
            images,
        ));
        durable.mark_dirty(&dirty.iter().copied().collect::<Vec<_>>());
        db.durable = Some(durable.clone());
        // commits resume ticketing from the recovered generation
        db.commit.reset(db.generation());

        // 3. the background checkpoint thread, if configured: wakes every
        //    interval, snapshots the dirty set and writes the checkpoint
        //    without holding any fragment latch
        if let Some(interval) = options.checkpoint_interval {
            let stop = Arc::new((Mutex::new(false), Condvar::new()));
            let thread_stop = stop.clone();
            let store = db.store.clone();
            let latches = db.latches.clone();
            let counters = db.counters.clone();
            let handle = std::thread::Builder::new()
                .name("mxq-checkpoint".into())
                .spawn(move || {
                    let (lock, cv) = &*thread_stop;
                    let mut stopped = lock.lock().unwrap();
                    while !*stopped {
                        let (guard, _) = cv.wait_timeout(stopped, interval).unwrap();
                        stopped = guard;
                        if *stopped {
                            break;
                        }
                        drop(stopped);
                        // a failed or skipped tick is retried next interval;
                        // the WAL still holds everything, durability is not
                        // weakened by a checkpoint that did not happen
                        if let Ok(true) =
                            run_checkpoint(&store, &latches, &durable, &counters, true)
                        {
                            counters
                                .background_checkpoints
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        stopped = lock.lock().unwrap();
                    }
                })
                .expect("failed to spawn the background checkpoint thread");
            db.background = Some(CheckpointThread {
                stop,
                handle: Some(handle),
            });
        }
        Ok(db)
    }

    /// Apply one recovered WAL operation and land the store on the
    /// generation its record was stamped with.  Fragments the operation
    /// created or mutated are added to `touched`: their on-disk images (if
    /// any) predate the operation, so the next checkpoint must rewrite them.
    fn replay(&self, op: WalOp, generation: u64, touched: &mut HashSet<u32>) -> Result<(), Error> {
        match op {
            WalOp::LoadXml { name, xml } => {
                let mut store = self.store.write().unwrap();
                touched.insert(store.load_xml(&name, &xml)?);
                store.set_generation(generation);
            }
            WalOp::LoadDoc { doc } => {
                let mut store = self.store.write().unwrap();
                touched.insert(store.add_document(*doc));
                store.set_generation(generation);
            }
            WalOp::Update { primitives } => {
                let mut pul = PendingUpdateList::new();
                for prim in primitives {
                    pul.add(prim).map_err(|e| {
                        Error::Durability(DurabilityError::Corrupt(format!(
                            "recovered update no longer applies: {e}"
                        )))
                    })?;
                }
                let snap = self.snapshot();
                let (page_size, fill_percent) = self.store.read().unwrap().page_policy();
                let frags = pul.fragments();
                let mut publishes = Vec::with_capacity(frags.len());
                for &frag in &frags {
                    let latch = self.latches.latch(frag);
                    let mut slot = latch.slot.lock().unwrap();
                    let paged_doc = match slot.as_mut() {
                        Some(doc) => doc,
                        None => {
                            slot.insert(reconstruct_master(&snap, frag, page_size, fill_percent))
                        }
                    };
                    pul.apply_to(frag, paged_doc);
                    publishes.push(Arc::new(paged_doc.snapshot()));
                }
                let mut store = self.store.write().unwrap();
                for (publish, &frag) in publishes.into_iter().zip(&frags) {
                    store.publish(frag, publish)?;
                }
                store.set_generation(generation);
                touched.extend(frags);
            }
        }
        Ok(())
    }

    /// Write a checkpoint: a fresh generation-stamped page image for every
    /// document changed since the last checkpoint (unchanged documents keep
    /// their existing image files — checkpoint I/O is proportional to what
    /// changed, not to the database size), then the catalog (the atomic
    /// commit point, naming the exact image files), then rotate the
    /// write-ahead log and delete superseded images.  After a checkpoint,
    /// recovery starts from the images instead of replaying the whole log.
    /// No-op (returning `Ok`) on an in-memory database.
    ///
    /// Checkpoints never hold a fragment latch: writers keep committing
    /// while the images are written, and records stamped after the snapshot
    /// survive the log rotation.  Concurrent `checkpoint()` calls (including
    /// the background thread's) serialize on an internal lock.
    ///
    /// If a memory budget is configured, clean documents are evicted after
    /// the checkpoint until the resident page bytes fit the budget.
    pub fn checkpoint(&self) -> Result<(), Error> {
        let Some(durable) = &self.durable else {
            return Ok(());
        };
        run_checkpoint(&self.store, &self.latches, durable, &self.counters, false).map(|_| ())
    }

    /// The durability directory, or `None` for an in-memory database.
    pub fn durability_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir.as_path())
    }

    /// The durability options in effect, or `None` for an in-memory
    /// database.
    pub fn durability_options(&self) -> Option<DurabilityOptions> {
        self.durable.as_ref().map(|d| d.options)
    }

    /// Open a session: a cheap per-client handle with its own configuration
    /// and statistics.
    pub fn session(self: &Arc<Self>) -> Session {
        self.session_with_config(ExecConfig::default())
    }

    /// Open a session with an explicit configuration.
    pub fn session_with_config(self: &Arc<Self>, config: ExecConfig) -> Session {
        Session {
            db: self.clone(),
            config,
            stats: SessionStats::default(),
        }
    }

    /// Shred and load an XML document under the given name (the name is what
    /// `fn:doc("name")` refers to).  On a durable database the load is
    /// WAL-logged (and synced per the policy) before it is published, like
    /// any update.
    pub fn load_document(&self, name: &str, xml: &str) -> Result<(), Error> {
        // shred exactly once: an invalid document is rejected before it is
        // logged (recovery must never trip over a failed operation), and
        // the shredded result is what the store pages — the text is not
        // parsed a second time
        let opts = ShredOptions {
            document_node: true,
            ..ShredOptions::default()
        };
        let doc = shred(name, xml, &opts)?;
        self.commit_load(doc, |_| durability::encode_load_xml(name, xml))
    }

    /// Load an already shredded document.  WAL-logged on a durable database
    /// (the document travels as an encoded image).
    pub fn load_shredded(&self, doc: Document) -> Result<(), Error> {
        self.commit_load(doc, durability::encode_load_doc)
    }

    /// Commit a document load.  Loads take no fragment latch — the fragment
    /// does not exist yet, so no other writer can touch it; the commit
    /// ticket alone orders the load against every concurrent commit.  The
    /// fragment id is assigned inside the publish turnstile, so ids are
    /// dense in ticket order and recovery (which replays records in stamp
    /// order) reassigns the exact same ids.
    fn commit_load(
        &self,
        doc: Document,
        payload: impl FnOnce(&Document) -> Vec<u8>,
    ) -> Result<(), Error> {
        let ticket = self.commit.begin();
        let mut durable_seq = None;
        if let Some(durable) = &self.durable {
            let bytes = payload(&doc);
            match durable.append(ticket, &bytes) {
                Ok(seq) => durable_seq = Some(seq),
                Err(e) => {
                    self.commit.abort(ticket);
                    return Err(Error::Durability(e));
                }
            }
        }
        if let (Some(durable), Some(seq)) = (&self.durable, durable_seq) {
            if let Err(e) = durable.wait_durable(seq) {
                self.commit.abort(ticket);
                return Err(Error::Durability(e));
            }
        }
        self.commit.publish(ticket, || {
            let mut store = self.store.write().unwrap();
            let frag = store.add_document(doc);
            store.set_generation(ticket);
            // inside the store write critical section, like apply_update's
            // marks: a checkpoint capturing dirty set + snapshot under the
            // store read lock sees the load and its mark together
            if let Some(durable) = &self.durable {
                durable.mark_dirty(&[frag]);
            }
        });
        Ok(())
    }

    /// Read access to the shared document store.  The guard blocks writers
    /// while held — prefer [`Database::snapshot`] for anything longer than a
    /// lookup.
    pub fn store(&self) -> StoreReadGuard<'_> {
        StoreReadGuard(self.store.read().unwrap())
    }

    /// An immutable snapshot of all loaded documents (cheap: clones `Arc`s).
    pub fn snapshot(&self) -> StoreSnapshot {
        self.store.read().unwrap().snapshot()
    }

    /// The current store generation (see [`DocStore::generation`]).
    pub fn generation(&self) -> u64 {
        self.store.read().unwrap().generation()
    }

    /// Point-in-time copy of the database counters.
    pub fn stats(&self) -> DatabaseStats {
        let (wal_bytes_written, wal_fsyncs) =
            self.durable.as_ref().map_or((0, 0), |d| d.wal_counters());
        let (gc_batches, gc_records, gc_min, gc_max) = self
            .durable
            .as_ref()
            .map_or((0, 0, 0, 0), |d| d.group_commit_stats());
        DatabaseStats {
            prepares: self.counters.prepares.load(Ordering::Relaxed),
            plan_cache_hits: self.counters.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.counters.plan_cache_misses.load(Ordering::Relaxed),
            queries: self.counters.queries.load(Ordering::Relaxed),
            updates: self.counters.updates.load(Ordering::Relaxed),
            wal_bytes_written,
            wal_fsyncs,
            checkpoints: self.counters.checkpoints.load(Ordering::Relaxed),
            background_checkpoints: self.counters.background_checkpoints.load(Ordering::Relaxed),
            recovery_replays: self.counters.recovery_replays.load(Ordering::Relaxed),
            latch_waits: self.counters.latch_waits.load(Ordering::Relaxed),
            latch_conflicts: self.counters.latch_conflicts.load(Ordering::Relaxed),
            group_commit_batches: gc_batches,
            group_commit_records: gc_records,
            group_commit_batch_min: gc_min,
            group_commit_batch_max: gc_max,
            wal_poisoned: self.durable.as_ref().is_some_and(|d| d.poisoned()),
            plan_cache_len: self.plan_cache.len(),
        }
    }

    /// Tune the paged update scheme (logical page size in tuples, fill
    /// factor in percent).  Affects documents loaded or first paged after
    /// the call.
    ///
    /// # Panics
    /// Panics unless `page_size` is a power of two ≥ 2 and
    /// `fill_percent ∈ (0, 100]`.
    pub fn set_page_policy(&self, page_size: usize, fill_percent: u8) {
        // the store write lock orders this against publishes; a master
        // reconstructed concurrently keeps the previous policy until its
        // fragment is next rebuilt, which only affects layout, not content
        self.store
            .write()
            .unwrap()
            .set_page_policy(page_size, fill_percent);
    }

    /// The relational export ([`DocumentColumns`]) of a loaded document.
    /// Since the paged store became the source of truth this is no cache:
    /// the returned image is the one the store itself maintains
    /// incrementally — updates delta-patch it, so the handle is always
    /// current as of the call.  Returns `None` for unknown names.
    pub fn document_columns(&self, name: &str) -> Option<Arc<DocumentColumns>> {
        let store = self.store.read().unwrap();
        let frag = store.lookup(name)?;
        let snap = store
            .container_owned(frag)
            .paged_snapshot()
            .expect("loaded documents are always paged");
        Some(snap.columns_arc())
    }

    /// Execute a statement with the default configuration and no bindings —
    /// the convenience path; repeated calls with the same text are served
    /// from the plan cache.
    pub fn execute(&self, text: &str) -> Result<StatementResult, Error> {
        let (compiled, _) = self.compile_cached(text, ExecConfig::default())?;
        self.execute_compiled(&compiled, ExecConfig::default(), &Params::new())
            .map(|(result, _)| result)
    }

    // -- internals ---------------------------------------------------------

    /// Look up (or parse + compile + insert) the compiled form of a
    /// statement text under a configuration.  Returns the compiled statement
    /// and whether it was a cache hit.
    pub(crate) fn compile_cached(
        &self,
        text: &str,
        config: ExecConfig,
    ) -> Result<(Arc<CompiledStatement>, bool), Error> {
        let fp = config.fingerprint();
        if let Some(hit) = self.plan_cache.get(fp, text) {
            self.counters
                .plan_cache_hits
                .fetch_add(1, Ordering::Relaxed);
            return Ok((hit, true));
        }
        self.counters
            .plan_cache_misses
            .fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(self.compile_statement(text, config)?);
        self.plan_cache
            .insert(fp, text.to_string(), compiled.clone());
        Ok((compiled, false))
    }

    /// Parse + compile a statement (no cache).
    pub(crate) fn compile_statement(
        &self,
        text: &str,
        config: ExecConfig,
    ) -> Result<CompiledStatement, Error> {
        self.counters.prepares.fetch_add(1, Ordering::Relaxed);
        let mut compiler = Compiler::new(config);
        match parse_statement(text)? {
            Statement::Query(q) => {
                let plan = compiler.compile_query(&q)?;
                // static analysis: verify the compiled plan's structural
                // invariants, then let the inferred properties remove
                // provably redundant operators and strengthen order
                // annotations; the rewritten plan is verified again
                let analysis = crate::analysis::analyze(&plan);
                crate::analysis::verify(&plan, &analysis)?;
                let simplified = crate::analysis::simplify(&plan, &analysis);
                let plan = simplified.plan;
                let analysis = crate::analysis::analyze(&plan);
                crate::analysis::verify(&plan, &analysis)?;
                let operators = plan.operator_count();
                Ok(CompiledStatement::Query {
                    plan,
                    operators,
                    externals: compiler.external_variables().to_vec(),
                    rewrites: simplified.rewrites,
                })
            }
            Statement::Update(u) => {
                let plan = compiler.compile_update(&u)?;
                let mut analysis = crate::analysis::Analysis::default();
                for root in plan.roots() {
                    analysis.extend_with(root);
                }
                for root in plan.roots() {
                    crate::analysis::verify(root, &analysis)?;
                }
                Ok(CompiledStatement::Update {
                    plan,
                    externals: compiler.external_variables().to_vec(),
                })
            }
        }
    }

    /// Execute a compiled statement against the current store state.
    pub(crate) fn execute_compiled(
        &self,
        stmt: &CompiledStatement,
        config: ExecConfig,
        params: &Params,
    ) -> Result<(StatementResult, QueryReport), Error> {
        match stmt {
            CompiledStatement::Query {
                plan, operators, ..
            } => {
                let snap = self.snapshot();
                let (result, report) = self.run_query_on(snap, plan, *operators, config, params)?;
                Ok((StatementResult::Query(result), report))
            }
            CompiledStatement::Update { plan, .. } => {
                let report = self.apply_update(plan, config, params)?;
                Ok((StatementResult::Update(report), QueryReport::default()))
            }
        }
    }

    /// Evaluate a compiled query plan against a given snapshot.
    pub(crate) fn run_query_on(
        &self,
        snap: StoreSnapshot,
        plan: &PlanRef,
        operators: usize,
        config: ExecConfig,
        params: &Params,
    ) -> Result<(QueryResult, QueryReport), Error> {
        let mut exec = Executor::with_params(&snap, config, params.clone());
        let items = exec.eval_result(plan)?;
        let (transient, stats) = exec.finish();
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        Ok((
            QueryResult::new(items, snap, transient),
            QueryReport {
                plan_operators: operators,
                stats,
            },
        ))
    }

    /// Evaluate a compiled update plan against `snap` and collect the
    /// validated pending-update list (phases 1 and 2 of a commit: snapshot
    /// evaluation of every statement's plans, then primitive collection).
    /// Pure with respect to the store — nothing is mutated.
    ///
    /// Also returns the **read set**: every store fragment the evaluation
    /// read (documents resolved by `fn:doc`, node items bound through
    /// external variables, container accesses, and the fragments of the
    /// evaluated target/source items the collector copies from).  The
    /// commit pipeline latches these along with the write set so the
    /// values this PUL was computed from stay frozen until it publishes.
    fn evaluate_update_pul(
        &self,
        uplan: &UpdatePlan,
        config: ExecConfig,
        params: &Params,
        snap: &StoreSnapshot,
    ) -> Result<(PendingUpdateList, Vec<u32>), Error> {
        // phase 1: snapshot evaluation of every statement's plans
        struct Evaled {
            kind: UpdateKind,
            targets: Vec<Item>,
            attr: Option<String>,
            source: Option<Vec<Item>>,
        }
        let mut evaled = Vec::with_capacity(uplan.statements.len());
        let transient;
        let reads;
        {
            let mut exec = Executor::with_params(snap, config, params.clone());
            for stmt in &uplan.statements {
                let (targets, attr) = match &stmt.target {
                    pul::UpdateTarget::Nodes(p) => (exec.eval_result(p)?, None),
                    pul::UpdateTarget::Attribute { elem, name } => {
                        (exec.eval_result(elem)?, Some(name.clone()))
                    }
                };
                let source = match &stmt.source {
                    Some(p) => Some(exec.eval_result(p)?),
                    None => None,
                };
                evaled.push(Evaled {
                    kind: stmt.kind,
                    targets,
                    attr,
                    source,
                });
            }
            reads = exec.read_fragments();
            // nodes constructed while evaluating sources live in the
            // executor's private transient container; the collector copies
            // their content into the primitives' own fragments, after which
            // the container is dropped with this function frame
            transient = exec.finish().0;
        }

        // the collector below reads target context and copies source
        // subtrees straight from the snapshot — fold those fragments into
        // the read set too (targets usually are the write set, but a
        // source node living in another document is a cross-document read)
        let mut reads: HashSet<u32> = reads.into_iter().collect();
        for ev in &evaled {
            for item in ev.targets.iter().chain(ev.source.iter().flatten()) {
                if let Item::Node(n) = item {
                    if n.frag != TRANSIENT_FRAG {
                        reads.insert(n.frag);
                    }
                }
            }
        }

        // phase 2: build the pending update list (validation + conflicts)
        let collector = PrimitiveCollector {
            snap,
            transient: &transient,
        };
        let mut pul = PendingUpdateList::new();
        for ev in &evaled {
            collector.collect(
                ev.kind,
                &ev.targets,
                ev.attr.as_deref(),
                &ev.source,
                &mut pul,
            )?;
        }
        let mut reads: Vec<u32> = reads.into_iter().collect();
        reads.sort_unstable();
        Ok((pul, reads))
    }

    /// Execute a compiled update plan: snapshot evaluation, pending-update
    /// list collection, atomic application to the paged store, eager
    /// re-materialization and publication of the touched documents.
    ///
    /// Writers touching disjoint documents run fully in parallel; writers
    /// that share a document — written *or read* by the update — queue on
    /// its fragment latch.  Latching the read set along with the write set
    /// keeps multi-writer execution serializable: an update that computes
    /// its new values from another document holds that document frozen
    /// from validation to publish, so no write-skew anomaly can commit.
    /// Publishes happen in commit-ticket order, so readers observe a
    /// linear history of atomic `Arc` swaps regardless of how the writers
    /// interleaved.
    ///
    /// One caveat short of full serializability: a `fn:doc` call that finds
    /// *no* document ("unknown document" error, or an update statement
    /// evaluating to the empty sequence because of it) has no fragment to
    /// latch, so a concurrent `load_document` is not serialized against it
    /// (a phantom).  Loads only ever add documents; they never change one
    /// an update could have read.
    pub(crate) fn apply_update(
        &self,
        uplan: &UpdatePlan,
        config: ExecConfig,
        params: &Params,
    ) -> Result<UpdateReport, Error> {
        loop {
            if let Some(report) = self.try_apply_update(uplan, config, params)? {
                return Ok(report);
            }
            // the fragment set changed between evaluation and latching
            // (another writer's commit moved a target into or out of a
            // document we had not latched) — rare; rerun the whole
            // pipeline on a fresh snapshot
        }
    }

    /// One attempt at committing an update plan.  Returns `Ok(None)` when
    /// the attempt must be restarted because re-evaluation under the
    /// latches produced a different fragment set.
    fn try_apply_update(
        &self,
        uplan: &UpdatePlan,
        config: ExecConfig,
        params: &Params,
    ) -> Result<Option<UpdateReport>, Error> {
        let snap = self.snapshot();
        let (mut pul, reads) = self.evaluate_update_pul(uplan, config, params, &snap)?;
        let frags = pul.fragments();
        if frags.is_empty() {
            // nothing to do: no latch, no ticket, no WAL record
            self.counters.updates.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(UpdateReport {
                statements: uplan.statements.len(),
                primitives: 0,
                documents_touched: 0,
                stats: UpdateStats::default(),
            }));
        }

        // the latch scope is the union of the write set and the read set,
        // in ascending fragment order (two writers latching overlapping
        // sets cannot deadlock).  Latching the reads too is what makes
        // multi-writer commits serializable: an update that reads document
        // B while writing document A holds B's latch from validation to
        // publish, so no concurrent commit can republish B under the
        // values this PUL was computed from (write skew).  Reads are
        // usually a subset of the writes, in which case this degenerates
        // to the plain write-set latching and disjoint-document writers
        // still share nothing.
        let scope = latch_scope(&frags, &reads);
        let latches: Vec<Arc<FragLatch>> = scope.iter().map(|&f| self.latches.latch(f)).collect();
        let mut guards: Vec<MutexGuard<'_, Option<PagedDocument>>> =
            Vec::with_capacity(latches.len());
        for latch in &latches {
            let guard = if let Ok(guard) = latch.slot.try_lock() {
                guard
            } else {
                self.counters.latch_waits.fetch_add(1, Ordering::Relaxed);
                latch.slot.lock().unwrap()
            };
            guards.push(guard);
        }

        // validation: if any latched fragment (read or written) was
        // republished since `snap`, the PUL may be stale (targets' pre
        // ranks shifted, or read values changed) — re-evaluate against the
        // current snapshot, now that the latches freeze these fragments.
        // Containers compare by pointer identity: a publish always
        // installs a fresh Arc.  One store read serves the generation
        // probe, the page policy, and (only when the generation moved) the
        // fresh snapshot — this runs once per commit, so it must not clone
        // store state in the common unconflicted case.
        let (latest, page_size, fill_percent) = {
            let store = self.store.read().unwrap();
            let (page_size, fill_percent) = store.page_policy();
            let latest = if store.generation() == snap.generation() {
                snap.clone()
            } else {
                store.snapshot()
            };
            (latest, page_size, fill_percent)
        };
        let stale = snap.generation() != latest.generation()
            && scope.iter().any(|&f| !same_container(&snap, &latest, f));
        if stale {
            self.counters
                .latch_conflicts
                .fetch_add(1, Ordering::Relaxed);
            let (repul, rereads) = self.evaluate_update_pul(uplan, config, params, &latest)?;
            if repul.fragments() != frags || latch_scope(&repul.fragments(), &rereads) != scope {
                // the rewritten plan touches (or reads) different documents
                // than we latched — drop the guards and restart from scratch
                return Ok(None);
            }
            pul = repul;
        }

        // the commit ticket is the generation this commit lands on.  Taken
        // only now, with every latch held: a writer inside the publish
        // turnstile can then never wait on a latch (it owns all it needs),
        // so the turnstile cannot deadlock against the latch queues.
        let ticket = self.commit.begin();

        // durability, part 1: the WAL record must be appended *before* any
        // master mutates.  On failure the masters are untouched and the
        // ticket is abandoned (the turnstile skips it).
        let mut durable_seq = None;
        if let Some(durable) = &self.durable {
            let payload = durability::encode_update(pul.primitives());
            match durable.append(ticket, &payload) {
                Ok(seq) => durable_seq = Some(seq),
                Err(e) => {
                    self.commit.abort(ticket);
                    return Err(Error::Durability(e));
                }
            }
        }

        // phase 3: apply the PUL to each latched master — page-local
        // splices plus lockstep delta-patching of the column image, all
        // outside any store lock (readers keep running on their snapshots,
        // and writers on other documents keep committing)
        let mut applied = 0;
        let mut stats = UpdateStats::default();
        let mut publishes = Vec::with_capacity(frags.len());
        for (guard, &frag) in guards.iter_mut().zip(&scope) {
            if frags.binary_search(&frag).is_err() {
                // read-only latch: held for stability, nothing to apply
                continue;
            }
            let paged_doc = match guard.as_mut() {
                Some(doc) => doc,
                // reconstructing the master from the published snapshot is
                // O(pages) Arc clones — pages copy on first write; `latest`
                // matches the published state for every latched fragment
                // (validated above or re-evaluated)
                None => guard.insert(reconstruct_master(&latest, frag, page_size, fill_percent)),
            };
            let before = paged_doc.stats;
            applied += pul.apply_to(frag, paged_doc);
            stats.accumulate(&paged_doc.stats.delta_since(&before));

            // differential guard: the incrementally patched column image
            // must agree exactly with a from-scratch rebuild of the same
            // page state (debug builds only — this is O(document))
            #[cfg(debug_assertions)]
            paged_doc
                .columns()
                .same_content(&DocumentColumns::new(&paged_doc.to_document()))
                .expect("incremental column maintenance diverged from rebuild");

            publishes.push(Arc::new(paged_doc.snapshot()));
        }

        // durability, part 2: under group commit the record must be covered
        // by an fsync before the commit becomes visible.  On failure the
        // mutated masters diverge from the published state — clear the
        // slots so the next writer on these documents reconstructs from the
        // (unchanged) published snapshots.
        if let (Some(durable), Some(seq)) = (&self.durable, durable_seq) {
            if let Err(e) = durable.wait_durable(seq) {
                for (guard, &frag) in guards.iter_mut().zip(&scope) {
                    if frags.binary_search(&frag).is_ok() {
                        **guard = None;
                    }
                }
                self.commit.abort(ticket);
                return Err(Error::Durability(e));
            }
        }

        // phase 4: publish in ticket order — the store critical section is
        // one Arc swap per touched document plus the generation store, so
        // readers observe the update as a whole or not at all
        let published = self.commit.publish(ticket, || {
            let mut store = self.store.write().unwrap();
            for (publish, &frag) in publishes.iter().zip(&frags) {
                store.publish(frag, publish.clone())?;
            }
            store.set_generation(ticket);
            // dirty marks happen INSIDE the store write critical section
            // (lock order: store → ckpt), so a checkpoint capturing the
            // dirty set under the store read lock sees this commit's marks
            // and its published containers together or not at all
            if let Some(durable) = &self.durable {
                durable.mark_dirty(&frags);
            }
            Ok::<(), Error>(())
        });
        if let Err(e) = published {
            // unreachable in practice (latched fragments exist and are not
            // transient); restore the slot invariant all the same.  Note
            // the commit's WAL record is already durable at this point and
            // cannot be unwound (later writers' records may sit behind it)
            // — were this path ever reached, the statement's outcome would
            // be indeterminate across a crash.
            for (guard, &frag) in guards.iter_mut().zip(&scope) {
                if frags.binary_search(&frag).is_ok() {
                    **guard = None;
                }
            }
            return Err(e);
        }
        self.counters.updates.fetch_add(1, Ordering::Relaxed);
        Ok(Some(UpdateReport {
            statements: uplan.statements.len(),
            primitives: applied,
            documents_touched: frags.len(),
            stats,
        }))
    }
}

// ---------------------------------------------------------------------------
// commit helpers (latch-side, no `Database` borrow)
// ---------------------------------------------------------------------------

/// Reconstruct a fragment's write master from its published container
/// (cheap: `O(pages)` Arc clones — pages copy on first write; an evicted
/// document faults its pages back in from the checkpoint image first).
fn reconstruct_master(
    snap: &StoreSnapshot,
    frag: u32,
    page_size: usize,
    fill_percent: u8,
) -> PagedDocument {
    match snap.container_owned(frag) {
        Container::Doc(d) => PagedDocument::from_document(&d, page_size, fill_percent),
        other => {
            let p = other
                .paged_snapshot()
                .expect("loaded documents are always paged");
            PagedDocument::from_snapshot(&p, page_size, fill_percent)
        }
    }
}

/// The latch scope of a commit: the union of its write set and read set,
/// ascending and deduplicated (both inputs are sorted fragment lists).
fn latch_scope(writes: &[u32], reads: &[u32]) -> Vec<u32> {
    let mut scope: Vec<u32> = writes.iter().chain(reads).copied().collect();
    scope.sort_unstable();
    scope.dedup();
    scope
}

/// True when `frag` resolves to the same published container in both
/// snapshots.  Pointer identity suffices: every publish installs a fresh
/// `Arc`, so an equal pointer means no commit republished the fragment
/// between the two snapshots.
fn same_container(a: &StoreSnapshot, b: &StoreSnapshot, frag: u32) -> bool {
    match (a.container_owned(frag), b.container_owned(frag)) {
        (Container::Doc(x), Container::Doc(y)) => Arc::ptr_eq(&x, &y),
        (Container::Paged(x), Container::Paged(y)) => Arc::ptr_eq(&x, &y),
        (Container::Evicted(x), Container::Evicted(y)) => Arc::ptr_eq(&x, &y),
        _ => false,
    }
}

/// The checkpoint pipeline shared by [`Database::checkpoint`] and the
/// background thread.  Returns `Ok(true)` when a checkpoint was written,
/// `Ok(false)` when `skip_if_clean` found nothing to do.
///
/// Lock discipline: never holds a fragment latch, and takes the
/// checkpoint-state mutex only while already holding the store lock
/// (store → ckpt) — the same order writers use (`mark_dirty` inside the
/// store write critical section of the publish turnstile), so
/// checkpointing can neither stall commits for long nor deadlock them,
/// and the dirty set always moves atomically with the store generation.
fn run_checkpoint(
    store: &RwLock<DocStore>,
    latches: &LatchTable,
    durable: &Durable,
    counters: &Counters,
    skip_if_clean: bool,
) -> Result<bool, Error> {
    // one checkpoint at a time; writers are NOT excluded
    let _serial = durable.checkpoint_serial.lock().unwrap();

    // capture the dirty set and the snapshot ATOMICALLY with respect to
    // publishes: commits mark their fragments dirty inside the store
    // write-lock critical section, and this capture holds the store read
    // lock across both reads, so every commit is either entirely before it
    // (dirty mark and published container both visible — the images below
    // capture its effect) or entirely after it (its record is stamped past
    // the snapshot generation and survives the log rotation).  Capturing
    // the two under different locks would let a commit fall between them:
    // stale image reused AND record rotated away — an acknowledged, fsynced
    // commit silently lost on the next crash.
    let (dirty_before, images_before, snap, page_size, fill_percent) = {
        let store = store.read().unwrap();
        let mut ckpt = durable.ckpt.lock().unwrap();
        if skip_if_clean && ckpt.dirty.is_empty() {
            let wal_len = durable.wal.lock().unwrap().bytes_appended();
            if wal_len == ckpt.wal_bytes_at_checkpoint {
                return Ok(false);
            }
        }
        let (ps, fp) = store.page_policy();
        (
            std::mem::take(&mut ckpt.dirty),
            ckpt.images.clone(),
            store.snapshot(),
            ps,
            fp,
        )
    };
    let generation = snap.generation();

    // 1. page images for every named document (fragment 0 is the
    //    transient container).  Image files are immutable: a dirty or
    //    never-imaged fragment gets a fresh generation-stamped file,
    //    while a clean fragment's existing image already is exactly its
    //    current state and is referenced as-is (no write, and for an
    //    evicted document no fault-in either).  Nothing the previous
    //    catalog references is touched, so a crash anywhere in this
    //    checkpoint leaves that checkpoint fully intact and consistent
    //    with the surviving WAL.
    let mut docs = Vec::new();
    for frag in 1..snap.container_count() as u32 {
        let container = snap.container_owned(frag);
        let reuse = if dirty_before.contains(&frag) {
            None
        } else {
            images_before.get(&frag).cloned()
        };
        let file = match reuse {
            Some(file) => file,
            None => {
                let file = doc_file_name(frag, generation);
                let image = container
                    .paged_snapshot()
                    .expect("loaded documents are always paged");
                mxq_wal::write_atomic(&durable.file(&file), &encode_snapshot(&image))
                    .map_err(|e| Error::Durability(e.into()))?;
                file
            }
        };
        docs.push(CatalogDoc {
            frag,
            name: container.name().to_string(),
            file,
        });
    }

    // 2. the catalog — written atomically, this is the commit point;
    //    it names the exact image files (reused and new) just captured
    let catalog = Catalog {
        generation,
        page_size,
        fill_percent,
        docs,
    };
    mxq_wal::write_atomic(
        &durable.file(CATALOG_FILE),
        &durability::encode_catalog(&catalog),
    )
    .map_err(|e| Error::Durability(e.into()))?;

    // 3. rotate the log: records stamped at or before the snapshot
    //    generation are captured by the images (they were published — and
    //    under group commit a record is only appended durable-then-
    //    published, so nothing the images missed is dropped); records
    //    stamped later belong to commits that raced this checkpoint and
    //    are kept for the next one
    let wal_bytes = durable.rotate_wal(generation).map_err(Error::Durability)?;

    // 4. bookkeeping: fragments dirtied since the take above were
    //    re-inserted by their commits and stay dirty for the next round
    let images: HashMap<u32, String> = catalog
        .docs
        .iter()
        .map(|d| (d.frag, d.file.clone()))
        .collect();
    {
        let mut ckpt = durable.ckpt.lock().unwrap();
        ckpt.checkpoint_generation = generation;
        ckpt.images = images.clone();
        ckpt.wal_bytes_at_checkpoint = wal_bytes;
    }
    counters.checkpoints.fetch_add(1, Ordering::Relaxed);

    // now that the catalog committed, images it no longer references
    // (superseded by this checkpoint, or debris of an earlier crashed
    // one) are dead: no recovery path can need them
    durability::remove_unreferenced_images(&durable.dir, &images);

    // 5. eviction: now every clean document has a current on-disk image,
    //    so clean ones can be dropped down to the memory budget.  A held
    //    fragment latch means a writer is committing — skip, never wait.
    if let Some(budget) = durable.options.memory_budget {
        // read the dirty set while holding the store write lock (same
        // order as commits): a commit publishing between a free-standing
        // dirty read and the lock acquisition could otherwise be evicted
        // as "clean" onto its stale pre-commit image
        let mut store = store.write().unwrap();
        let dirty_now = durable.ckpt.lock().unwrap().dirty.clone();
        for frag in 1..store.container_count() as u32 {
            if store.resident_page_bytes() <= budget {
                break;
            }
            if !store.is_resident(frag) {
                continue;
            }
            if dirty_now.contains(&frag) {
                continue;
            }
            let Some(file) = images.get(&frag) else {
                continue;
            };
            // the master copy pins the pages: only evict if the latch is
            // free and its slot can be cleared right now
            if !latches.try_clear(frag) {
                continue;
            }
            let _ = store.evict_paged(frag, durable.file(file));
        }
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// update primitive collection (snapshot-side validation)
// ---------------------------------------------------------------------------

/// Turns evaluated update statements into validated [`UpdatePrimitive`]s,
/// reading node properties from the snapshot and constructed content from
/// the evaluating executor's transient container.
struct PrimitiveCollector<'a> {
    snap: &'a StoreSnapshot,
    transient: &'a Document,
}

impl PrimitiveCollector<'_> {
    fn container(&self, frag: u32) -> ContainerRef<'_> {
        if frag == TRANSIENT_FRAG {
            ContainerRef::Doc(self.transient)
        } else {
            self.snap.container(frag)
        }
    }

    /// Turn one evaluated statement into update primitives.
    fn collect(
        &self,
        kind: UpdateKind,
        targets: &[Item],
        attr: Option<&str>,
        source: &Option<Vec<Item>>,
        pul: &mut PendingUpdateList,
    ) -> Result<(), Error> {
        // attribute-addressed statements (delete/replace value/rename @name)
        if let Some(name) = attr {
            match kind {
                // `delete nodes …/@name` accepts any number of owning
                // elements (bulk attribute strip); a missing attribute is an
                // empty target and deletes nothing
                UpdateKind::Delete => {
                    for item in targets {
                        let elem = self.node_target(item, "attribute delete")?;
                        self.require_kind(elem, &[NodeKind::Element], "attribute owner")?;
                        pul.add(UpdatePrimitive::RemoveAttribute {
                            elem,
                            name: name.to_string(),
                        })?;
                    }
                }
                // `replace value of node …/@name` upserts: when the
                // attribute is missing it is created.  This is a deliberate
                // extension — the subset has no computed attribute
                // constructors, so this is its attribute-insertion form.
                UpdateKind::ReplaceValue => {
                    let elem = self.single_node(targets, "replace value of attribute")?;
                    self.require_kind(elem, &[NodeKind::Element], "attribute owner")?;
                    pul.add(UpdatePrimitive::SetAttribute {
                        elem,
                        name: name.to_string(),
                        value: self.source_string(source),
                    })?;
                }
                UpdateKind::Rename => {
                    let elem = self.single_node(targets, "rename attribute")?;
                    self.require_kind(elem, &[NodeKind::Element], "attribute owner")?;
                    // renaming a non-existent attribute is an empty target
                    if self
                        .container(elem.frag)
                        .attribute(elem.pre, name)
                        .is_none()
                    {
                        return Err(PulError::ExactlyOne {
                            what: "rename attribute",
                            got: 0,
                        }
                        .into());
                    }
                    let new_name = self.source_string(source);
                    if !pul::valid_qname(&new_name) {
                        return Err(PulError::InvalidName(new_name).into());
                    }
                    pul.add(UpdatePrimitive::RenameAttribute {
                        elem,
                        name: name.to_string(),
                        new_name,
                    })?;
                }
                _ => unreachable!("compiler rejects other attribute-target kinds"),
            }
            return Ok(());
        }

        match kind {
            UpdateKind::InsertInto { first } => {
                let parent = self.single_node(targets, "insert into")?;
                self.require_kind(
                    parent,
                    &[NodeKind::Element, NodeKind::Document],
                    "insert target",
                )?;
                let content = self.materialize_content(source.as_deref().unwrap_or(&[]));
                if !content.is_empty() {
                    pul.add(UpdatePrimitive::InsertInto {
                        parent,
                        first,
                        content,
                    })?;
                }
            }
            UpdateKind::InsertBefore | UpdateKind::InsertAfter => {
                let target = self.single_node(targets, "insert before/after")?;
                self.require_non_root(target)?;
                let content = self.materialize_content(source.as_deref().unwrap_or(&[]));
                if !content.is_empty() {
                    pul.add(if kind == UpdateKind::InsertBefore {
                        UpdatePrimitive::InsertBefore { target, content }
                    } else {
                        UpdatePrimitive::InsertAfter { target, content }
                    })?;
                }
            }
            UpdateKind::Delete => {
                for item in targets {
                    let target = self.node_target(item, "delete")?;
                    self.require_non_root(target)?;
                    pul.add(UpdatePrimitive::Delete { target })?;
                }
            }
            UpdateKind::ReplaceNode => {
                let target = self.single_node(targets, "replace node")?;
                self.require_non_root(target)?;
                let content = self.materialize_content(source.as_deref().unwrap_or(&[]));
                pul.add(UpdatePrimitive::ReplaceNode { target, content })?;
            }
            UpdateKind::ReplaceValue => {
                let target = self.single_node(targets, "replace value of node")?;
                pul.add(UpdatePrimitive::ReplaceValue {
                    target,
                    value: self.source_string(source),
                })?;
            }
            UpdateKind::Rename => {
                let target = self.single_node(targets, "rename node")?;
                self.require_kind(
                    target,
                    &[NodeKind::Element, NodeKind::ProcessingInstruction],
                    "rename target",
                )?;
                let name = self.source_string(source);
                if !pul::valid_qname(&name) {
                    return Err(PulError::InvalidName(name).into());
                }
                pul.add(UpdatePrimitive::Rename { target, name })?;
            }
        }
        Ok(())
    }

    fn node_target(&self, item: &Item, what: &'static str) -> Result<NodeId, Error> {
        let node = item.as_node().ok_or(PulError::NotANode(what))?;
        if node.frag == TRANSIENT_FRAG {
            return Err(PulError::TransientTarget.into());
        }
        Ok(node)
    }

    fn single_node(&self, targets: &[Item], what: &'static str) -> Result<NodeId, Error> {
        if targets.len() != 1 {
            return Err(PulError::ExactlyOne {
                what,
                got: targets.len(),
            }
            .into());
        }
        self.node_target(&targets[0], what)
    }

    fn require_kind(&self, node: NodeId, kinds: &[NodeKind], what: &str) -> Result<(), Error> {
        let kind = self.container(node.frag).kind(node.pre);
        if kinds.contains(&kind) {
            Ok(())
        } else {
            Err(PulError::WrongTargetKind(format!("{what} has node kind {kind:?}")).into())
        }
    }

    /// Structural updates must keep the document rooted: fragment roots
    /// (document nodes / root elements at level 0) cannot be deleted,
    /// replaced or given siblings.
    fn require_non_root(&self, node: NodeId) -> Result<(), Error> {
        if self.container(node.frag).level(node.pre) == 0 {
            return Err(PulError::TargetIsRoot.into());
        }
        Ok(())
    }

    /// Copy an evaluated content sequence into a private fragment document:
    /// node items are deep-copied (XQUF inserts copies), adjacent atomics
    /// merge into space-separated text nodes, and document nodes contribute
    /// their children.
    fn materialize_content(&self, items: &[Item]) -> Document {
        let mut b = DocumentBuilder::new("#update-content");
        let mut pending_text = String::new();
        for item in items {
            match item {
                Item::Node(n) => {
                    if !pending_text.is_empty() {
                        b.text(&pending_text);
                        pending_text.clear();
                    }
                    let src = self.container(n.frag);
                    if src.kind(n.pre) == NodeKind::Document {
                        for child in src.children(n.pre) {
                            b.copy_subtree(&src, child);
                        }
                    } else {
                        b.copy_subtree(&src, n.pre);
                    }
                }
                atomic => {
                    if !pending_text.is_empty() {
                        pending_text.push(' ');
                    }
                    pending_text.push_str(&atomic.string_value());
                }
            }
        }
        if !pending_text.is_empty() {
            b.text(&pending_text);
        }
        b.finish()
    }

    /// The string value of a source sequence (for `replace value of` and
    /// `rename`): item string values joined by single spaces.
    fn source_string(&self, source: &Option<Vec<Item>>) -> String {
        let Some(items) = source else {
            return String::new();
        };
        items
            .iter()
            .map(|i| match i {
                Item::Node(n) => self.container(n.frag).string_value(n.pre),
                atomic => atomic.string_value(),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

// ---------------------------------------------------------------------------
// sessions
// ---------------------------------------------------------------------------

/// Per-session statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries executed through this session.
    pub queries: u64,
    /// Updates executed through this session.
    pub updates: u64,
    /// Statements prepared through this session.
    pub prepares: u64,
    /// Plan-cache hits observed by this session.
    pub plan_cache_hits: u64,
    /// Plan-cache misses observed by this session.
    pub plan_cache_misses: u64,
}

/// A per-client handle on a shared [`Database`]: carries the client's
/// [`ExecConfig`] and statistics.  Sessions are cheap to create (an `Arc`
/// clone) and are *not* shared between threads — open one per client/thread;
/// the documents behind them are shared through the database.
#[derive(Debug)]
pub struct Session {
    db: Arc<Database>,
    config: ExecConfig,
    stats: SessionStats,
}

impl Session {
    /// The shared database this session talks to.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The session configuration.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// Change the session configuration (affects subsequent calls; compiled
    /// plans are cached per configuration fingerprint, so switching back and
    /// forth does not thrash the plan cache).
    pub fn set_config(&mut self, config: ExecConfig) {
        self.config = config;
    }

    /// This session's statistics.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    fn compile_cached(&mut self, text: &str) -> Result<Arc<CompiledStatement>, Error> {
        let (compiled, hit) = self.db.compile_cached(text, self.config)?;
        if hit {
            self.stats.plan_cache_hits += 1;
        } else {
            self.stats.plan_cache_misses += 1;
        }
        Ok(compiled)
    }

    /// Parse + compile a query and return its plan for inspection (e.g.
    /// `plan.explain()` or `plan.operator_count()`) without executing it.
    /// The plan is verified and simplified exactly like an executed one.
    pub fn compile(&self, query: &str) -> Result<PlanRef, Error> {
        match self.db.compile_statement(query, self.config)? {
            CompiledStatement::Query { plan, .. } => Ok(plan),
            CompiledStatement::Update { .. } => {
                Err(Error::WrongStatementKind { expected: "query" })
            }
        }
    }

    /// Compile a query and render its plan annotated with the statically
    /// inferred properties of every operator, followed by the
    /// property-driven rewrites the simplifier applied.
    pub fn explain(&self, query: &str) -> Result<String, Error> {
        match self.db.compile_statement(query, self.config)? {
            CompiledStatement::Query { plan, rewrites, .. } => {
                let analysis = crate::analysis::analyze(&plan);
                let mut out = crate::analysis::explain_annotated(&plan, &analysis);
                if rewrites.is_empty() {
                    out.push_str("-- no rewrites applied\n");
                } else {
                    out.push_str("-- rewrites:\n");
                    for r in &rewrites {
                        out.push_str(&format!("--   {r}\n"));
                    }
                }
                Ok(out)
            }
            CompiledStatement::Update { .. } => {
                Err(Error::WrongStatementKind { expected: "query" })
            }
        }
    }

    /// Parse + compile a statement once into a [`Prepared`] handle that can
    /// be executed many times (and from many threads).  External variables
    /// (`declare variable $x external;`) are bound per execution through
    /// [`Prepared::bind`].
    pub fn prepare(&mut self, text: &str) -> Result<Prepared, Error> {
        let compiled = self.compile_cached(text)?;
        self.stats.prepares += 1;
        Ok(Prepared {
            config: self.config,
            text: text.to_string(),
            compiled,
            last_generation: AtomicU64::new(self.db.generation()),
            db: self.db.clone(),
            executions: AtomicU64::new(0),
            revalidations: AtomicU64::new(0),
        })
    }

    /// Execute a statement, auto-detecting query vs. update text.  Repeated
    /// executions of the same text are served from the database plan cache.
    pub fn execute(&mut self, text: &str) -> Result<StatementResult, Error> {
        let compiled = self.compile_cached(text)?;
        let (result, _) = self
            .db
            .execute_compiled(&compiled, self.config, &Params::new())?;
        match &result {
            StatementResult::Query(_) => self.stats.queries += 1,
            StatementResult::Update(_) => self.stats.updates += 1,
        }
        Ok(result)
    }

    /// Execute a query and return its result; errors with
    /// [`Error::WrongStatementKind`] if the text is an updating statement.
    pub fn query(&mut self, text: &str) -> Result<QueryResult, Error> {
        self.query_with_report(text).map(|(r, _)| r)
    }

    /// Execute a query, also returning plan/runtime diagnostics.
    pub fn query_with_report(&mut self, text: &str) -> Result<(QueryResult, QueryReport), Error> {
        let compiled = self.compile_cached(text)?;
        if matches!(&*compiled, CompiledStatement::Update { .. }) {
            return Err(Error::WrongStatementKind { expected: "query" });
        }
        let (result, report) = self
            .db
            .execute_compiled(&compiled, self.config, &Params::new())?;
        self.stats.queries += 1;
        Ok((result.into_query()?, report))
    }

    /// Execute a query and stream the result items instead of materialising
    /// one serialized string (see [`ResultStream`]).
    pub fn execute_streaming(&mut self, text: &str) -> Result<ResultStream, Error> {
        self.query(text).map(QueryResult::into_stream)
    }

    /// Execute one or more comma-separated XQuery Update Facility
    /// statements; errors with [`Error::WrongStatementKind`] if the text is
    /// a plain query.
    ///
    /// All target and source expressions are evaluated first, against an
    /// unchanged snapshot (snapshot isolation); the collected pending update
    /// list is conflict-checked and then applied atomically, and the
    /// re-materialized documents are published under the store write lock so
    /// concurrent readers observe the update as a whole or not at all.
    pub fn execute_update(&mut self, text: &str) -> Result<UpdateReport, Error> {
        let compiled = self.compile_cached(text)?;
        let CompiledStatement::Update { plan, .. } = &*compiled else {
            return Err(Error::WrongStatementKind { expected: "update" });
        };
        let report = self.db.apply_update(plan, self.config, &Params::new())?;
        self.stats.updates += 1;
        Ok(report)
    }
}

// ---------------------------------------------------------------------------
// prepared statements
// ---------------------------------------------------------------------------

/// A statement parsed and compiled exactly once, executable many times —
/// concurrently from many threads — with per-execution external-variable
/// bindings.
///
/// ```
/// use std::sync::Arc;
/// use mxq_xquery::Database;
///
/// let db = Arc::new(Database::new());
/// db.load_document("doc.xml", "<a><v>1</v><v>2</v><v>3</v></a>").unwrap();
/// let mut session = db.session();
/// let stmt = session
///     .prepare(
///         "declare variable $min external; \
///          for $v in doc(\"doc.xml\")/a/v where $v/text() >= $min return $v/text()",
///     )
///     .unwrap();
/// let r = stmt.bind("min", 2).execute().unwrap().into_query().unwrap();
/// assert_eq!(r.len(), 2); // the <v>2</v> and <v>3</v> text nodes
/// let r = stmt.bind("min", 3).execute().unwrap().into_query().unwrap();
/// assert_eq!(r.serialize(), "3");
/// ```
#[derive(Debug)]
pub struct Prepared {
    db: Arc<Database>,
    config: ExecConfig,
    text: String,
    compiled: Arc<CompiledStatement>,
    /// The store generation observed by the most recent execution (the
    /// prepare-time generation before the first).  Every execution takes a
    /// fresh snapshot — a dormant `Prepared` never pins old document
    /// versions — and compares its generation against this to detect that
    /// an update invalidated whatever the previous execution read
    /// ([`Prepared::revalidations`]).
    last_generation: AtomicU64,
    executions: AtomicU64,
    revalidations: AtomicU64,
}

impl Prepared {
    /// The statement text this handle was prepared from.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The configuration the statement was compiled under.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// True if the statement is an XQuery Update Facility statement list.
    pub fn is_update(&self) -> bool {
        matches!(&*self.compiled, CompiledStatement::Update { .. })
    }

    /// Names of the external variables the statement declares, in
    /// declaration order.
    pub fn external_variables(&self) -> &[String] {
        self.compiled.externals()
    }

    /// Number of algebra operators in the compiled plan (queries only).
    pub fn plan_operators(&self) -> Option<usize> {
        match &*self.compiled {
            CompiledStatement::Query { operators, .. } => Some(*operators),
            CompiledStatement::Update { .. } => None,
        }
    }

    /// How many times this prepared statement has been executed.
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    /// How many times an execution observed a store generation different
    /// from the previous execution's — i.e. an update invalidated the state
    /// the statement had last read and the plan was revalidated against a
    /// fresh snapshot.
    pub fn revalidations(&self) -> u64 {
        self.revalidations.load(Ordering::Relaxed)
    }

    /// Start a binding chain: `stmt.bind("x", 42).bind("y", "s").execute()`.
    pub fn bind(&self, name: impl Into<String>, value: impl Into<Item>) -> Binder<'_> {
        let mut params = Params::new();
        params.set(name, value);
        Binder {
            prepared: self,
            params,
        }
    }

    /// Start a binding chain with a sequence-valued binding.
    pub fn bind_seq(&self, name: impl Into<String>, values: Vec<Item>) -> Binder<'_> {
        let mut params = Params::new();
        params.set_seq(name, values);
        Binder {
            prepared: self,
            params,
        }
    }

    /// Execute without bindings (all external variables must have defaults,
    /// or the statement must not declare any).
    pub fn execute(&self) -> Result<StatementResult, Error> {
        self.execute_with(&Params::new())
    }

    /// Execute with an explicit binding set.
    ///
    /// Every bound name must be declared `external` by the statement —
    /// binding an undeclared name (a typo would otherwise silently fall
    /// back to the default) is an [`ExecError::NotExternal`] error.
    pub fn execute_with(&self, params: &Params) -> Result<StatementResult, Error> {
        let externals = self.compiled.externals();
        if let Some((unknown, _)) = params
            .iter()
            .find(|(name, _)| !externals.iter().any(|e| e == name))
        {
            return Err(ExecError::NotExternal(unknown.to_string()).into());
        }
        self.executions.fetch_add(1, Ordering::Relaxed);
        match &*self.compiled {
            CompiledStatement::Query {
                plan, operators, ..
            } => {
                let snap = self.current_snapshot();
                let (result, _) =
                    self.db
                        .run_query_on(snap, plan, *operators, self.config, params)?;
                Ok(StatementResult::Query(result))
            }
            CompiledStatement::Update { plan, .. } => self
                .db
                .apply_update(plan, self.config, params)
                .map(StatementResult::Update),
        }
    }

    /// Execute with bindings and return the query result (errors for
    /// updating statements).
    pub fn query_with(&self, params: &Params) -> Result<QueryResult, Error> {
        self.execute_with(params)?.into_query()
    }

    /// A fresh snapshot for one execution, with the generation check: a
    /// stale snapshot (store mutated since the last execution) can never be
    /// read, because every execution re-resolves the store; the generation
    /// counter records that an invalidation happened.
    fn current_snapshot(&self) -> StoreSnapshot {
        let snap = self.db.snapshot();
        let prev = self
            .last_generation
            .swap(snap.generation(), Ordering::Relaxed);
        if prev != snap.generation() {
            self.revalidations.fetch_add(1, Ordering::Relaxed);
        }
        snap
    }
}

/// Accumulates external-variable bindings for one execution of a
/// [`Prepared`] statement (see [`Prepared::bind`]).
#[derive(Debug)]
pub struct Binder<'a> {
    prepared: &'a Prepared,
    params: Params,
}

impl Binder<'_> {
    /// Add another single-item binding.
    pub fn bind(mut self, name: impl Into<String>, value: impl Into<Item>) -> Self {
        self.params.set(name, value);
        self
    }

    /// Add another sequence-valued binding.
    pub fn bind_seq(mut self, name: impl Into<String>, values: Vec<Item>) -> Self {
        self.params.set_seq(name, values);
        self
    }

    /// Execute the prepared statement with the accumulated bindings.
    pub fn execute(self) -> Result<StatementResult, Error> {
        self.prepared.execute_with(&self.params)
    }

    /// Execute and unwrap the query result (errors for updating statements).
    pub fn query(self) -> Result<QueryResult, Error> {
        self.prepared.query_with(&self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with(xml: &str) -> Arc<Database> {
        let db = Arc::new(Database::new());
        db.load_document("doc.xml", xml).unwrap();
        db
    }

    #[test]
    fn database_and_prepared_are_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<Prepared>();
        assert_send_sync::<QueryResult>();
        assert_send_sync::<StoreSnapshot>();
    }

    #[test]
    fn session_executes_queries_and_updates_through_one_entry_point() {
        let db = db_with("<a><b/></a>");
        let mut s = db.session();
        let r = s.execute("count(doc(\"doc.xml\")/a/b)").unwrap();
        assert_eq!(r.as_query().unwrap().serialize(), "1");
        let r = s
            .execute("insert nodes <b/> as last into doc(\"doc.xml\")/a")
            .unwrap();
        assert!(r.is_update());
        let r = s.execute("count(doc(\"doc.xml\")/a/b)").unwrap();
        assert_eq!(r.as_query().unwrap().serialize(), "2");
        assert_eq!(s.stats().queries, 2);
        assert_eq!(s.stats().updates, 1);
    }

    #[test]
    fn plan_cache_serves_repeated_executions() {
        let db = db_with("<a><b/><b/></a>");
        let mut s = db.session();
        let q = "count(doc(\"doc.xml\")/a/b)";
        for _ in 0..5 {
            assert_eq!(s.query(q).unwrap().serialize(), "2");
        }
        let stats = db.stats();
        assert_eq!(stats.prepares, 1, "compiled once");
        assert_eq!(stats.plan_cache_hits, 4);
        assert_eq!(stats.plan_cache_misses, 1);
        assert!(stats.plan_cache_hit_rate().unwrap() > 0.7);
        // a different config fingerprint compiles separately
        let mut naive = db.session_with_config(ExecConfig::naive());
        assert_eq!(naive.query(q).unwrap().serialize(), "2");
        assert_eq!(db.stats().prepares, 2);
    }

    #[test]
    fn plan_cache_never_shared_across_execution_affecting_config() {
        // Configs differing ONLY in validate_plans or threads must not share
        // a cached plan: both change how a statement executes.
        let db = db_with("<a><b/><b/></a>");
        let q = "count(doc(\"doc.xml\")/a/b)";
        let mut base = db.session();
        assert_eq!(base.query(q).unwrap().serialize(), "2");
        let prepares_before = db.stats().prepares;
        let mut validating = db.session_with_config(ExecConfig {
            validate_plans: true,
            ..ExecConfig::default()
        });
        assert_eq!(validating.query(q).unwrap().serialize(), "2");
        assert_eq!(
            db.stats().prepares,
            prepares_before + 1,
            "validate_plans-only difference must miss the plan cache"
        );
        let mut threaded = db.session_with_config(ExecConfig {
            threads: 4,
            ..ExecConfig::default()
        });
        assert_eq!(threaded.query(q).unwrap().serialize(), "2");
        assert_eq!(
            db.stats().prepares,
            prepares_before + 2,
            "threads-only difference must miss the plan cache"
        );
        // and re-running each config hits its own cached plan
        assert_eq!(threaded.query(q).unwrap().serialize(), "2");
        assert_eq!(db.stats().prepares, prepares_before + 2);
    }

    #[test]
    fn prepared_external_variables_bind_per_execution() {
        let db = db_with("<a><v>1</v><v>2</v><v>3</v></a>");
        let mut s = db.session();
        let stmt = s
            .prepare(
                "declare variable $min external; \
                 count(for $v in doc(\"doc.xml\")/a/v where $v/text() >= $min return $v)",
            )
            .unwrap();
        assert_eq!(stmt.external_variables(), ["min"]);
        assert!(!stmt.is_update());
        let r = stmt.bind("min", 2).query().unwrap();
        assert_eq!(r.serialize(), "2");
        let r = stmt.bind("min", 99).query().unwrap();
        assert_eq!(r.serialize(), "0");
        assert_eq!(stmt.executions(), 2);
        // unbound without default is an execution-time error
        assert!(matches!(stmt.execute(), Err(Error::Exec(_))));
    }

    #[test]
    fn external_variable_defaults_apply_when_unbound() {
        let db = db_with("<a/>");
        let mut s = db.session();
        let stmt = s
            .prepare("declare variable $x external := 7; $x * 2")
            .unwrap();
        assert_eq!(
            stmt.execute().unwrap().into_query().unwrap().serialize(),
            "14"
        );
        assert_eq!(stmt.bind("x", 5).query().unwrap().serialize(), "10");
    }

    #[test]
    fn prepared_snapshot_invalidated_by_updates() {
        let db = db_with("<a><b/></a>");
        let mut s = db.session();
        let stmt = s.prepare("count(doc(\"doc.xml\")//b)").unwrap();
        assert_eq!(
            stmt.execute().unwrap().into_query().unwrap().serialize(),
            "1"
        );
        // repeated executions without intervening writes reuse the snapshot
        assert_eq!(
            stmt.execute().unwrap().into_query().unwrap().serialize(),
            "1"
        );
        assert_eq!(stmt.revalidations(), 0);
        s.execute_update("insert nodes <b/> as last into doc(\"doc.xml\")/a")
            .unwrap();
        // the generation moved: the cached snapshot is dropped, not read
        assert_eq!(
            stmt.execute().unwrap().into_query().unwrap().serialize(),
            "2"
        );
        assert_eq!(stmt.revalidations(), 1);
    }

    #[test]
    fn results_stream_and_pin_their_snapshot() {
        let db = db_with("<a><v>1</v><v>2</v></a>");
        let mut s = db.session();
        let result = s.query("doc(\"doc.xml\")/a/v").unwrap();
        // mutate after the result was produced: the result must not change
        s.execute_update("delete nodes doc(\"doc.xml\")/a/v[1]")
            .unwrap();
        let stream = result.into_stream();
        assert_eq!(stream.len(), 2);
        let rendered: Vec<String> = {
            let mut out = Vec::new();
            let mut stream = stream;
            while let Some(item) = stream.next() {
                out.push(stream.serialize_item(&item));
            }
            out
        };
        assert_eq!(rendered, ["<v>1</v>", "<v>2</v>"]);
        // streaming entry point
        let items: Vec<Item> = s
            .execute_streaming("doc(\"doc.xml\")/a/v/text()")
            .unwrap()
            .collect();
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn wrong_statement_kind_is_reported() {
        let db = db_with("<a/>");
        let mut s = db.session();
        assert!(matches!(
            s.query("delete nodes doc(\"doc.xml\")/a/b"),
            Err(Error::WrongStatementKind { expected: "query" })
        ));
        assert!(matches!(
            s.execute_update("1 + 1"),
            Err(Error::WrongStatementKind { expected: "update" })
        ));
    }

    #[test]
    fn sharded_plan_cache_counters_add_up_under_concurrent_prepares() {
        // N sessions hammer the cache with overlapping statement texts; the
        // shards must never lose a lookup: every compile_cached call is
        // exactly one hit or one miss, whatever the interleaving.
        let db = db_with("<a><b/></a>");
        let queries: Vec<String> = (1..=6)
            .map(|i| format!("count(doc(\"doc.xml\")/a/b) + {i}"))
            .collect();
        let mut lookups = 0u64;
        std::thread::scope(|scope| {
            for t in 0..4 {
                let db = &db;
                let queries = &queries;
                scope.spawn(move || {
                    let mut s = db.session();
                    for round in 0..5 {
                        let q = &queries[(t + round) % queries.len()];
                        s.query(q).unwrap();
                    }
                });
            }
        });
        lookups += 4 * 5;
        let stats = db.stats();
        assert_eq!(
            stats.plan_cache_hits + stats.plan_cache_misses,
            lookups,
            "every lookup is exactly one hit or one miss"
        );
        assert_eq!(
            stats.plan_cache_misses, stats.prepares,
            "every miss compiled exactly once"
        );
        // all six texts fit the cache, so they are all resident (across
        // whatever shards they hashed to) and a re-run is all hits
        assert_eq!(db.plan_cache.len(), queries.len());
        let mut s = db.session();
        for q in &queries {
            s.query(q).unwrap();
        }
        let after = db.stats();
        assert_eq!(after.plan_cache_hits, stats.plan_cache_hits + 6);
        assert_eq!(after.plan_cache_misses, stats.plan_cache_misses);
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let mut cache = PlanCache::new(2);
        let stmt = |t: &str| {
            Arc::new(CompiledStatement::Update {
                plan: UpdatePlan {
                    statements: Vec::new(),
                },
                externals: vec![t.to_string()],
            })
        };
        cache.insert(0, "a".into(), stmt("a"));
        cache.insert(0, "b".into(), stmt("b"));
        assert!(cache.get(0, "a").is_some()); // a is now more recent than b
        cache.insert(0, "c".into(), stmt("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(0, "b").is_none(), "b was evicted");
        assert!(cache.get(0, "a").is_some());
        assert!(cache.get(0, "c").is_some());
    }

    #[test]
    fn update_read_set_includes_documents_it_only_reads() {
        let db = db_with("<a><v>1</v></a>"); // loads doc.xml
        db.load_document("other.xml", "<b><w>2</w></b>").unwrap();
        let mut s = db.session();
        let prepared = s
            .prepare(
                "replace value of node doc(\"doc.xml\")/a/v \
                 with string(doc(\"other.xml\")/b/w)",
            )
            .unwrap();
        let CompiledStatement::Update { plan, .. } = &*prepared.compiled else {
            panic!("expected an update statement");
        };
        let snap = db.snapshot();
        let (pul, reads) = db
            .evaluate_update_pul(plan, ExecConfig::default(), &Params::new(), &snap)
            .unwrap();
        let a = db.store().lookup("doc.xml").unwrap();
        let b = db.store().lookup("other.xml").unwrap();
        assert_eq!(pul.fragments(), vec![a], "only doc.xml is written");
        assert!(
            reads.contains(&b),
            "read-only document missing from the read set: {reads:?}"
        );
        // the latch scope commits take is the sorted union of both sets
        let scope = latch_scope(&pul.fragments(), &reads);
        assert!(scope.contains(&a) && scope.contains(&b));
        assert!(scope.windows(2).all(|w| w[0] < w[1]), "scope is ascending");
    }

    #[test]
    fn failed_group_fsync_poisons_the_log_and_rolls_back_the_record() {
        let dir = std::env::temp_dir().join(format!("mxq-db-poison-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let opts = DurabilityOptions {
            sync: mxq_wal::SyncPolicy::GroupCommit(std::time::Duration::from_micros(100)),
            memory_budget: None,
            checkpoint_interval: None,
        };
        let db = Arc::new(Database::open_with(&dir, opts).unwrap());
        db.load_document("doc.xml", "<a><v>0</v></a>").unwrap();
        let mut s = db.session();
        s.execute("replace value of node doc(\"doc.xml\")/a/v with \"1\"")
            .unwrap();
        assert!(!db.stats().wal_poisoned);
        let durable = db.durable.clone().unwrap();
        let watermark = durable.wal.lock().unwrap().len();
        durable.wal.lock().unwrap().inject_sync_failures(1);

        // the leader of the failing batch gets the underlying I/O error...
        let err = s
            .execute("replace value of node doc(\"doc.xml\")/a/v with \"2\"")
            .unwrap_err();
        assert!(
            matches!(err, Error::Durability(DurabilityError::Wal(_))),
            "leader error: {err:?}"
        );
        // ...the failed record is truncated back out to the durable
        // watermark, and the log is poisoned
        assert_eq!(durable.wal.lock().unwrap().len(), watermark);
        assert!(db.stats().wal_poisoned);

        // every later durable commit fails closed with Poisoned
        let err = s
            .execute("replace value of node doc(\"doc.xml\")/a/v with \"3\"")
            .unwrap_err();
        assert!(
            matches!(err, Error::Durability(DurabilityError::Poisoned)),
            "post-poison error: {err:?}"
        );
        assert_eq!(durable.wal.lock().unwrap().len(), watermark);

        // failed updates were never published: reads still see "1"
        let r = s.execute("string(doc(\"doc.xml\")/a/v)").unwrap();
        assert_eq!(r.as_query().unwrap().serialize(), "1");

        drop(s);
        drop(durable);
        drop(db);

        // reopen: only the acknowledged commit replays, the log is clean
        // again, and commits work
        let db = Arc::new(Database::open_with(&dir, opts).unwrap());
        assert!(!db.stats().wal_poisoned);
        let mut s = db.session();
        let r = s.execute("string(doc(\"doc.xml\")/a/v)").unwrap();
        assert_eq!(r.as_query().unwrap().serialize(), "1");
        s.execute("replace value of node doc(\"doc.xml\")/a/v with \"4\"")
            .unwrap();
        let r = s.execute("string(doc(\"doc.xml\")/a/v)").unwrap();
        assert_eq!(r.as_query().unwrap().serialize(), "4");
        drop(s);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
