//! The server-style public API: a shared [`Database`], cheap per-client
//! [`Session`] handles and compile-once/execute-many [`Prepared`] statements.
//!
//! MonetDB/XQuery is a *server*: one shredded store serves many concurrent
//! clients, and loop-lifted plans are compiled once and reused (paper
//! Sections 2 and 6).  This module reproduces that shape:
//!
//! * [`Database`] owns the documents behind a `RwLock` (single-writer,
//!   many-reader), an LRU **plan cache** keyed by (statement text,
//!   configuration fingerprint), and the paged update state.  It is
//!   `Send + Sync` and meant to be shared via `Arc`.
//! * [`Session`] is a cheap handle created by [`Database::session`]: it
//!   carries the per-client [`ExecConfig`] and statistics.  Statements go
//!   through [`Session::execute`], which auto-detects query vs. update text.
//! * [`Prepared`] is produced by [`Session::prepare`]: the text is parsed
//!   and compiled exactly once (external variables declared with
//!   `declare variable $x external;` stay symbolic) and can then be executed
//!   many times — concurrently from many threads — with values supplied
//!   through the [`Params`] binder (`prepared.bind("x", 42).execute()`).
//!
//! Every query execution pins an immutable [`StoreSnapshot`], so readers
//! never block each other and a writer can never pull document data out
//! from under a running query or an already produced [`QueryResult`].

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, RwLockReadGuard};

use mxq_engine::{Item, NodeId};
use mxq_wal::WalWriter;
use mxq_xmldb::disk::encode_snapshot;
use mxq_xmldb::{
    decode_snapshot, shred, Container, ContainerRef, DocStore, Document, DocumentBuilder,
    DocumentColumns, NodeKind, NodeRead, PagedDocument, ShredOptions, StoreSnapshot, UpdateStats,
    TRANSIENT_FRAG,
};

use crate::algebra::PlanRef;
use crate::ast::Statement;
use crate::compile::Compiler;
use crate::config::{ExecConfig, ExecStats};
use crate::durability::{
    self, decode_op, doc_file_name, Catalog, CatalogDoc, DurabilityError, DurabilityOptions,
    Durable, DurableState, WalOp, CATALOG_FILE, WAL_FILE,
};
use crate::exec::{serialize_item_snapshot, serialize_items_snapshot, ExecError, Executor};
use crate::params::Params;
use crate::parser::parse_statement;
use crate::pul::{self, PendingUpdateList, PulError, UpdateKind, UpdatePlan, UpdatePrimitive};
use crate::Error;

// ---------------------------------------------------------------------------
// results
// ---------------------------------------------------------------------------

/// The result of a query: the item sequence, pinned to the store snapshot
/// and the private transient container it was produced against.
///
/// Serialization is lazy: [`QueryResult::serialize`] renders the whole
/// sequence to one string on first use, while [`QueryResult::into_iter`]
/// streams the items without ever building that string.
#[derive(Debug, Clone)]
pub struct QueryResult {
    items: Vec<Item>,
    snap: StoreSnapshot,
    transient: Arc<Document>,
    serialized: OnceLock<String>,
}

impl QueryResult {
    pub(crate) fn new(items: Vec<Item>, snap: StoreSnapshot, transient: Document) -> Self {
        QueryResult {
            items,
            snap,
            transient: Arc::new(transient),
            serialized: OnceLock::new(),
        }
    }

    /// The result items in sequence order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items in the result sequence.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the result is the empty sequence.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// XML/text serialization of the result sequence, rendered lazily on
    /// first call and cached.
    pub fn serialize(&self) -> &str {
        self.serialized
            .get_or_init(|| serialize_items_snapshot(&self.snap, &self.transient, &self.items))
    }

    /// Serialize a single item of this result (nodes as XML, atomics as
    /// their string value) without materialising the full result string.
    pub fn serialize_item(&self, item: &Item) -> String {
        serialize_item_snapshot(&self.snap, &self.transient, item)
    }

    /// Iterate over the items without consuming the result.
    pub fn iter(&self) -> std::slice::Iter<'_, Item> {
        self.items.iter()
    }

    /// Turn the result into a [`ResultStream`] that yields the items one by
    /// one — the path for large sequences that should not be serialized to
    /// one `String`.
    pub fn into_stream(self) -> ResultStream {
        ResultStream {
            iter: self.items.into_iter(),
            snap: self.snap,
            transient: self.transient,
        }
    }
}

impl IntoIterator for QueryResult {
    type Item = Item;
    type IntoIter = ResultStream;

    fn into_iter(self) -> ResultStream {
        self.into_stream()
    }
}

impl<'a> IntoIterator for &'a QueryResult {
    type Item = &'a Item;
    type IntoIter = std::slice::Iter<'a, Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// A streaming view of a query result: an iterator over the items that
/// still pins the snapshot/transient containers, so node items can be
/// serialized individually while streaming.
#[derive(Debug)]
pub struct ResultStream {
    iter: std::vec::IntoIter<Item>,
    snap: StoreSnapshot,
    transient: Arc<Document>,
}

impl ResultStream {
    /// Serialize one item (typically one just yielded by the iterator).
    pub fn serialize_item(&self, item: &Item) -> String {
        serialize_item_snapshot(&self.snap, &self.transient, item)
    }
}

impl Iterator for ResultStream {
    type Item = Item;

    fn next(&mut self) -> Option<Item> {
        self.iter.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

impl ExactSizeIterator for ResultStream {}

/// Diagnostics of one query execution: plan size and runtime counters.
#[derive(Debug, Clone, Default)]
pub struct QueryReport {
    /// Number of algebra operators in the compiled plan (the paper reports an
    /// average of 86 for XMark).
    pub plan_operators: usize,
    /// Runtime statistics.
    pub stats: ExecStats,
}

/// Diagnostics of one update execution.
#[derive(Debug, Clone, Default)]
pub struct UpdateReport {
    /// Number of updating statements in the executed text.
    pub statements: usize,
    /// Number of update primitives applied (after delete deduplication).
    pub primitives: usize,
    /// Number of distinct documents mutated.
    pub documents_touched: usize,
    /// Storage-level cost counters accumulated over the touched documents.
    pub stats: UpdateStats,
}

/// The outcome of [`Session::execute`] / [`Prepared::execute`]: a query
/// result or an update report, depending on what the statement text was.
#[derive(Debug)]
pub enum StatementResult {
    /// The statement was a query.
    Query(QueryResult),
    /// The statement was an XQuery Update Facility statement list.
    Update(UpdateReport),
}

impl StatementResult {
    /// True if the statement was an update.
    pub fn is_update(&self) -> bool {
        matches!(self, StatementResult::Update(_))
    }

    /// The query result, if the statement was a query.
    pub fn as_query(&self) -> Option<&QueryResult> {
        match self {
            StatementResult::Query(r) => Some(r),
            StatementResult::Update(_) => None,
        }
    }

    /// The update report, if the statement was an update.
    pub fn as_update(&self) -> Option<&UpdateReport> {
        match self {
            StatementResult::Update(r) => Some(r),
            StatementResult::Query(_) => None,
        }
    }

    /// Unwrap into a query result; errors if the statement was an update.
    pub fn into_query(self) -> Result<QueryResult, Error> {
        match self {
            StatementResult::Query(r) => Ok(r),
            StatementResult::Update(_) => Err(Error::WrongStatementKind { expected: "query" }),
        }
    }

    /// Unwrap into an update report; errors if the statement was a query.
    pub fn into_update(self) -> Result<UpdateReport, Error> {
        match self {
            StatementResult::Update(r) => Ok(r),
            StatementResult::Query(_) => Err(Error::WrongStatementKind { expected: "update" }),
        }
    }
}

// ---------------------------------------------------------------------------
// compiled statements and the plan cache
// ---------------------------------------------------------------------------

/// A parsed + compiled statement, shareable across sessions and threads.
#[derive(Debug)]
pub(crate) enum CompiledStatement {
    /// A compiled query plan.
    Query {
        plan: PlanRef,
        operators: usize,
        externals: Vec<String>,
        /// Property-driven rewrites the simplifier applied at compile time.
        rewrites: Vec<crate::analysis::Rewrite>,
    },
    /// A compiled update plan.
    Update {
        plan: UpdatePlan,
        externals: Vec<String>,
    },
}

impl CompiledStatement {
    fn externals(&self) -> &[String] {
        match self {
            CompiledStatement::Query { externals, .. } => externals,
            CompiledStatement::Update { externals, .. } => externals,
        }
    }
}

/// LRU cache of compiled statements keyed by (config fingerprint, text).
struct PlanCache {
    capacity: usize,
    tick: u64,
    len: usize,
    /// Config fingerprint → statement text → (compiled, last-used tick).
    /// The nesting exists so hot-path lookups can borrow the text (`&str`)
    /// instead of allocating an owned key per call.
    map: HashMap<u64, HashMap<String, (Arc<CompiledStatement>, u64)>>,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            tick: 0,
            len: 0,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, fp: u64, text: &str) -> Option<Arc<CompiledStatement>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&fp)?.get_mut(text).map(|entry| {
            entry.1 = tick;
            entry.0.clone()
        })
    }

    fn insert(&mut self, fp: u64, text: String, stmt: Arc<CompiledStatement>) {
        let exists = self
            .map
            .get(&fp)
            .is_some_and(|inner| inner.contains_key(&text));
        if !exists && self.len >= self.capacity {
            // evict the least recently used entry (linear scan: the cache is
            // small and eviction is rare compared to hits)
            let victim = self
                .map
                .iter()
                .flat_map(|(fp, inner)| inner.iter().map(move |(t, (_, tick))| (*tick, *fp, t)))
                .min()
                .map(|(_, fp, t)| (fp, t.clone()));
            if let Some((vfp, vtext)) = victim {
                if let Some(inner) = self.map.get_mut(&vfp) {
                    if inner.remove(&vtext).is_some() {
                        self.len -= 1;
                    }
                }
            }
        }
        self.tick += 1;
        if self
            .map
            .entry(fp)
            .or_default()
            .insert(text, (stmt, self.tick))
            .is_none()
        {
            self.len += 1;
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

// ---------------------------------------------------------------------------
// the database
// ---------------------------------------------------------------------------

/// Paged (updatable) document state plus the page policy — the
/// single-writer side of the database, serialized by one mutex.
struct WriterState {
    /// The mutable master per updated fragment.  The master shares its
    /// pages and column image with the published snapshot via `Arc`
    /// (copy-on-write per touched page), so keeping it around costs no
    /// duplicate storage; a fragment not present here is reconstructed
    /// from the published snapshot on its first update (cheap `Arc`
    /// clones).  The page policy itself lives in the [`DocStore`] — the
    /// single source for loads and master reconstruction alike.
    paged: HashMap<u32, PagedDocument>,
}

/// Counters over the whole database (all sessions).
#[derive(Debug, Default)]
struct Counters {
    /// Statements actually parsed + compiled (plan-cache misses and
    /// uncached compiles).
    prepares: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    queries: AtomicU64,
    updates: AtomicU64,
    wal_bytes_written: AtomicU64,
    wal_fsyncs: AtomicU64,
    checkpoints: AtomicU64,
    recovery_replays: AtomicU64,
}

/// A point-in-time copy of the database counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DatabaseStats {
    /// Statements parsed + compiled since the database was created.  Stays
    /// flat while executions are served from the plan cache or a
    /// [`Prepared`] statement.
    pub prepares: u64,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses.
    pub plan_cache_misses: u64,
    /// Queries executed (all sessions and prepared statements).
    pub queries: u64,
    /// Updates executed.
    pub updates: u64,
    /// Bytes appended to the write-ahead log (record headers included).
    /// Stays 0 for an in-memory database.
    pub wal_bytes_written: u64,
    /// `fsync` calls issued by the write-ahead log (appends under the
    /// configured [`SyncPolicy`](crate::SyncPolicy) plus checkpoint
    /// truncations).
    pub wal_fsyncs: u64,
    /// Checkpoints taken ([`Database::checkpoint`]).
    pub checkpoints: u64,
    /// WAL records replayed by crash recovery when this database was
    /// opened ([`Database::open`]); 0 after a clean shutdown.
    pub recovery_replays: u64,
    /// Compiled statements currently cached.
    pub plan_cache_len: usize,
}

impl DatabaseStats {
    /// Plan-cache hit rate in `[0, 1]`; `None` before the first lookup.
    pub fn plan_cache_hit_rate(&self) -> Option<f64> {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        (total > 0).then(|| self.plan_cache_hits as f64 / total as f64)
    }
}

/// Read guard over the shared document store (see [`Database::store`]).
/// Dereferences to [`DocStore`]; holding it blocks writers, so keep it
/// short-lived.
pub struct StoreReadGuard<'a>(RwLockReadGuard<'a, DocStore>);

impl std::ops::Deref for StoreReadGuard<'_> {
    type Target = DocStore;

    fn deref(&self) -> &DocStore {
        &self.0
    }
}

/// A shared XQuery database: the document store, the plan cache and the
/// update substrate, safe to share across threads via `Arc`.
///
/// ```
/// use std::sync::Arc;
/// use mxq_xquery::Database;
///
/// let db = Arc::new(Database::new());
/// db.load_document("books.xml", "<books><book>DB</book></books>").unwrap();
/// let mut session = db.session();
/// let result = session.query("doc(\"books.xml\")/books/book/text()").unwrap();
/// assert_eq!(result.serialize(), "DB");
/// ```
pub struct Database {
    store: RwLock<DocStore>,
    writer: Mutex<WriterState>,
    plan_cache: Mutex<PlanCache>,
    counters: Counters,
    /// Durability attachment: present when the database was opened on a
    /// directory ([`Database::open`]); `None` for an in-memory database.
    durable: Option<Durable>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("generation", &self.generation())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

/// Number of compiled statements the plan cache retains.
const PLAN_CACHE_CAPACITY: usize = 256;

impl Database {
    /// An empty in-memory database (no durability: nothing is written to
    /// disk, and dropping the database loses all documents).
    pub fn new() -> Self {
        Database {
            store: RwLock::new(DocStore::new()),
            writer: Mutex::new(WriterState {
                paged: HashMap::new(),
            }),
            plan_cache: Mutex::new(PlanCache::new(PLAN_CACHE_CAPACITY)),
            counters: Counters::default(),
            durable: None,
        }
    }

    /// Open (or create) a durable database rooted at `dir` with default
    /// [`DurabilityOptions`] (fsync on every WAL append, no eviction).
    ///
    /// If the directory holds an earlier database, its state is recovered:
    /// the last checkpoint's page images are loaded and the write-ahead
    /// log's complete records are replayed, which lands the store exactly on
    /// the last published generation.  A torn or corrupt log tail (a crash
    /// mid-append) is detected by checksum, discarded and truncated — the
    /// update it belonged to was never acknowledged, because
    /// update application syncs the log *before* it publishes.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, Error> {
        Self::open_with(dir, DurabilityOptions::default())
    }

    /// [`Database::open`] with explicit durability options.
    pub fn open_with(dir: impl AsRef<Path>, options: DurabilityOptions) -> Result<Self, Error> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| Error::Durability(e.into()))?;
        // debris from a crashed write_atomic: a temp file is meaningless
        // outside the write that created it
        durability::remove_stale_tmp_files(&dir);

        let db = Database::new();
        let mut replays: u64 = 0;
        let mut dirty = HashSet::new();

        // 1. last checkpoint: page images + the generation they capture
        let catalog = durability::read_catalog(&dir).map_err(Error::Durability)?;
        let checkpoint_generation = catalog.as_ref().map_or(0, |c| c.generation);
        let mut images: HashMap<u32, String> = HashMap::new();
        if let Some(cat) = &catalog {
            let mut store = db.store.write().unwrap();
            store.set_page_policy(cat.page_size, cat.fill_percent);
            for doc in &cat.docs {
                let bytes = std::fs::read(dir.join(&doc.file)).map_err(|e| {
                    Error::Durability(DurabilityError::Corrupt(format!(
                        "checkpoint image `{}` for document `{}` unreadable: {e}",
                        doc.file, doc.name
                    )))
                })?;
                let snap = decode_snapshot(&bytes).map_err(|e| Error::Durability(e.into()))?;
                let frag = store.add_paged(&doc.name, Arc::new(snap));
                if frag != doc.frag {
                    return Err(Error::Durability(DurabilityError::Corrupt(format!(
                        "catalog names fragment {} for `{}` but the store assigned {frag}",
                        doc.frag, doc.name
                    ))));
                }
                images.insert(doc.frag, doc.file.clone());
            }
            store.set_generation(cat.generation);
        }
        // image files the committed catalog does not reference were written
        // by a checkpoint that crashed before its commit point; the WAL
        // replay below re-derives whatever state they captured
        durability::remove_unreferenced_images(&dir, &images);

        // 2. replay the WAL's complete records past the checkpoint;
        //    WalWriter::open truncates any torn/corrupt tail
        let (wal, scan) = WalWriter::open(&dir.join(WAL_FILE), options.sync)
            .map_err(|e| Error::Durability(e.into()))?;
        for record in &scan.records {
            if record.generation <= checkpoint_generation {
                // logged before the checkpoint that survived it — a crash
                // between catalog commit and log truncation leaves these
                continue;
            }
            let op = decode_op(&record.payload).map_err(Error::Durability)?;
            db.replay(op, record.generation, &mut dirty)?;
            replays += 1;
        }

        db.counters
            .recovery_replays
            .store(replays, Ordering::Relaxed);
        Ok(Database {
            durable: Some(Durable {
                dir,
                options,
                state: Mutex::new(DurableState {
                    wal,
                    checkpoint_generation,
                    dirty,
                    images,
                }),
            }),
            ..db
        })
    }

    /// Apply one recovered WAL operation and land the store on the
    /// generation its record was stamped with.  Fragments the operation
    /// created or mutated are added to `touched`: their on-disk images (if
    /// any) predate the operation, so the next checkpoint must rewrite them.
    fn replay(&self, op: WalOp, generation: u64, touched: &mut HashSet<u32>) -> Result<(), Error> {
        match op {
            WalOp::LoadXml { name, xml } => {
                let mut store = self.store.write().unwrap();
                touched.insert(store.load_xml(&name, &xml)?);
                store.set_generation(generation);
            }
            WalOp::LoadDoc { doc } => {
                let mut store = self.store.write().unwrap();
                touched.insert(store.add_document(*doc));
                store.set_generation(generation);
            }
            WalOp::Update { primitives } => {
                let mut pul = PendingUpdateList::new();
                for prim in primitives {
                    pul.add(prim).map_err(|e| {
                        Error::Durability(DurabilityError::Corrupt(format!(
                            "recovered update no longer applies: {e}"
                        )))
                    })?;
                }
                let snap = self.snapshot();
                let (page_size, fill_percent) = self.store.read().unwrap().page_policy();
                let mut writer = self.writer.lock().unwrap();
                let frags = pul.fragments();
                for &frag in &frags {
                    let paged_doc = writer.paged.entry(frag).or_insert_with(|| {
                        match snap.container_owned(frag) {
                            Container::Doc(d) => {
                                PagedDocument::from_document(&d, page_size, fill_percent)
                            }
                            other => {
                                let p = other
                                    .paged_snapshot()
                                    .expect("loaded documents are always paged");
                                PagedDocument::from_snapshot(&p, page_size, fill_percent)
                            }
                        }
                    });
                    pul.apply_to(frag, paged_doc);
                }
                let mut store = self.store.write().unwrap();
                for &frag in &frags {
                    store.publish(frag, Arc::new(writer.paged[&frag].snapshot()))?;
                }
                store.set_generation(generation);
                touched.extend(frags);
            }
        }
        Ok(())
    }

    /// Write a checkpoint: a fresh generation-stamped page image for every
    /// document changed since the last checkpoint (unchanged documents keep
    /// their existing image files — checkpoint I/O is proportional to what
    /// changed, not to the database size), then the catalog (the atomic
    /// commit point, naming the exact image files), then truncate the
    /// write-ahead log and delete superseded images.  After a checkpoint,
    /// recovery starts from the images instead of replaying the whole log.
    /// No-op (returning `Ok`) on an in-memory database.
    ///
    /// If a memory budget is configured, clean documents are evicted after
    /// the checkpoint until the resident page bytes fit the budget.
    pub fn checkpoint(&self) -> Result<(), Error> {
        let Some(durable) = &self.durable else {
            return Ok(());
        };
        let mut writer = self.writer.lock().unwrap();
        let (snap, page_size, fill_percent) = {
            let store = self.store.read().unwrap();
            let (ps, fp) = store.page_policy();
            (store.snapshot(), ps, fp)
        };
        let mut state = durable.state.lock().unwrap();
        let generation = snap.generation();

        // 1. page images for every named document (fragment 0 is the
        //    transient container).  Image files are immutable: a dirty or
        //    never-imaged fragment gets a fresh generation-stamped file,
        //    while a clean fragment's existing image already is exactly its
        //    current state and is referenced as-is (no write, and for an
        //    evicted document no fault-in either).  Nothing the previous
        //    catalog references is touched, so a crash anywhere in this
        //    checkpoint leaves that checkpoint fully intact and consistent
        //    with the surviving WAL.
        let mut docs = Vec::new();
        for frag in 1..snap.container_count() as u32 {
            let container = snap.container_owned(frag);
            let reuse = if state.dirty.contains(&frag) {
                None
            } else {
                state.images.get(&frag).cloned()
            };
            let file = match reuse {
                Some(file) => file,
                None => {
                    let file = doc_file_name(frag, generation);
                    let image = container
                        .paged_snapshot()
                        .expect("loaded documents are always paged");
                    mxq_wal::write_atomic(&durable.file(&file), &encode_snapshot(&image))
                        .map_err(|e| Error::Durability(e.into()))?;
                    file
                }
            };
            docs.push(CatalogDoc {
                frag,
                name: container.name().to_string(),
                file,
            });
        }

        // 2. the catalog — written atomically, this is the commit point;
        //    it names the exact image files (reused and new) just captured
        let catalog = Catalog {
            generation,
            page_size,
            fill_percent,
            docs,
        };
        mxq_wal::write_atomic(
            &durable.file(CATALOG_FILE),
            &durability::encode_catalog(&catalog),
        )
        .map_err(|e| Error::Durability(e.into()))?;

        // 3. drop the log: everything it held is captured by the images.
        //    A crash before this point is safe — the surviving records
        //    carry generations ≤ the catalog's and are skipped on replay.
        state
            .wal
            .truncate()
            .map_err(|e| Error::Durability(e.into()))?;
        state.checkpoint_generation = generation;
        state.dirty.clear();
        state.images = catalog
            .docs
            .iter()
            .map(|d| (d.frag, d.file.clone()))
            .collect();
        self.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.note_wal(&state);

        // now that the catalog committed, images it no longer references
        // (superseded by this checkpoint, or debris of an earlier crashed
        // one) are dead: no recovery path can need them
        durability::remove_unreferenced_images(&durable.dir, &state.images);

        // 4. eviction: now every document has a current on-disk image, so
        //    clean ones can be dropped down to the memory budget
        if let Some(budget) = durable.options.memory_budget {
            let mut store = self.store.write().unwrap();
            for frag in 1..store.container_count() as u32 {
                if store.resident_page_bytes() <= budget {
                    break;
                }
                if !store.is_resident(frag) {
                    continue;
                }
                let Some(file) = state.images.get(&frag) else {
                    continue;
                };
                if store.evict_paged(frag, durable.file(file)).is_ok() {
                    // the master copy pins the pages; recovery of the
                    // master from the disk image happens on next update
                    writer.paged.remove(&frag);
                }
            }
        }
        Ok(())
    }

    /// The durability directory, or `None` for an in-memory database.
    pub fn durability_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir.as_path())
    }

    /// The durability options in effect, or `None` for an in-memory
    /// database.
    pub fn durability_options(&self) -> Option<DurabilityOptions> {
        self.durable.as_ref().map(|d| d.options)
    }

    /// Mirror the WAL writer's cumulative counters into the database stats.
    fn note_wal(&self, state: &DurableState) {
        self.counters
            .wal_bytes_written
            .store(state.wal.bytes_appended(), Ordering::Relaxed);
        self.counters
            .wal_fsyncs
            .store(state.wal.syncs(), Ordering::Relaxed);
    }

    /// Open a session: a cheap per-client handle with its own configuration
    /// and statistics.
    pub fn session(self: &Arc<Self>) -> Session {
        self.session_with_config(ExecConfig::default())
    }

    /// Open a session with an explicit configuration.
    pub fn session_with_config(self: &Arc<Self>, config: ExecConfig) -> Session {
        Session {
            db: self.clone(),
            config,
            stats: SessionStats::default(),
        }
    }

    /// Shred and load an XML document under the given name (the name is what
    /// `fn:doc("name")` refers to).  On a durable database the load is
    /// WAL-logged (and synced per the policy) before it is published, like
    /// any update.
    pub fn load_document(&self, name: &str, xml: &str) -> Result<(), Error> {
        let _writer = self.writer.lock().unwrap();
        // shred exactly once: an invalid document is rejected before it is
        // logged (recovery must never trip over a failed operation), and
        // the shredded result is what the store pages — the text is not
        // parsed a second time
        let opts = ShredOptions {
            document_node: true,
            ..ShredOptions::default()
        };
        let doc = shred(name, xml, &opts)?;
        self.log_durable(|gen| (gen + 1, durability::encode_load_xml(name, xml)))?;
        let frag = self.store.write().unwrap().add_document(doc);
        self.mark_dirty(frag);
        Ok(())
    }

    /// Load an already shredded document.  WAL-logged on a durable database
    /// (the document travels as an encoded image).
    pub fn load_shredded(&self, doc: Document) -> Result<(), Error> {
        let _writer = self.writer.lock().unwrap();
        self.log_durable(|gen| (gen + 1, durability::encode_load_doc(&doc)))?;
        let frag = self.store.write().unwrap().add_document(doc);
        self.mark_dirty(frag);
        Ok(())
    }

    /// Record that a fragment's published state moved past the last
    /// checkpoint, so the next checkpoint must write it a fresh image (and
    /// must not evict it before then).  No-op on an in-memory database.
    fn mark_dirty(&self, frag: u32) {
        if let Some(durable) = &self.durable {
            durable.state.lock().unwrap().dirty.insert(frag);
        }
    }

    /// Append one operation to the WAL (no-op on an in-memory database).
    /// The closure receives the current published generation and returns
    /// the stamp the operation's publish will land on plus the payload.
    /// Callers hold the writer mutex, so the generation cannot move between
    /// the stamp computation and the publish.
    fn log_durable(&self, op: impl FnOnce(u64) -> (u64, Vec<u8>)) -> Result<(), Error> {
        let Some(durable) = &self.durable else {
            return Ok(());
        };
        let (stamp, payload) = op(self.store.read().unwrap().generation());
        let mut state = durable.state.lock().unwrap();
        state
            .wal
            .append(stamp, &payload)
            .map_err(|e| Error::Durability(e.into()))?;
        self.note_wal(&state);
        Ok(())
    }

    /// Read access to the shared document store.  The guard blocks writers
    /// while held — prefer [`Database::snapshot`] for anything longer than a
    /// lookup.
    pub fn store(&self) -> StoreReadGuard<'_> {
        StoreReadGuard(self.store.read().unwrap())
    }

    /// An immutable snapshot of all loaded documents (cheap: clones `Arc`s).
    pub fn snapshot(&self) -> StoreSnapshot {
        self.store.read().unwrap().snapshot()
    }

    /// The current store generation (see [`DocStore::generation`]).
    pub fn generation(&self) -> u64 {
        self.store.read().unwrap().generation()
    }

    /// Point-in-time copy of the database counters.
    pub fn stats(&self) -> DatabaseStats {
        DatabaseStats {
            prepares: self.counters.prepares.load(Ordering::Relaxed),
            plan_cache_hits: self.counters.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.counters.plan_cache_misses.load(Ordering::Relaxed),
            queries: self.counters.queries.load(Ordering::Relaxed),
            updates: self.counters.updates.load(Ordering::Relaxed),
            wal_bytes_written: self.counters.wal_bytes_written.load(Ordering::Relaxed),
            wal_fsyncs: self.counters.wal_fsyncs.load(Ordering::Relaxed),
            checkpoints: self.counters.checkpoints.load(Ordering::Relaxed),
            recovery_replays: self.counters.recovery_replays.load(Ordering::Relaxed),
            plan_cache_len: self.plan_cache.lock().unwrap().len(),
        }
    }

    /// Tune the paged update scheme (logical page size in tuples, fill
    /// factor in percent).  Affects documents loaded or first paged after
    /// the call.
    ///
    /// # Panics
    /// Panics unless `page_size` is a power of two ≥ 2 and
    /// `fill_percent ∈ (0, 100]`.
    pub fn set_page_policy(&self, page_size: usize, fill_percent: u8) {
        // hold the writer mutex across the store update so a concurrent
        // update never reconstructs a master under a half-applied policy
        let _writer = self.writer.lock().unwrap();
        self.store
            .write()
            .unwrap()
            .set_page_policy(page_size, fill_percent);
    }

    /// The relational export ([`DocumentColumns`]) of a loaded document.
    /// Since the paged store became the source of truth this is no cache:
    /// the returned image is the one the store itself maintains
    /// incrementally — updates delta-patch it, so the handle is always
    /// current as of the call.  Returns `None` for unknown names.
    pub fn document_columns(&self, name: &str) -> Option<Arc<DocumentColumns>> {
        let store = self.store.read().unwrap();
        let frag = store.lookup(name)?;
        let snap = store
            .container_owned(frag)
            .paged_snapshot()
            .expect("loaded documents are always paged");
        Some(snap.columns_arc())
    }

    /// Execute a statement with the default configuration and no bindings —
    /// the convenience path; repeated calls with the same text are served
    /// from the plan cache.
    pub fn execute(&self, text: &str) -> Result<StatementResult, Error> {
        let (compiled, _) = self.compile_cached(text, ExecConfig::default())?;
        self.execute_compiled(&compiled, ExecConfig::default(), &Params::new())
            .map(|(result, _)| result)
    }

    // -- internals ---------------------------------------------------------

    /// Look up (or parse + compile + insert) the compiled form of a
    /// statement text under a configuration.  Returns the compiled statement
    /// and whether it was a cache hit.
    pub(crate) fn compile_cached(
        &self,
        text: &str,
        config: ExecConfig,
    ) -> Result<(Arc<CompiledStatement>, bool), Error> {
        let fp = config.fingerprint();
        if let Some(hit) = self.plan_cache.lock().unwrap().get(fp, text) {
            self.counters
                .plan_cache_hits
                .fetch_add(1, Ordering::Relaxed);
            return Ok((hit, true));
        }
        self.counters
            .plan_cache_misses
            .fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(self.compile_statement(text, config)?);
        self.plan_cache
            .lock()
            .unwrap()
            .insert(fp, text.to_string(), compiled.clone());
        Ok((compiled, false))
    }

    /// Parse + compile a statement (no cache).
    pub(crate) fn compile_statement(
        &self,
        text: &str,
        config: ExecConfig,
    ) -> Result<CompiledStatement, Error> {
        self.counters.prepares.fetch_add(1, Ordering::Relaxed);
        let mut compiler = Compiler::new(config);
        match parse_statement(text)? {
            Statement::Query(q) => {
                let plan = compiler.compile_query(&q)?;
                // static analysis: verify the compiled plan's structural
                // invariants, then let the inferred properties remove
                // provably redundant operators and strengthen order
                // annotations; the rewritten plan is verified again
                let analysis = crate::analysis::analyze(&plan);
                crate::analysis::verify(&plan, &analysis)?;
                let simplified = crate::analysis::simplify(&plan, &analysis);
                let plan = simplified.plan;
                let analysis = crate::analysis::analyze(&plan);
                crate::analysis::verify(&plan, &analysis)?;
                let operators = plan.operator_count();
                Ok(CompiledStatement::Query {
                    plan,
                    operators,
                    externals: compiler.external_variables().to_vec(),
                    rewrites: simplified.rewrites,
                })
            }
            Statement::Update(u) => {
                let plan = compiler.compile_update(&u)?;
                let mut analysis = crate::analysis::Analysis::default();
                for root in plan.roots() {
                    analysis.extend_with(root);
                }
                for root in plan.roots() {
                    crate::analysis::verify(root, &analysis)?;
                }
                Ok(CompiledStatement::Update {
                    plan,
                    externals: compiler.external_variables().to_vec(),
                })
            }
        }
    }

    /// Execute a compiled statement against the current store state.
    pub(crate) fn execute_compiled(
        &self,
        stmt: &CompiledStatement,
        config: ExecConfig,
        params: &Params,
    ) -> Result<(StatementResult, QueryReport), Error> {
        match stmt {
            CompiledStatement::Query {
                plan, operators, ..
            } => {
                let snap = self.snapshot();
                let (result, report) = self.run_query_on(snap, plan, *operators, config, params)?;
                Ok((StatementResult::Query(result), report))
            }
            CompiledStatement::Update { plan, .. } => {
                let report = self.apply_update(plan, config, params)?;
                Ok((StatementResult::Update(report), QueryReport::default()))
            }
        }
    }

    /// Evaluate a compiled query plan against a given snapshot.
    pub(crate) fn run_query_on(
        &self,
        snap: StoreSnapshot,
        plan: &PlanRef,
        operators: usize,
        config: ExecConfig,
        params: &Params,
    ) -> Result<(QueryResult, QueryReport), Error> {
        let mut exec = Executor::with_params(&snap, config, params.clone());
        let items = exec.eval_result(plan)?;
        let (transient, stats) = exec.finish();
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        Ok((
            QueryResult::new(items, snap, transient),
            QueryReport {
                plan_operators: operators,
                stats,
            },
        ))
    }

    /// Execute a compiled update plan: snapshot evaluation, pending-update
    /// list collection, atomic application to the paged store, eager
    /// re-materialization and publication of the touched documents.
    ///
    /// Updates are single-writer (serialized by the writer mutex) but never
    /// block readers for longer than the final document swap.
    pub(crate) fn apply_update(
        &self,
        uplan: &UpdatePlan,
        config: ExecConfig,
        params: &Params,
    ) -> Result<UpdateReport, Error> {
        let mut writer = self.writer.lock().unwrap();
        let snap = self.snapshot();

        // phase 1: snapshot evaluation of every statement's plans
        struct Evaled {
            kind: UpdateKind,
            targets: Vec<Item>,
            attr: Option<String>,
            source: Option<Vec<Item>>,
        }
        let mut evaled = Vec::with_capacity(uplan.statements.len());
        let transient;
        {
            let mut exec = Executor::with_params(&snap, config, params.clone());
            for stmt in &uplan.statements {
                let (targets, attr) = match &stmt.target {
                    pul::UpdateTarget::Nodes(p) => (exec.eval_result(p)?, None),
                    pul::UpdateTarget::Attribute { elem, name } => {
                        (exec.eval_result(elem)?, Some(name.clone()))
                    }
                };
                let source = match &stmt.source {
                    Some(p) => Some(exec.eval_result(p)?),
                    None => None,
                };
                evaled.push(Evaled {
                    kind: stmt.kind,
                    targets,
                    attr,
                    source,
                });
            }
            // nodes constructed while evaluating sources live in the
            // executor's private transient container; the collector copies
            // their content into the primitives' own fragments, after which
            // the container is dropped with this function frame
            transient = exec.finish().0;
        }

        // phase 2: build the pending update list (validation + conflicts)
        let collector = PrimitiveCollector {
            snap: &snap,
            transient: &transient,
        };
        let mut pul = PendingUpdateList::new();
        for ev in &evaled {
            collector.collect(
                ev.kind,
                &ev.targets,
                ev.attr.as_deref(),
                &ev.source,
                &mut pul,
            )?;
        }

        // phase 2½: durability — the WAL record must be on disk (per the
        // sync policy) *before* any in-memory mutation.  If the append
        // fails, the error surfaces here and the store is untouched: the
        // statement failed cleanly instead of half-applying.
        let frags = pul.fragments();
        if let Some(durable) = &self.durable {
            if !frags.is_empty() {
                // each publish below bumps the generation by one, so the
                // operation as a whole lands on snap.generation() + |frags|
                let stamp = snap.generation() + frags.len() as u64;
                let payload = durability::encode_update(pul.primitives());
                let mut state = durable.state.lock().unwrap();
                state
                    .wal
                    .append(stamp, &payload)
                    .map_err(|e| Error::Durability(e.into()))?;
                for &frag in &frags {
                    state.dirty.insert(frag);
                }
                self.note_wal(&state);
            }
        }

        // phase 3: atomic application to the paged scheme — page-local
        // splices plus lockstep delta-patching of the column image, all
        // outside any store lock (readers keep running on their snapshots)
        let (page_size, fill_percent) = self.store.read().unwrap().page_policy();
        let paged = &mut writer.paged;
        let mut applied = 0;
        let mut stats = UpdateStats::default();
        for &frag in &frags {
            let paged_doc = paged.entry(frag).or_insert_with(|| {
                match snap.container_owned(frag) {
                    // an evicted document faults its pages back in from the
                    // checkpoint image before the master is reconstructed
                    Container::Doc(d) => PagedDocument::from_document(&d, page_size, fill_percent),
                    // reconstructing the master from the published snapshot
                    // is O(pages) Arc clones — pages copy on first write
                    other => {
                        let p = other
                            .paged_snapshot()
                            .expect("loaded documents are always paged");
                        PagedDocument::from_snapshot(&p, page_size, fill_percent)
                    }
                }
            });
            let before = paged_doc.stats;
            applied += pul.apply_to(frag, paged_doc);
            stats.accumulate(&paged_doc.stats.delta_since(&before));

            // differential guard: the incrementally patched column image
            // must agree exactly with a from-scratch rebuild of the same
            // page state (debug builds only — this is O(document))
            #[cfg(debug_assertions)]
            paged_doc
                .columns()
                .same_content(&DocumentColumns::new(&paged_doc.to_document()))
                .expect("incremental column maintenance diverged from rebuild");
        }

        // phase 4: publish the patched page sets + column versions — the
        // writer's whole store critical section is one Arc swap per touched
        // document, so readers observe the update as a whole or not at all
        if !frags.is_empty() {
            let mut store = self.store.write().unwrap();
            for &frag in &frags {
                store.publish(frag, Arc::new(paged[&frag].snapshot()))?;
            }
        }
        self.counters.updates.fetch_add(1, Ordering::Relaxed);
        Ok(UpdateReport {
            statements: uplan.statements.len(),
            primitives: applied,
            documents_touched: frags.len(),
            stats,
        })
    }
}

// ---------------------------------------------------------------------------
// update primitive collection (snapshot-side validation)
// ---------------------------------------------------------------------------

/// Turns evaluated update statements into validated [`UpdatePrimitive`]s,
/// reading node properties from the snapshot and constructed content from
/// the evaluating executor's transient container.
struct PrimitiveCollector<'a> {
    snap: &'a StoreSnapshot,
    transient: &'a Document,
}

impl PrimitiveCollector<'_> {
    fn container(&self, frag: u32) -> ContainerRef<'_> {
        if frag == TRANSIENT_FRAG {
            ContainerRef::Doc(self.transient)
        } else {
            self.snap.container(frag)
        }
    }

    /// Turn one evaluated statement into update primitives.
    fn collect(
        &self,
        kind: UpdateKind,
        targets: &[Item],
        attr: Option<&str>,
        source: &Option<Vec<Item>>,
        pul: &mut PendingUpdateList,
    ) -> Result<(), Error> {
        // attribute-addressed statements (delete/replace value/rename @name)
        if let Some(name) = attr {
            match kind {
                // `delete nodes …/@name` accepts any number of owning
                // elements (bulk attribute strip); a missing attribute is an
                // empty target and deletes nothing
                UpdateKind::Delete => {
                    for item in targets {
                        let elem = self.node_target(item, "attribute delete")?;
                        self.require_kind(elem, &[NodeKind::Element], "attribute owner")?;
                        pul.add(UpdatePrimitive::RemoveAttribute {
                            elem,
                            name: name.to_string(),
                        })?;
                    }
                }
                // `replace value of node …/@name` upserts: when the
                // attribute is missing it is created.  This is a deliberate
                // extension — the subset has no computed attribute
                // constructors, so this is its attribute-insertion form.
                UpdateKind::ReplaceValue => {
                    let elem = self.single_node(targets, "replace value of attribute")?;
                    self.require_kind(elem, &[NodeKind::Element], "attribute owner")?;
                    pul.add(UpdatePrimitive::SetAttribute {
                        elem,
                        name: name.to_string(),
                        value: self.source_string(source),
                    })?;
                }
                UpdateKind::Rename => {
                    let elem = self.single_node(targets, "rename attribute")?;
                    self.require_kind(elem, &[NodeKind::Element], "attribute owner")?;
                    // renaming a non-existent attribute is an empty target
                    if self
                        .container(elem.frag)
                        .attribute(elem.pre, name)
                        .is_none()
                    {
                        return Err(PulError::ExactlyOne {
                            what: "rename attribute",
                            got: 0,
                        }
                        .into());
                    }
                    let new_name = self.source_string(source);
                    if !pul::valid_qname(&new_name) {
                        return Err(PulError::InvalidName(new_name).into());
                    }
                    pul.add(UpdatePrimitive::RenameAttribute {
                        elem,
                        name: name.to_string(),
                        new_name,
                    })?;
                }
                _ => unreachable!("compiler rejects other attribute-target kinds"),
            }
            return Ok(());
        }

        match kind {
            UpdateKind::InsertInto { first } => {
                let parent = self.single_node(targets, "insert into")?;
                self.require_kind(
                    parent,
                    &[NodeKind::Element, NodeKind::Document],
                    "insert target",
                )?;
                let content = self.materialize_content(source.as_deref().unwrap_or(&[]));
                if !content.is_empty() {
                    pul.add(UpdatePrimitive::InsertInto {
                        parent,
                        first,
                        content,
                    })?;
                }
            }
            UpdateKind::InsertBefore | UpdateKind::InsertAfter => {
                let target = self.single_node(targets, "insert before/after")?;
                self.require_non_root(target)?;
                let content = self.materialize_content(source.as_deref().unwrap_or(&[]));
                if !content.is_empty() {
                    pul.add(if kind == UpdateKind::InsertBefore {
                        UpdatePrimitive::InsertBefore { target, content }
                    } else {
                        UpdatePrimitive::InsertAfter { target, content }
                    })?;
                }
            }
            UpdateKind::Delete => {
                for item in targets {
                    let target = self.node_target(item, "delete")?;
                    self.require_non_root(target)?;
                    pul.add(UpdatePrimitive::Delete { target })?;
                }
            }
            UpdateKind::ReplaceNode => {
                let target = self.single_node(targets, "replace node")?;
                self.require_non_root(target)?;
                let content = self.materialize_content(source.as_deref().unwrap_or(&[]));
                pul.add(UpdatePrimitive::ReplaceNode { target, content })?;
            }
            UpdateKind::ReplaceValue => {
                let target = self.single_node(targets, "replace value of node")?;
                pul.add(UpdatePrimitive::ReplaceValue {
                    target,
                    value: self.source_string(source),
                })?;
            }
            UpdateKind::Rename => {
                let target = self.single_node(targets, "rename node")?;
                self.require_kind(
                    target,
                    &[NodeKind::Element, NodeKind::ProcessingInstruction],
                    "rename target",
                )?;
                let name = self.source_string(source);
                if !pul::valid_qname(&name) {
                    return Err(PulError::InvalidName(name).into());
                }
                pul.add(UpdatePrimitive::Rename { target, name })?;
            }
        }
        Ok(())
    }

    fn node_target(&self, item: &Item, what: &'static str) -> Result<NodeId, Error> {
        let node = item.as_node().ok_or(PulError::NotANode(what))?;
        if node.frag == TRANSIENT_FRAG {
            return Err(PulError::TransientTarget.into());
        }
        Ok(node)
    }

    fn single_node(&self, targets: &[Item], what: &'static str) -> Result<NodeId, Error> {
        if targets.len() != 1 {
            return Err(PulError::ExactlyOne {
                what,
                got: targets.len(),
            }
            .into());
        }
        self.node_target(&targets[0], what)
    }

    fn require_kind(&self, node: NodeId, kinds: &[NodeKind], what: &str) -> Result<(), Error> {
        let kind = self.container(node.frag).kind(node.pre);
        if kinds.contains(&kind) {
            Ok(())
        } else {
            Err(PulError::WrongTargetKind(format!("{what} has node kind {kind:?}")).into())
        }
    }

    /// Structural updates must keep the document rooted: fragment roots
    /// (document nodes / root elements at level 0) cannot be deleted,
    /// replaced or given siblings.
    fn require_non_root(&self, node: NodeId) -> Result<(), Error> {
        if self.container(node.frag).level(node.pre) == 0 {
            return Err(PulError::TargetIsRoot.into());
        }
        Ok(())
    }

    /// Copy an evaluated content sequence into a private fragment document:
    /// node items are deep-copied (XQUF inserts copies), adjacent atomics
    /// merge into space-separated text nodes, and document nodes contribute
    /// their children.
    fn materialize_content(&self, items: &[Item]) -> Document {
        let mut b = DocumentBuilder::new("#update-content");
        let mut pending_text = String::new();
        for item in items {
            match item {
                Item::Node(n) => {
                    if !pending_text.is_empty() {
                        b.text(&pending_text);
                        pending_text.clear();
                    }
                    let src = self.container(n.frag);
                    if src.kind(n.pre) == NodeKind::Document {
                        for child in src.children(n.pre) {
                            b.copy_subtree(&src, child);
                        }
                    } else {
                        b.copy_subtree(&src, n.pre);
                    }
                }
                atomic => {
                    if !pending_text.is_empty() {
                        pending_text.push(' ');
                    }
                    pending_text.push_str(&atomic.string_value());
                }
            }
        }
        if !pending_text.is_empty() {
            b.text(&pending_text);
        }
        b.finish()
    }

    /// The string value of a source sequence (for `replace value of` and
    /// `rename`): item string values joined by single spaces.
    fn source_string(&self, source: &Option<Vec<Item>>) -> String {
        let Some(items) = source else {
            return String::new();
        };
        items
            .iter()
            .map(|i| match i {
                Item::Node(n) => self.container(n.frag).string_value(n.pre),
                atomic => atomic.string_value(),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

// ---------------------------------------------------------------------------
// sessions
// ---------------------------------------------------------------------------

/// Per-session statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries executed through this session.
    pub queries: u64,
    /// Updates executed through this session.
    pub updates: u64,
    /// Statements prepared through this session.
    pub prepares: u64,
    /// Plan-cache hits observed by this session.
    pub plan_cache_hits: u64,
    /// Plan-cache misses observed by this session.
    pub plan_cache_misses: u64,
}

/// A per-client handle on a shared [`Database`]: carries the client's
/// [`ExecConfig`] and statistics.  Sessions are cheap to create (an `Arc`
/// clone) and are *not* shared between threads — open one per client/thread;
/// the documents behind them are shared through the database.
#[derive(Debug)]
pub struct Session {
    db: Arc<Database>,
    config: ExecConfig,
    stats: SessionStats,
}

impl Session {
    /// The shared database this session talks to.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The session configuration.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// Change the session configuration (affects subsequent calls; compiled
    /// plans are cached per configuration fingerprint, so switching back and
    /// forth does not thrash the plan cache).
    pub fn set_config(&mut self, config: ExecConfig) {
        self.config = config;
    }

    /// This session's statistics.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    fn compile_cached(&mut self, text: &str) -> Result<Arc<CompiledStatement>, Error> {
        let (compiled, hit) = self.db.compile_cached(text, self.config)?;
        if hit {
            self.stats.plan_cache_hits += 1;
        } else {
            self.stats.plan_cache_misses += 1;
        }
        Ok(compiled)
    }

    /// Parse + compile a query and return its plan for inspection (e.g.
    /// `plan.explain()` or `plan.operator_count()`) without executing it.
    /// The plan is verified and simplified exactly like an executed one.
    pub fn compile(&self, query: &str) -> Result<PlanRef, Error> {
        match self.db.compile_statement(query, self.config)? {
            CompiledStatement::Query { plan, .. } => Ok(plan),
            CompiledStatement::Update { .. } => {
                Err(Error::WrongStatementKind { expected: "query" })
            }
        }
    }

    /// Compile a query and render its plan annotated with the statically
    /// inferred properties of every operator, followed by the
    /// property-driven rewrites the simplifier applied.
    pub fn explain(&self, query: &str) -> Result<String, Error> {
        match self.db.compile_statement(query, self.config)? {
            CompiledStatement::Query { plan, rewrites, .. } => {
                let analysis = crate::analysis::analyze(&plan);
                let mut out = crate::analysis::explain_annotated(&plan, &analysis);
                if rewrites.is_empty() {
                    out.push_str("-- no rewrites applied\n");
                } else {
                    out.push_str("-- rewrites:\n");
                    for r in &rewrites {
                        out.push_str(&format!("--   {r}\n"));
                    }
                }
                Ok(out)
            }
            CompiledStatement::Update { .. } => {
                Err(Error::WrongStatementKind { expected: "query" })
            }
        }
    }

    /// Parse + compile a statement once into a [`Prepared`] handle that can
    /// be executed many times (and from many threads).  External variables
    /// (`declare variable $x external;`) are bound per execution through
    /// [`Prepared::bind`].
    pub fn prepare(&mut self, text: &str) -> Result<Prepared, Error> {
        let compiled = self.compile_cached(text)?;
        self.stats.prepares += 1;
        Ok(Prepared {
            config: self.config,
            text: text.to_string(),
            compiled,
            last_generation: AtomicU64::new(self.db.generation()),
            db: self.db.clone(),
            executions: AtomicU64::new(0),
            revalidations: AtomicU64::new(0),
        })
    }

    /// Execute a statement, auto-detecting query vs. update text.  Repeated
    /// executions of the same text are served from the database plan cache.
    pub fn execute(&mut self, text: &str) -> Result<StatementResult, Error> {
        let compiled = self.compile_cached(text)?;
        let (result, _) = self
            .db
            .execute_compiled(&compiled, self.config, &Params::new())?;
        match &result {
            StatementResult::Query(_) => self.stats.queries += 1,
            StatementResult::Update(_) => self.stats.updates += 1,
        }
        Ok(result)
    }

    /// Execute a query and return its result; errors with
    /// [`Error::WrongStatementKind`] if the text is an updating statement.
    pub fn query(&mut self, text: &str) -> Result<QueryResult, Error> {
        self.query_with_report(text).map(|(r, _)| r)
    }

    /// Execute a query, also returning plan/runtime diagnostics.
    pub fn query_with_report(&mut self, text: &str) -> Result<(QueryResult, QueryReport), Error> {
        let compiled = self.compile_cached(text)?;
        if matches!(&*compiled, CompiledStatement::Update { .. }) {
            return Err(Error::WrongStatementKind { expected: "query" });
        }
        let (result, report) = self
            .db
            .execute_compiled(&compiled, self.config, &Params::new())?;
        self.stats.queries += 1;
        Ok((result.into_query()?, report))
    }

    /// Execute a query and stream the result items instead of materialising
    /// one serialized string (see [`ResultStream`]).
    pub fn execute_streaming(&mut self, text: &str) -> Result<ResultStream, Error> {
        self.query(text).map(QueryResult::into_stream)
    }

    /// Execute one or more comma-separated XQuery Update Facility
    /// statements; errors with [`Error::WrongStatementKind`] if the text is
    /// a plain query.
    ///
    /// All target and source expressions are evaluated first, against an
    /// unchanged snapshot (snapshot isolation); the collected pending update
    /// list is conflict-checked and then applied atomically, and the
    /// re-materialized documents are published under the store write lock so
    /// concurrent readers observe the update as a whole or not at all.
    pub fn execute_update(&mut self, text: &str) -> Result<UpdateReport, Error> {
        let compiled = self.compile_cached(text)?;
        let CompiledStatement::Update { plan, .. } = &*compiled else {
            return Err(Error::WrongStatementKind { expected: "update" });
        };
        let report = self.db.apply_update(plan, self.config, &Params::new())?;
        self.stats.updates += 1;
        Ok(report)
    }
}

// ---------------------------------------------------------------------------
// prepared statements
// ---------------------------------------------------------------------------

/// A statement parsed and compiled exactly once, executable many times —
/// concurrently from many threads — with per-execution external-variable
/// bindings.
///
/// ```
/// use std::sync::Arc;
/// use mxq_xquery::Database;
///
/// let db = Arc::new(Database::new());
/// db.load_document("doc.xml", "<a><v>1</v><v>2</v><v>3</v></a>").unwrap();
/// let mut session = db.session();
/// let stmt = session
///     .prepare(
///         "declare variable $min external; \
///          for $v in doc(\"doc.xml\")/a/v where $v/text() >= $min return $v/text()",
///     )
///     .unwrap();
/// let r = stmt.bind("min", 2).execute().unwrap().into_query().unwrap();
/// assert_eq!(r.len(), 2); // the <v>2</v> and <v>3</v> text nodes
/// let r = stmt.bind("min", 3).execute().unwrap().into_query().unwrap();
/// assert_eq!(r.serialize(), "3");
/// ```
#[derive(Debug)]
pub struct Prepared {
    db: Arc<Database>,
    config: ExecConfig,
    text: String,
    compiled: Arc<CompiledStatement>,
    /// The store generation observed by the most recent execution (the
    /// prepare-time generation before the first).  Every execution takes a
    /// fresh snapshot — a dormant `Prepared` never pins old document
    /// versions — and compares its generation against this to detect that
    /// an update invalidated whatever the previous execution read
    /// ([`Prepared::revalidations`]).
    last_generation: AtomicU64,
    executions: AtomicU64,
    revalidations: AtomicU64,
}

impl Prepared {
    /// The statement text this handle was prepared from.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The configuration the statement was compiled under.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// True if the statement is an XQuery Update Facility statement list.
    pub fn is_update(&self) -> bool {
        matches!(&*self.compiled, CompiledStatement::Update { .. })
    }

    /// Names of the external variables the statement declares, in
    /// declaration order.
    pub fn external_variables(&self) -> &[String] {
        self.compiled.externals()
    }

    /// Number of algebra operators in the compiled plan (queries only).
    pub fn plan_operators(&self) -> Option<usize> {
        match &*self.compiled {
            CompiledStatement::Query { operators, .. } => Some(*operators),
            CompiledStatement::Update { .. } => None,
        }
    }

    /// How many times this prepared statement has been executed.
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    /// How many times an execution observed a store generation different
    /// from the previous execution's — i.e. an update invalidated the state
    /// the statement had last read and the plan was revalidated against a
    /// fresh snapshot.
    pub fn revalidations(&self) -> u64 {
        self.revalidations.load(Ordering::Relaxed)
    }

    /// Start a binding chain: `stmt.bind("x", 42).bind("y", "s").execute()`.
    pub fn bind(&self, name: impl Into<String>, value: impl Into<Item>) -> Binder<'_> {
        let mut params = Params::new();
        params.set(name, value);
        Binder {
            prepared: self,
            params,
        }
    }

    /// Start a binding chain with a sequence-valued binding.
    pub fn bind_seq(&self, name: impl Into<String>, values: Vec<Item>) -> Binder<'_> {
        let mut params = Params::new();
        params.set_seq(name, values);
        Binder {
            prepared: self,
            params,
        }
    }

    /// Execute without bindings (all external variables must have defaults,
    /// or the statement must not declare any).
    pub fn execute(&self) -> Result<StatementResult, Error> {
        self.execute_with(&Params::new())
    }

    /// Execute with an explicit binding set.
    ///
    /// Every bound name must be declared `external` by the statement —
    /// binding an undeclared name (a typo would otherwise silently fall
    /// back to the default) is an [`ExecError::NotExternal`] error.
    pub fn execute_with(&self, params: &Params) -> Result<StatementResult, Error> {
        let externals = self.compiled.externals();
        if let Some((unknown, _)) = params
            .iter()
            .find(|(name, _)| !externals.iter().any(|e| e == name))
        {
            return Err(ExecError::NotExternal(unknown.to_string()).into());
        }
        self.executions.fetch_add(1, Ordering::Relaxed);
        match &*self.compiled {
            CompiledStatement::Query {
                plan, operators, ..
            } => {
                let snap = self.current_snapshot();
                let (result, _) =
                    self.db
                        .run_query_on(snap, plan, *operators, self.config, params)?;
                Ok(StatementResult::Query(result))
            }
            CompiledStatement::Update { plan, .. } => self
                .db
                .apply_update(plan, self.config, params)
                .map(StatementResult::Update),
        }
    }

    /// Execute with bindings and return the query result (errors for
    /// updating statements).
    pub fn query_with(&self, params: &Params) -> Result<QueryResult, Error> {
        self.execute_with(params)?.into_query()
    }

    /// A fresh snapshot for one execution, with the generation check: a
    /// stale snapshot (store mutated since the last execution) can never be
    /// read, because every execution re-resolves the store; the generation
    /// counter records that an invalidation happened.
    fn current_snapshot(&self) -> StoreSnapshot {
        let snap = self.db.snapshot();
        let prev = self
            .last_generation
            .swap(snap.generation(), Ordering::Relaxed);
        if prev != snap.generation() {
            self.revalidations.fetch_add(1, Ordering::Relaxed);
        }
        snap
    }
}

/// Accumulates external-variable bindings for one execution of a
/// [`Prepared`] statement (see [`Prepared::bind`]).
#[derive(Debug)]
pub struct Binder<'a> {
    prepared: &'a Prepared,
    params: Params,
}

impl Binder<'_> {
    /// Add another single-item binding.
    pub fn bind(mut self, name: impl Into<String>, value: impl Into<Item>) -> Self {
        self.params.set(name, value);
        self
    }

    /// Add another sequence-valued binding.
    pub fn bind_seq(mut self, name: impl Into<String>, values: Vec<Item>) -> Self {
        self.params.set_seq(name, values);
        self
    }

    /// Execute the prepared statement with the accumulated bindings.
    pub fn execute(self) -> Result<StatementResult, Error> {
        self.prepared.execute_with(&self.params)
    }

    /// Execute and unwrap the query result (errors for updating statements).
    pub fn query(self) -> Result<QueryResult, Error> {
        self.prepared.query_with(&self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with(xml: &str) -> Arc<Database> {
        let db = Arc::new(Database::new());
        db.load_document("doc.xml", xml).unwrap();
        db
    }

    #[test]
    fn database_and_prepared_are_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<Prepared>();
        assert_send_sync::<QueryResult>();
        assert_send_sync::<StoreSnapshot>();
    }

    #[test]
    fn session_executes_queries_and_updates_through_one_entry_point() {
        let db = db_with("<a><b/></a>");
        let mut s = db.session();
        let r = s.execute("count(doc(\"doc.xml\")/a/b)").unwrap();
        assert_eq!(r.as_query().unwrap().serialize(), "1");
        let r = s
            .execute("insert nodes <b/> as last into doc(\"doc.xml\")/a")
            .unwrap();
        assert!(r.is_update());
        let r = s.execute("count(doc(\"doc.xml\")/a/b)").unwrap();
        assert_eq!(r.as_query().unwrap().serialize(), "2");
        assert_eq!(s.stats().queries, 2);
        assert_eq!(s.stats().updates, 1);
    }

    #[test]
    fn plan_cache_serves_repeated_executions() {
        let db = db_with("<a><b/><b/></a>");
        let mut s = db.session();
        let q = "count(doc(\"doc.xml\")/a/b)";
        for _ in 0..5 {
            assert_eq!(s.query(q).unwrap().serialize(), "2");
        }
        let stats = db.stats();
        assert_eq!(stats.prepares, 1, "compiled once");
        assert_eq!(stats.plan_cache_hits, 4);
        assert_eq!(stats.plan_cache_misses, 1);
        assert!(stats.plan_cache_hit_rate().unwrap() > 0.7);
        // a different config fingerprint compiles separately
        let mut naive = db.session_with_config(ExecConfig::naive());
        assert_eq!(naive.query(q).unwrap().serialize(), "2");
        assert_eq!(db.stats().prepares, 2);
    }

    #[test]
    fn plan_cache_never_shared_across_execution_affecting_config() {
        // Configs differing ONLY in validate_plans or threads must not share
        // a cached plan: both change how a statement executes.
        let db = db_with("<a><b/><b/></a>");
        let q = "count(doc(\"doc.xml\")/a/b)";
        let mut base = db.session();
        assert_eq!(base.query(q).unwrap().serialize(), "2");
        let prepares_before = db.stats().prepares;
        let mut validating = db.session_with_config(ExecConfig {
            validate_plans: true,
            ..ExecConfig::default()
        });
        assert_eq!(validating.query(q).unwrap().serialize(), "2");
        assert_eq!(
            db.stats().prepares,
            prepares_before + 1,
            "validate_plans-only difference must miss the plan cache"
        );
        let mut threaded = db.session_with_config(ExecConfig {
            threads: 4,
            ..ExecConfig::default()
        });
        assert_eq!(threaded.query(q).unwrap().serialize(), "2");
        assert_eq!(
            db.stats().prepares,
            prepares_before + 2,
            "threads-only difference must miss the plan cache"
        );
        // and re-running each config hits its own cached plan
        assert_eq!(threaded.query(q).unwrap().serialize(), "2");
        assert_eq!(db.stats().prepares, prepares_before + 2);
    }

    #[test]
    fn prepared_external_variables_bind_per_execution() {
        let db = db_with("<a><v>1</v><v>2</v><v>3</v></a>");
        let mut s = db.session();
        let stmt = s
            .prepare(
                "declare variable $min external; \
                 count(for $v in doc(\"doc.xml\")/a/v where $v/text() >= $min return $v)",
            )
            .unwrap();
        assert_eq!(stmt.external_variables(), ["min"]);
        assert!(!stmt.is_update());
        let r = stmt.bind("min", 2).query().unwrap();
        assert_eq!(r.serialize(), "2");
        let r = stmt.bind("min", 99).query().unwrap();
        assert_eq!(r.serialize(), "0");
        assert_eq!(stmt.executions(), 2);
        // unbound without default is an execution-time error
        assert!(matches!(stmt.execute(), Err(Error::Exec(_))));
    }

    #[test]
    fn external_variable_defaults_apply_when_unbound() {
        let db = db_with("<a/>");
        let mut s = db.session();
        let stmt = s
            .prepare("declare variable $x external := 7; $x * 2")
            .unwrap();
        assert_eq!(
            stmt.execute().unwrap().into_query().unwrap().serialize(),
            "14"
        );
        assert_eq!(stmt.bind("x", 5).query().unwrap().serialize(), "10");
    }

    #[test]
    fn prepared_snapshot_invalidated_by_updates() {
        let db = db_with("<a><b/></a>");
        let mut s = db.session();
        let stmt = s.prepare("count(doc(\"doc.xml\")//b)").unwrap();
        assert_eq!(
            stmt.execute().unwrap().into_query().unwrap().serialize(),
            "1"
        );
        // repeated executions without intervening writes reuse the snapshot
        assert_eq!(
            stmt.execute().unwrap().into_query().unwrap().serialize(),
            "1"
        );
        assert_eq!(stmt.revalidations(), 0);
        s.execute_update("insert nodes <b/> as last into doc(\"doc.xml\")/a")
            .unwrap();
        // the generation moved: the cached snapshot is dropped, not read
        assert_eq!(
            stmt.execute().unwrap().into_query().unwrap().serialize(),
            "2"
        );
        assert_eq!(stmt.revalidations(), 1);
    }

    #[test]
    fn results_stream_and_pin_their_snapshot() {
        let db = db_with("<a><v>1</v><v>2</v></a>");
        let mut s = db.session();
        let result = s.query("doc(\"doc.xml\")/a/v").unwrap();
        // mutate after the result was produced: the result must not change
        s.execute_update("delete nodes doc(\"doc.xml\")/a/v[1]")
            .unwrap();
        let stream = result.into_stream();
        assert_eq!(stream.len(), 2);
        let rendered: Vec<String> = {
            let mut out = Vec::new();
            let mut stream = stream;
            while let Some(item) = stream.next() {
                out.push(stream.serialize_item(&item));
            }
            out
        };
        assert_eq!(rendered, ["<v>1</v>", "<v>2</v>"]);
        // streaming entry point
        let items: Vec<Item> = s
            .execute_streaming("doc(\"doc.xml\")/a/v/text()")
            .unwrap()
            .collect();
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn wrong_statement_kind_is_reported() {
        let db = db_with("<a/>");
        let mut s = db.session();
        assert!(matches!(
            s.query("delete nodes doc(\"doc.xml\")/a/b"),
            Err(Error::WrongStatementKind { expected: "query" })
        ));
        assert!(matches!(
            s.execute_update("1 + 1"),
            Err(Error::WrongStatementKind { expected: "update" })
        ));
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let mut cache = PlanCache::new(2);
        let stmt = |t: &str| {
            Arc::new(CompiledStatement::Update {
                plan: UpdatePlan {
                    statements: Vec::new(),
                },
                externals: vec![t.to_string()],
            })
        };
        cache.insert(0, "a".into(), stmt("a"));
        cache.insert(0, "b".into(), stmt("b"));
        assert!(cache.get(0, "a").is_some()); // a is now more recent than b
        cache.insert(0, "c".into(), stmt("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(0, "b").is_none(), "b was evicted");
        assert!(cache.get(0, "a").is_some());
        assert!(cache.get(0, "c").is_some());
    }
}
