//! Abstract syntax of the XQuery subset accepted by the compiler.
//!
//! The subset is the language exercised by the XMark benchmark (Q1–Q20) plus
//! the usual small extras: FLWOR expressions with multiple `for`/`let`
//! clauses, `where`, multi-key `order by` (each key with its own
//! ascending/descending direction) and positional (`at`) variables;
//! path expressions over all XPath axes with name/kind tests and predicates
//! (boolean and positional); direct element constructors with enclosed
//! expressions; arithmetic, value and general comparisons; node order
//! comparison (`<<`, `>>`); quantified expressions; conditional expressions;
//! the built-in function library (see `compile::Compiler`); and user-defined
//! functions declared in the query prolog (expanded inline).

use std::fmt;

use mxq_staircase::{Axis, NodeTest};

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// `xs:integer` literal.
    Integer(i64),
    /// `xs:decimal` / `xs:double` literal.
    Double(f64),
    /// String literal.
    String(String),
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `idiv`
    IDiv,
    /// `mod`
    Mod,
}

/// Comparison operators as written in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompKind {
    /// General comparisons `=`, `!=`, `<`, `<=`, `>`, `>=` (existential).
    General(mxq_engine::CmpOp),
    /// Value comparisons `eq`, `ne`, `lt`, `le`, `gt`, `ge`.
    Value(mxq_engine::CmpOp),
    /// Node order `<<` / `>>` and identity `is`.
    NodeBefore,
    /// `>>`
    NodeAfter,
    /// `is`
    NodeIs,
}

/// One step of a path expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Predicates applied to the step result, in order.
    pub predicates: Vec<Expr>,
}

/// One clause of a FLWOR expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `for $var [at $pos] in expr`
    For {
        /// Bound variable name (without `$`).
        var: String,
        /// Optional positional variable.
        at: Option<String>,
        /// The binding sequence.
        source: Expr,
    },
    /// `let $var := expr`
    Let {
        /// Bound variable name (without `$`).
        var: String,
        /// The bound expression.
        value: Expr,
    },
}

/// One key of an `order by` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The key expression (evaluated once per tuple of the FLWOR stream).
    pub key: Box<Expr>,
    /// Descending order?
    pub descending: bool,
}

/// An `order by` specification: one or more keys, compared left to right
/// (major key first), each with its own direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    /// The sort keys in source order.
    pub keys: Vec<OrderKey>,
}

/// Attribute of a direct element constructor: a list of fixed and computed
/// parts (the computed parts are enclosed expressions).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrPart {
    /// Literal text.
    Text(String),
    /// `{ expr }`.
    Expr(Expr),
}

/// Content item of a direct element constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Literal text between tags.
    Text(String),
    /// An enclosed expression `{ expr }`.
    Expr(Expr),
    /// A nested direct constructor.
    Element(Box<ElementCtor>),
}

/// A direct element constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementCtor {
    /// Element name.
    pub name: String,
    /// Attributes (name, value template).
    pub attributes: Vec<(String, Vec<AttrPart>)>,
    /// Children content.
    pub content: Vec<Content>,
}

/// An XQuery expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Literal(Literal),
    /// The empty sequence `()`.
    Empty,
    /// A variable reference `$name`.
    Var(String),
    /// A comma sequence `(e1, e2, …)`.
    Sequence(Vec<Expr>),
    /// FLWOR expression.
    Flwor {
        /// for/let clauses in source order.
        clauses: Vec<Clause>,
        /// Optional where clause.
        where_: Option<Box<Expr>>,
        /// Optional order-by clause.
        order_by: Option<OrderSpec>,
        /// The return expression.
        ret: Box<Expr>,
    },
    /// `if (cond) then e1 else e2`.
    If {
        /// Condition (effective boolean value).
        cond: Box<Expr>,
        /// Then branch.
        then: Box<Expr>,
        /// Else branch.
        els: Box<Expr>,
    },
    /// `some/every $v in e satisfies e`.
    Quantified {
        /// True for `some`, false for `every`.
        some: bool,
        /// Bound variable.
        var: String,
        /// Binding sequence.
        source: Box<Expr>,
        /// The condition.
        satisfies: Box<Expr>,
    },
    /// Binary arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// Comparison (general, value or node order).
    Comparison {
        /// Kind of comparison.
        kind: CompKind,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// `and` / `or`.
    Logical {
        /// True for `and`, false for `or`.
        is_and: bool,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// A path expression: steps applied to a start expression.  A `start` of
    /// `None` denotes the root of the context document (`/step/…`).
    Path {
        /// The expression producing the initial context sequence.
        start: Option<Box<Expr>>,
        /// The location steps.
        steps: Vec<Step>,
    },
    /// Function call (built-in or user defined, resolved during compilation).
    FunCall {
        /// Function name (prefix stripped: `fn:count` → `count`).
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Direct element constructor.
    Element(ElementCtor),
}

impl Expr {
    /// Convenience constructor for a string literal.
    pub fn string(s: impl Into<String>) -> Expr {
        Expr::Literal(Literal::String(s.into()))
    }

    /// Convenience constructor for an integer literal.
    pub fn integer(i: i64) -> Expr {
        Expr::Literal(Literal::Integer(i))
    }

    /// Collect the free variables referenced by this expression (used by the
    /// `indep` analysis of the join recognition, Section 4.1).
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_free(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !bound.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Literal(_) | Expr::Empty => {}
            Expr::Sequence(es) => es.iter().for_each(|e| e.collect_free(bound, out)),
            Expr::Flwor {
                clauses,
                where_,
                order_by,
                ret,
            } => {
                let depth = bound.len();
                for c in clauses {
                    match c {
                        Clause::For { var, at, source } => {
                            source.collect_free(bound, out);
                            bound.push(var.clone());
                            if let Some(a) = at {
                                bound.push(a.clone());
                            }
                        }
                        Clause::Let { var, value } => {
                            value.collect_free(bound, out);
                            bound.push(var.clone());
                        }
                    }
                }
                if let Some(w) = where_ {
                    w.collect_free(bound, out);
                }
                if let Some(o) = order_by {
                    for k in &o.keys {
                        k.key.collect_free(bound, out);
                    }
                }
                ret.collect_free(bound, out);
                bound.truncate(depth);
            }
            Expr::If { cond, then, els } => {
                cond.collect_free(bound, out);
                then.collect_free(bound, out);
                els.collect_free(bound, out);
            }
            Expr::Quantified {
                var,
                source,
                satisfies,
                ..
            } => {
                source.collect_free(bound, out);
                bound.push(var.clone());
                satisfies.collect_free(bound, out);
                bound.pop();
            }
            Expr::Arith { l, r, .. }
            | Expr::Comparison { l, r, .. }
            | Expr::Logical { l, r, .. } => {
                l.collect_free(bound, out);
                r.collect_free(bound, out);
            }
            Expr::Neg(e) => e.collect_free(bound, out),
            Expr::Path { start, steps } => {
                if let Some(s) = start {
                    s.collect_free(bound, out);
                }
                for st in steps {
                    for p in &st.predicates {
                        p.collect_free(bound, out);
                    }
                }
            }
            Expr::FunCall { args, .. } => args.iter().for_each(|a| a.collect_free(bound, out)),
            Expr::Element(e) => e.collect_free(bound, out),
        }
    }
}

impl ElementCtor {
    fn collect_free(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        for (_, parts) in &self.attributes {
            for p in parts {
                if let AttrPart::Expr(e) = p {
                    e.collect_free(bound, out);
                }
            }
        }
        for c in &self.content {
            match c {
                Content::Text(_) => {}
                Content::Expr(e) => e.collect_free(bound, out),
                Content::Element(e) => e.collect_free(bound, out),
            }
        }
    }
}

/// Where an `insert nodes` statement places the new content relative to its
/// target (XQuery Update Facility `InsertExpr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertLocation {
    /// `as first into` — first child of the target element.
    FirstInto,
    /// `as last into` — last child of the target element.
    LastInto,
    /// Plain `into` — an implementation-chosen position among the children
    /// (we append, like `as last into`).
    Into,
    /// `before` — preceding sibling of the target.
    Before,
    /// `after` — following sibling of the target.
    After,
}

/// One updating statement of the XQuery Update Facility subset.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateStmt {
    /// `insert nodes <source> (as first|as last)? into | before | after <target>`.
    Insert {
        /// The content expression (evaluated and copied before application).
        source: Expr,
        /// Where the content goes relative to the target.
        location: InsertLocation,
        /// The target node expression (must evaluate to exactly one node).
        target: Expr,
    },
    /// `delete nodes <target>` — every node of the target sequence.
    Delete {
        /// The target node sequence.
        target: Expr,
    },
    /// `replace node <target> with <source>`.
    ReplaceNode {
        /// The target node (exactly one).
        target: Expr,
        /// The replacement content.
        source: Expr,
    },
    /// `replace value of node <target> with <source>`.
    ReplaceValue {
        /// The target node (exactly one).
        target: Expr,
        /// The new value (atomized to a string).
        source: Expr,
    },
    /// `rename node <target> as <new-name>`.
    Rename {
        /// The target node (exactly one element, PI or attribute).
        target: Expr,
        /// The new name (atomized to a string).
        new_name: Expr,
    },
}

/// A parsed update: prolog declarations plus one or more comma-separated
/// updating statements.  All statements are evaluated against the same
/// snapshot and applied as one pending update list.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateQuery {
    /// User-defined functions.
    pub functions: Vec<FunctionDecl>,
    /// Global variable declarations.
    pub variables: Vec<VarDecl>,
    /// The updating statements, in source order.
    pub statements: Vec<UpdateStmt>,
}

/// A user-defined function declared in the query prolog.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Function name without the `local:` prefix.
    pub name: String,
    /// Parameter names (without `$`).
    pub params: Vec<String>,
    /// Function body.
    pub body: Expr,
}

/// A global variable declared in the query prolog.
///
/// `declare variable $x := expr;` binds `$x` to the value of `expr`;
/// `declare variable $x external;` declares `$x` as supplied by the caller
/// at execution time (through `Params`), optionally with a default value:
/// `declare variable $x external := expr;`.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name (without `$`).
    pub name: String,
    /// The initializer — for external variables, the default value used when
    /// the caller supplies no binding.
    pub init: Option<Expr>,
    /// Declared `external` (value supplied at execution time)?
    pub external: bool,
}

/// A parsed query: prolog declarations plus the main expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// User-defined functions.
    pub functions: Vec<FunctionDecl>,
    /// Global variable declarations (`declare variable $x := expr;`,
    /// `declare variable $x external;`).
    pub variables: Vec<VarDecl>,
    /// The query body.
    pub body: Expr,
}

/// A parsed statement: either a (read-only) query or an updating statement
/// list.  [`crate::parser::parse_statement`] auto-detects which of the two a
/// source text is, so callers with a unified entry point (e.g.
/// `Session::execute`) do not have to know the statement kind up front.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query (`parse_query` shape).
    Query(Query),
    /// An XQuery Update Facility statement list (`parse_update` shape).
    Update(UpdateQuery),
}

impl Statement {
    /// True if this is an updating statement.
    pub fn is_update(&self) -> bool {
        matches!(self, Statement::Update(_))
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Integer(i) => write!(f, "{i}"),
            Literal::Double(d) => write!(f, "{d}"),
            Literal::String(s) => write!(f, "\"{s}\""),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_respect_binders() {
        // for $x in $src return ($x, $y)
        let e = Expr::Flwor {
            clauses: vec![Clause::For {
                var: "x".into(),
                at: None,
                source: Expr::Var("src".into()),
            }],
            where_: None,
            order_by: None,
            ret: Box::new(Expr::Sequence(vec![
                Expr::Var("x".into()),
                Expr::Var("y".into()),
            ])),
        };
        assert_eq!(e.free_vars(), vec!["src".to_string(), "y".to_string()]);
    }

    #[test]
    fn free_vars_of_path_predicates() {
        let e = Expr::Path {
            start: Some(Box::new(Expr::Var("doc".into()))),
            steps: vec![Step {
                axis: Axis::Child,
                test: NodeTest::named("item"),
                predicates: vec![Expr::Var("p".into())],
            }],
        };
        assert_eq!(e.free_vars(), vec!["doc".to_string(), "p".to_string()]);
    }
}
