//! The durability layer: write-ahead logging of logical operations, the
//! checkpoint catalog, and crash recovery.
//!
//! A durable [`Database`](crate::Database) keeps a directory with
//!
//! * `wal.log` — the write-ahead log (`mxq-wal` record framing).  Every
//!   logical operation that changes the published store — a document load
//!   or an update's pending-update list — is encoded, appended and (per
//!   the [`SyncPolicy`]) fsynced **before** the in-memory store mutates.
//!   Each record is stamped with the store generation the operation
//!   produces, so recovery can replay exactly up to the last published
//!   generation and stamps stay comparable across restarts.
//! * `doc-<frag>-<generation>.mxq` — one checksummed page image per
//!   loaded document (`mxq_xmldb::disk` snapshot format), written by a
//!   checkpoint.  Image files are **immutable**: a checkpoint never
//!   rewrites a file an earlier catalog references — a changed document
//!   gets a fresh generation-stamped file, an unchanged document's
//!   existing file is referenced as-is (no rewrite).
//! * `catalog.mxq` — the checkpoint catalog: format version, the
//!   checkpointed generation, the page policy and the fragment → (name,
//!   file) table.  Written atomically (temp + fsync + rename) **after**
//!   all page images, so the catalog only ever names complete files; the
//!   WAL is rotated (records stamped at or below the checkpointed
//!   generation dropped, later commits' records kept), and image files
//!   the new catalog no longer references are deleted, only after the
//!   catalog commit.  A crash anywhere before that commit is harmless:
//!   the previous catalog and every file it names are untouched, the
//!   surviving WAL records carry generations ≤ that catalog's checkpoint
//!   generation or are replayed on top of exactly the state they were
//!   logged against, and the next open sweeps up the unreferenced new
//!   images.
//!
//! With per-document write latches the WAL is multi-writer: records from
//! concurrent commits interleave in file order, but each carries its
//! commit-ticket generation, and for any single document the records
//! appear in ticket order (a later commit on the same document appends
//! only after the earlier one released the latch).  Under
//! [`SyncPolicy::GroupCommit`] appends do not fsync individually —
//! writers wait on the group-commit coordinator, which amortizes one
//! fsync over every record that arrived in the gather window, and a
//! commit publishes only after its record is covered by a completed
//! fsync.
//!
//! Recovery (`Database::open`) loads the catalog (if any), replays the
//! WAL's complete records with stamps beyond the checkpoint generation
//! in generation order, and truncates any torn or corrupt tail the CRC
//! scan rejected.  An update whose WAL record did not make it to disk
//! completely was never acknowledged — `Database::apply_update` appends
//! (and, under group commit, waits for the covering fsync) before it
//! publishes — so discarding the tail is exactly "recover to the last
//! published generation".

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use mxq_engine::NodeId;
use mxq_wal::{SyncPolicy, WalError, WalWriter};
use mxq_xmldb::disk::{decode_document, encode_document, DiskError};
use mxq_xmldb::Document;

use crate::pul::UpdatePrimitive;

/// Name of the write-ahead log file inside a durable database directory.
pub const WAL_FILE: &str = "wal.log";
/// Name of the checkpoint catalog file.
pub const CATALOG_FILE: &str = "catalog.mxq";
/// Magic bytes of the checkpoint catalog.
pub const CATALOG_MAGIC: &[u8; 4] = b"MXQC";
/// Catalog format version.
pub const CATALOG_VERSION: u16 = 1;

/// The page-image file name for a fragment checkpointed at a generation.
/// The generation stamp makes image files immutable: a later checkpoint
/// of a changed document writes a *new* file instead of overwriting one
/// the committed catalog still references.
pub fn doc_file_name(frag: u32, generation: u64) -> String {
    format!("doc-{frag}-{generation}.mxq")
}

/// True if a directory entry name looks like a page-image file.
fn is_image_file(name: &str) -> bool {
    name.starts_with("doc-") && name.ends_with(".mxq")
}

/// Delete page-image files in `dir` that `images` (the committed catalog's
/// fragment → file table) does not reference: leftovers of a checkpoint
/// that crashed between writing images and committing its catalog, or
/// files superseded by a catalog that just committed.  Best-effort — a
/// file that cannot be removed is simply left behind for the next sweep.
pub(crate) fn remove_unreferenced_images(dir: &Path, images: &HashMap<u32, String>) {
    let referenced: HashSet<&str> = images.values().map(String::as_str).collect();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if is_image_file(name) && !referenced.contains(name) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Delete stray `*.tmp` files in `dir`: debris of a [`mxq_wal::write_atomic`]
/// that crashed between creating its temp file and the rename.
pub(crate) fn remove_stale_tmp_files(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".tmp") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

// ---------------------------------------------------------------------------
// options
// ---------------------------------------------------------------------------

/// Configuration of a durable database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// When WAL appends are forced to disk (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// Optional resident-memory budget in bytes: after a checkpoint, clean
    /// documents are evicted (pages dropped, faulted back from their disk
    /// images on next access) until the store's estimated resident page
    /// bytes fit the budget.  `None` disables eviction.
    pub memory_budget: Option<usize>,
    /// If set, a background thread checkpoints the database at this
    /// interval, so checkpoint I/O runs off the writer path.  `None`
    /// leaves checkpoints entirely to explicit `checkpoint()` calls.
    pub checkpoint_interval: Option<Duration>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            sync: SyncPolicy::Always,
            memory_budget: None,
            checkpoint_interval: None,
        }
    }
}

impl DurabilityOptions {
    /// Read the options from the environment: `MXQ_SYNC` (see
    /// [`SyncPolicy::from_env`]), `MXQ_MEMORY_BUDGET` (bytes; unset or
    /// `0` disables eviction) and `MXQ_CHECKPOINT_MS` (milliseconds
    /// between background checkpoints; unset or `0` disables the
    /// background thread).
    ///
    /// # Panics
    /// Panics on a set-but-unparsable value, so a typo cannot silently
    /// weaken durability or disable eviction.
    pub fn from_env() -> DurabilityOptions {
        let memory_budget = match std::env::var("MXQ_MEMORY_BUDGET") {
            Ok(raw) if !raw.trim().is_empty() => {
                let n: usize = raw
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("invalid MXQ_MEMORY_BUDGET `{raw}`"));
                (n > 0).then_some(n)
            }
            _ => None,
        };
        let checkpoint_interval = match std::env::var("MXQ_CHECKPOINT_MS") {
            Ok(raw) if !raw.trim().is_empty() => {
                let n: u64 = raw
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("invalid MXQ_CHECKPOINT_MS `{raw}`"));
                (n > 0).then_some(Duration::from_millis(n))
            }
            _ => None,
        };
        DurabilityOptions {
            sync: SyncPolicy::from_env(),
            memory_budget,
            checkpoint_interval,
        }
    }
}

// ---------------------------------------------------------------------------
// errors
// ---------------------------------------------------------------------------

/// Errors from the durability layer: WAL writes, checkpoint/catalog I/O,
/// image decoding, and recovery replay.
#[derive(Debug)]
pub enum DurabilityError {
    /// Appending to or truncating the write-ahead log failed.  The update
    /// that triggered the append was **not** applied: the in-memory store
    /// is untouched and the statement must be treated as failed.
    Wal(WalError),
    /// Reading or writing a checkpoint file failed.
    Io(std::io::Error),
    /// An on-disk image (page file or WAL payload) failed to decode.
    Disk(DiskError),
    /// The catalog or a WAL payload is structurally invalid.
    Corrupt(String),
    /// A group-commit fsync failed earlier, so the log can no longer
    /// guarantee durability; every subsequent durable commit and load
    /// fails with this error until the database is reopened (which
    /// recovers from the surviving, known-durable log prefix).  Exposed as
    /// [`DatabaseStats::wal_poisoned`](crate::DatabaseStats) so callers
    /// can distinguish "log poisoned, reopen required" from an ordinary
    /// I/O error.
    Poisoned,
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Wal(e) => write!(f, "{e}"),
            DurabilityError::Io(e) => write!(f, "durable store I/O failed: {e}"),
            DurabilityError::Disk(e) => write!(f, "on-disk image invalid: {e}"),
            DurabilityError::Corrupt(what) => write!(f, "durable store corrupt: {what}"),
            DurabilityError::Poisoned => write!(
                f,
                "write-ahead log poisoned: a group-commit fsync failed; \
                 reopen the database to recover"
            ),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Wal(e) => Some(e),
            DurabilityError::Io(e) => Some(e),
            DurabilityError::Disk(e) => Some(e),
            DurabilityError::Corrupt(_) | DurabilityError::Poisoned => None,
        }
    }
}

impl From<WalError> for DurabilityError {
    fn from(e: WalError) -> Self {
        DurabilityError::Wal(e)
    }
}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<DiskError> for DurabilityError {
    fn from(e: DiskError) -> Self {
        DurabilityError::Disk(e)
    }
}

// ---------------------------------------------------------------------------
// durable state attached to a Database
// ---------------------------------------------------------------------------

/// Checkpoint bookkeeping, guarded by its own mutex so writers marking
/// fragments dirty never contend with WAL appends or group-commit fsyncs.
pub(crate) struct CheckpointState {
    /// Generation recorded by the last checkpoint (0 before the first).
    pub(crate) checkpoint_generation: u64,
    /// Fragments whose published state moved past the last checkpoint:
    /// updated, freshly loaded, or reconstructed by WAL replay.  Only
    /// fragments *not* in this set may be evicted, and only their images
    /// may be reused (skipped) by the next checkpoint.
    pub(crate) dirty: HashSet<u32>,
    /// Fragment → image file referenced by the last committed catalog.
    /// A checkpoint reuses these entries for clean fragments instead of
    /// rewriting their images.
    pub(crate) images: HashMap<u32, String>,
    /// The WAL writer's cumulative `bytes_appended` observed by the last
    /// checkpoint.  The background thread skips a tick when the dirty set
    /// is empty *and* this still matches — i.e. nothing was appended (not
    /// even a not-yet-published commit's record) since the last round.
    pub(crate) wal_bytes_at_checkpoint: u64,
}

/// Group-commit coordination: concurrent writers append records, then wait
/// here until one of them (the batch leader) fsyncs the log for everyone
/// who arrived in the gather window.
struct GroupCommit {
    progress: Mutex<GroupProgress>,
    cv: Condvar,
    batches: AtomicU64,
    records: AtomicU64,
    /// Smallest batch so far (`u64::MAX` until the first batch lands).
    batch_min: AtomicU64,
    batch_max: AtomicU64,
    /// Mirrors [`GroupProgress::poisoned`] for readers that must not (or
    /// cannot) take the progress mutex: `Durable::append` checks it while
    /// holding the WAL mutex, so no record can be appended after the
    /// failure path truncated the log (the flag is set before the
    /// truncation, under that same WAL mutex).
    poisoned: AtomicBool,
    /// The log length known to be durable: the file length captured under
    /// the WAL mutex immediately before the last *successful* group fsync
    /// (initially the recovered length at open).  On a failed fsync the
    /// leader truncates the log back to this watermark, taking every
    /// unacknowledged record out of the file so recovery cannot replay an
    /// update whose commit was reported failed.
    synced_len: AtomicU64,
}

#[derive(Default)]
struct GroupProgress {
    /// Append sequence numbers handed out (1-based).
    appended: u64,
    /// Highest sequence covered by a completed fsync.
    synced: u64,
    /// A leader is currently gathering or fsyncing a batch.
    leader: bool,
    /// A group fsync failed; every later commit fails with
    /// [`DurabilityError::Poisoned`] rather than claim a durability the
    /// log cannot provide.  The failing leader truncated the
    /// unacknowledged suffix out of the log (best effort), so recovery
    /// replays only acknowledged commits.
    poisoned: bool,
}

/// The durability attachment of a [`crate::Database`]: directory, WAL
/// writer, checkpoint bookkeeping and options.  Unlike the pre-latch
/// design there is no single big lock: appends take `wal`, dirty marking
/// takes `ckpt`, and a checkpoint never holds either while it copies
/// pages.
pub(crate) struct Durable {
    pub(crate) dir: PathBuf,
    pub(crate) options: DurabilityOptions,
    /// The WAL writer: appends, group-commit fsyncs and checkpoint
    /// rotation serialize here and nowhere else.
    pub(crate) wal: Mutex<WalWriter>,
    /// Checkpoint bookkeeping (dirty set, image table, checkpointed
    /// generation).
    pub(crate) ckpt: Mutex<CheckpointState>,
    /// Held for the duration of a checkpoint so a manual `checkpoint()`
    /// and the background thread never interleave.
    pub(crate) checkpoint_serial: Mutex<()>,
    group: GroupCommit,
}

impl Durable {
    pub(crate) fn new(
        dir: PathBuf,
        options: DurabilityOptions,
        wal: WalWriter,
        checkpoint_generation: u64,
        images: HashMap<u32, String>,
    ) -> Durable {
        let wal_len = wal.len();
        Durable {
            dir,
            options,
            wal: Mutex::new(wal),
            ckpt: Mutex::new(CheckpointState {
                checkpoint_generation,
                dirty: HashSet::new(),
                images,
                wal_bytes_at_checkpoint: 0,
            }),
            checkpoint_serial: Mutex::new(()),
            group: GroupCommit {
                progress: Mutex::new(GroupProgress::default()),
                cv: Condvar::new(),
                batches: AtomicU64::new(0),
                records: AtomicU64::new(0),
                batch_min: AtomicU64::new(u64::MAX),
                batch_max: AtomicU64::new(0),
                poisoned: AtomicBool::new(false),
                // everything recovered from disk at open is durable
                synced_len: AtomicU64::new(wal_len),
            },
        }
    }

    /// Absolute path of a file inside the database directory.
    pub(crate) fn file(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Append one generation-stamped record.  Under
    /// [`SyncPolicy::GroupCommit`] no fsync happens here; the returned
    /// sequence number is what [`Durable::wait_durable`] blocks on.  For
    /// every other policy the append applies the policy inline (exactly
    /// the pre-group-commit behaviour) and the sequence is `0`.
    pub(crate) fn append(&self, generation: u64, payload: &[u8]) -> Result<u64, DurabilityError> {
        let group = matches!(self.options.sync, SyncPolicy::GroupCommit(_));
        {
            let mut wal = self.wal.lock().unwrap();
            // the poison gate shares the WAL mutex with the failure path's
            // truncation: every record is either appended before a failing
            // leader truncates (and is taken back out of the file) or
            // rejected here — none can land durable-looking but
            // unacknowledged after a poisoning
            if group && self.group.poisoned.load(Ordering::Acquire) {
                return Err(DurabilityError::Poisoned);
            }
            wal.append(generation, payload)?;
        }
        if group {
            let mut p = self.group.progress.lock().unwrap();
            p.appended += 1;
            Ok(p.appended)
        } else {
            Ok(0)
        }
    }

    /// Block until the record with append sequence `seq` is durable.  A
    /// no-op except under [`SyncPolicy::GroupCommit`], where the first
    /// waiter becomes the batch leader: it gathers the batch (sleeping in
    /// short slices, stopping as soon as appends stop arriving or the
    /// window is spent), issues one fsync covering every record appended by
    /// then, and wakes the batch.  A commit may only publish after this
    /// returns `Ok`.
    pub(crate) fn wait_durable(&self, seq: u64) -> Result<(), DurabilityError> {
        let SyncPolicy::GroupCommit(window) = self.options.sync else {
            return Ok(());
        };
        let mut p = self.group.progress.lock().unwrap();
        loop {
            if p.synced >= seq {
                return Ok(());
            }
            if p.poisoned {
                return Err(DurabilityError::Poisoned);
            }
            if p.leader {
                p = self.group.cv.wait(p).unwrap();
                continue;
            }
            p.leader = true;
            let mut gathered = p.appended;
            drop(p);
            // adaptive gather: the window is a worst-case bound on added
            // latency, not a mandatory delay.  Yield the CPU so concurrent
            // writers can finish their appends; once appends stop arriving
            // the burst has drained and waiting longer only adds latency
            // (with cheap fsyncs a fixed timer sleep would dominate).
            if !window.is_zero() {
                let gather_deadline = std::time::Instant::now() + window;
                let mut idle = 0u32;
                while idle < 2 && std::time::Instant::now() < gather_deadline {
                    std::thread::yield_now();
                    let appended = self.group.progress.lock().unwrap().appended;
                    if appended == gathered {
                        idle += 1;
                    } else {
                        idle = 0;
                        gathered = appended;
                    }
                }
            }
            // read the batch target *before* the fsync: every sequence
            // number ≤ target was assigned after its record was fully in
            // the file, so the fsync below covers all of them
            let target = self.group.progress.lock().unwrap().appended;
            let res = {
                let mut wal = self.wal.lock().unwrap();
                // captured under the same WAL mutex hold as the fsync, so
                // it is exactly the bytes the fsync covers on success
                let len = wal.len();
                match wal.sync() {
                    Ok(()) => {
                        self.group.synced_len.store(len, Ordering::Release);
                        Ok(())
                    }
                    Err(e) => {
                        // poison first, then truncate the unacknowledged
                        // suffix, all while still holding the WAL mutex:
                        // concurrent appends gate on the flag under this
                        // mutex, so nothing can slip in behind the
                        // truncation.  Every record removed belongs to a
                        // commit that has not published (publish waits for
                        // this fsync) and will be reported failed.
                        self.group.poisoned.store(true, Ordering::Release);
                        let watermark = self.group.synced_len.load(Ordering::Acquire);
                        let rolled_back = wal.truncate_to(watermark).is_ok();
                        Err((e, rolled_back))
                    }
                }
            };
            p = self.group.progress.lock().unwrap();
            p.leader = false;
            match res {
                Ok(()) => {
                    let batch = target - p.synced;
                    self.group.batches.fetch_add(1, Ordering::Relaxed);
                    self.group.records.fetch_add(batch, Ordering::Relaxed);
                    self.group.batch_min.fetch_min(batch, Ordering::Relaxed);
                    self.group.batch_max.fetch_max(batch, Ordering::Relaxed);
                    p.synced = target;
                    self.group.cv.notify_all();
                }
                Err((e, _rolled_back)) => {
                    // if the rollback also failed, the unacknowledged
                    // records may survive in the file; their outcome across
                    // a crash is indeterminate (documented on SyncPolicy)
                    p.poisoned = true;
                    self.group.cv.notify_all();
                    return Err(e.into());
                }
            }
        }
    }

    /// Mark fragments dirty for the next checkpoint.  Call only while
    /// holding the store write lock (lock order: store → ckpt): the
    /// checkpoint captures the dirty set together with its store snapshot
    /// under the store read lock, and that capture is only atomic with
    /// respect to publishes because the marks happen inside the publish
    /// critical section.
    pub(crate) fn mark_dirty(&self, frags: &[u32]) {
        let mut ckpt = self.ckpt.lock().unwrap();
        ckpt.dirty.extend(frags.iter().copied());
    }

    /// True once a group-commit fsync has failed: the log no longer
    /// guarantees durability and every subsequent durable commit fails
    /// with [`DurabilityError::Poisoned`] until the database is reopened.
    pub(crate) fn poisoned(&self) -> bool {
        self.group.poisoned.load(Ordering::Acquire)
    }

    /// Rotate the WAL after a checkpoint: drop records stamped at or
    /// before `generation`, keep later ones, and reset the group-commit
    /// durable watermark to the rotated file's length (the rotation is
    /// written atomically and fsynced, so the whole new file is durable).
    /// Returns the writer's cumulative `bytes_appended`.
    pub(crate) fn rotate_wal(&self, generation: u64) -> Result<u64, DurabilityError> {
        let mut wal = self.wal.lock().unwrap();
        wal.retain_after(generation)?;
        self.group.synced_len.store(wal.len(), Ordering::Release);
        Ok(wal.bytes_appended())
    }

    /// WAL traffic counters: (bytes appended, fsyncs issued).
    pub(crate) fn wal_counters(&self) -> (u64, u64) {
        let wal = self.wal.lock().unwrap();
        (wal.bytes_appended(), wal.syncs())
    }

    /// Group-commit batch histogram: (batches, records, min, max), with
    /// min reported as 0 while no batch has completed.
    pub(crate) fn group_commit_stats(&self) -> (u64, u64, u64, u64) {
        let batches = self.group.batches.load(Ordering::Relaxed);
        let min = self.group.batch_min.load(Ordering::Relaxed);
        (
            batches,
            self.group.records.load(Ordering::Relaxed),
            if batches == 0 { 0 } else { min },
            self.group.batch_max.load(Ordering::Relaxed),
        )
    }
}

// ---------------------------------------------------------------------------
// WAL payload codec
// ---------------------------------------------------------------------------

/// A decoded WAL operation — the logical unit recovery replays.
#[derive(Debug)]
pub(crate) enum WalOp {
    /// `load_document(name, xml)`: re-shred on replay.
    LoadXml { name: String, xml: String },
    /// `load_shredded(doc)`: the document travels as a page-less image.
    LoadDoc { doc: Box<Document> },
    /// One update's pending-update list, in collection order.
    Update { primitives: Vec<UpdatePrimitive> },
}

const OP_LOAD_XML: u8 = 1;
const OP_LOAD_DOC: u8 = 2;
const OP_UPDATE: u8 = 3;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_node(out: &mut Vec<u8>, node: NodeId) {
    out.extend_from_slice(&node.frag.to_le_bytes());
    out.extend_from_slice(&node.pre.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DurabilityError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| DurabilityError::Corrupt("truncated WAL payload".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DurabilityError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DurabilityError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, DurabilityError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| DurabilityError::Corrupt("non-UTF-8 string in WAL payload".into()))
    }

    fn bytes(&mut self) -> Result<&'a [u8], DurabilityError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn node(&mut self) -> Result<NodeId, DurabilityError> {
        let frag = self.u32()?;
        let pre = self.u32()?;
        Ok(NodeId::new(frag, pre))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

const PRIM_INSERT_INTO: u8 = 1;
const PRIM_INSERT_BEFORE: u8 = 2;
const PRIM_INSERT_AFTER: u8 = 3;
const PRIM_DELETE: u8 = 4;
const PRIM_REPLACE_NODE: u8 = 5;
const PRIM_REPLACE_VALUE: u8 = 6;
const PRIM_RENAME: u8 = 7;
const PRIM_SET_ATTRIBUTE: u8 = 8;
const PRIM_REMOVE_ATTRIBUTE: u8 = 9;
const PRIM_RENAME_ATTRIBUTE: u8 = 10;

fn put_primitive(out: &mut Vec<u8>, prim: &UpdatePrimitive) {
    match prim {
        UpdatePrimitive::InsertInto {
            parent,
            first,
            content,
        } => {
            out.push(PRIM_INSERT_INTO);
            put_node(out, *parent);
            out.push(*first as u8);
            put_bytes(out, &encode_document(content));
        }
        UpdatePrimitive::InsertBefore { target, content } => {
            out.push(PRIM_INSERT_BEFORE);
            put_node(out, *target);
            put_bytes(out, &encode_document(content));
        }
        UpdatePrimitive::InsertAfter { target, content } => {
            out.push(PRIM_INSERT_AFTER);
            put_node(out, *target);
            put_bytes(out, &encode_document(content));
        }
        UpdatePrimitive::Delete { target } => {
            out.push(PRIM_DELETE);
            put_node(out, *target);
        }
        UpdatePrimitive::ReplaceNode { target, content } => {
            out.push(PRIM_REPLACE_NODE);
            put_node(out, *target);
            put_bytes(out, &encode_document(content));
        }
        UpdatePrimitive::ReplaceValue { target, value } => {
            out.push(PRIM_REPLACE_VALUE);
            put_node(out, *target);
            put_str(out, value);
        }
        UpdatePrimitive::Rename { target, name } => {
            out.push(PRIM_RENAME);
            put_node(out, *target);
            put_str(out, name);
        }
        UpdatePrimitive::SetAttribute { elem, name, value } => {
            out.push(PRIM_SET_ATTRIBUTE);
            put_node(out, *elem);
            put_str(out, name);
            put_str(out, value);
        }
        UpdatePrimitive::RemoveAttribute { elem, name } => {
            out.push(PRIM_REMOVE_ATTRIBUTE);
            put_node(out, *elem);
            put_str(out, name);
        }
        UpdatePrimitive::RenameAttribute {
            elem,
            name,
            new_name,
        } => {
            out.push(PRIM_RENAME_ATTRIBUTE);
            put_node(out, *elem);
            put_str(out, name);
            put_str(out, new_name);
        }
    }
}

fn read_primitive(r: &mut Reader<'_>) -> Result<UpdatePrimitive, DurabilityError> {
    let tag = r.u8()?;
    Ok(match tag {
        PRIM_INSERT_INTO => {
            let parent = r.node()?;
            let first = r.u8()? != 0;
            let content = decode_document(r.bytes()?)?;
            UpdatePrimitive::InsertInto {
                parent,
                first,
                content,
            }
        }
        PRIM_INSERT_BEFORE => UpdatePrimitive::InsertBefore {
            target: r.node()?,
            content: decode_document(r.bytes()?)?,
        },
        PRIM_INSERT_AFTER => UpdatePrimitive::InsertAfter {
            target: r.node()?,
            content: decode_document(r.bytes()?)?,
        },
        PRIM_DELETE => UpdatePrimitive::Delete { target: r.node()? },
        PRIM_REPLACE_NODE => UpdatePrimitive::ReplaceNode {
            target: r.node()?,
            content: decode_document(r.bytes()?)?,
        },
        PRIM_REPLACE_VALUE => UpdatePrimitive::ReplaceValue {
            target: r.node()?,
            value: r.str()?,
        },
        PRIM_RENAME => UpdatePrimitive::Rename {
            target: r.node()?,
            name: r.str()?,
        },
        PRIM_SET_ATTRIBUTE => UpdatePrimitive::SetAttribute {
            elem: r.node()?,
            name: r.str()?,
            value: r.str()?,
        },
        PRIM_REMOVE_ATTRIBUTE => UpdatePrimitive::RemoveAttribute {
            elem: r.node()?,
            name: r.str()?,
        },
        PRIM_RENAME_ATTRIBUTE => UpdatePrimitive::RenameAttribute {
            elem: r.node()?,
            name: r.str()?,
            new_name: r.str()?,
        },
        other => {
            return Err(DurabilityError::Corrupt(format!(
                "unknown update primitive tag {other}"
            )))
        }
    })
}

/// Encode a `load_document` operation.
pub(crate) fn encode_load_xml(name: &str, xml: &str) -> Vec<u8> {
    let mut out = vec![OP_LOAD_XML];
    put_str(&mut out, name);
    put_str(&mut out, xml);
    out
}

/// Encode a `load_shredded` operation.
pub(crate) fn encode_load_doc(doc: &Document) -> Vec<u8> {
    let mut out = vec![OP_LOAD_DOC];
    put_bytes(&mut out, &encode_document(doc));
    out
}

/// Encode one update's pending-update list.
pub(crate) fn encode_update(primitives: &[UpdatePrimitive]) -> Vec<u8> {
    let mut out = vec![OP_UPDATE];
    out.extend_from_slice(&(primitives.len() as u32).to_le_bytes());
    for prim in primitives {
        put_primitive(&mut out, prim);
    }
    out
}

/// Decode a WAL payload back into the operation it logged.
pub(crate) fn decode_op(payload: &[u8]) -> Result<WalOp, DurabilityError> {
    let mut r = Reader::new(payload);
    let op = match r.u8()? {
        OP_LOAD_XML => WalOp::LoadXml {
            name: r.str()?,
            xml: r.str()?,
        },
        OP_LOAD_DOC => WalOp::LoadDoc {
            doc: Box::new(decode_document(r.bytes()?)?),
        },
        OP_UPDATE => {
            let count = r.u32()? as usize;
            let mut primitives = Vec::with_capacity(count);
            for _ in 0..count {
                primitives.push(read_primitive(&mut r)?);
            }
            WalOp::Update { primitives }
        }
        other => {
            return Err(DurabilityError::Corrupt(format!(
                "unknown WAL operation tag {other}"
            )))
        }
    };
    if !r.done() {
        return Err(DurabilityError::Corrupt(
            "trailing bytes in WAL payload".into(),
        ));
    }
    Ok(op)
}

// ---------------------------------------------------------------------------
// catalog codec
// ---------------------------------------------------------------------------

/// One checkpointed document in the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CatalogDoc {
    pub(crate) frag: u32,
    pub(crate) name: String,
    pub(crate) file: String,
}

/// The decoded checkpoint catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Catalog {
    pub(crate) generation: u64,
    pub(crate) page_size: usize,
    pub(crate) fill_percent: u8,
    pub(crate) docs: Vec<CatalogDoc>,
}

pub(crate) fn encode_catalog(cat: &Catalog) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(CATALOG_MAGIC);
    out.extend_from_slice(&CATALOG_VERSION.to_le_bytes());
    out.extend_from_slice(&cat.generation.to_le_bytes());
    out.extend_from_slice(&(cat.page_size as u64).to_le_bytes());
    out.push(cat.fill_percent);
    out.extend_from_slice(&(cat.docs.len() as u32).to_le_bytes());
    for d in &cat.docs {
        out.extend_from_slice(&d.frag.to_le_bytes());
        put_str(&mut out, &d.name);
        put_str(&mut out, &d.file);
    }
    // whole-file checksum so a damaged catalog is a structured error
    let crc = mxq_wal::crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

pub(crate) fn decode_catalog(bytes: &[u8]) -> Result<Catalog, DurabilityError> {
    if bytes.len() < 4 {
        return Err(DurabilityError::Corrupt("catalog too short".into()));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if mxq_wal::crc32(body) != crc {
        return Err(DurabilityError::Corrupt(
            "catalog failed its checksum".into(),
        ));
    }
    let mut r = Reader::new(body);
    if r.take(4)? != CATALOG_MAGIC {
        return Err(DurabilityError::Corrupt("catalog has bad magic".into()));
    }
    let version = u16::from_le_bytes(r.take(2)?.try_into().unwrap());
    if version != CATALOG_VERSION {
        return Err(DurabilityError::Corrupt(format!(
            "unsupported catalog version {version}"
        )));
    }
    let generation = u64::from_le_bytes(r.take(8)?.try_into().unwrap());
    let page_size = u64::from_le_bytes(r.take(8)?.try_into().unwrap()) as usize;
    let fill_percent = r.u8()?;
    let count = r.u32()? as usize;
    let mut docs = Vec::with_capacity(count);
    for _ in 0..count {
        let frag = r.u32()?;
        let name = r.str()?;
        let file = r.str()?;
        docs.push(CatalogDoc { frag, name, file });
    }
    if !r.done() {
        return Err(DurabilityError::Corrupt("trailing bytes in catalog".into()));
    }
    Ok(Catalog {
        generation,
        page_size,
        fill_percent,
        docs,
    })
}

/// Read and decode the catalog if one exists.
pub(crate) fn read_catalog(dir: &Path) -> Result<Option<Catalog>, DurabilityError> {
    match mxq_wal::read_optional(&dir.join(CATALOG_FILE))? {
        Some(bytes) => Ok(Some(decode_catalog(&bytes)?)),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxq_xmldb::{shred, ShredOptions};

    #[test]
    fn catalog_round_trip_and_corruption() {
        let cat = Catalog {
            generation: 42,
            page_size: 64,
            fill_percent: 75,
            docs: vec![
                CatalogDoc {
                    frag: 1,
                    name: "a.xml".into(),
                    file: "doc-1.mxq".into(),
                },
                CatalogDoc {
                    frag: 2,
                    name: "b.xml".into(),
                    file: "doc-2.mxq".into(),
                },
            ],
        };
        let bytes = encode_catalog(&cat);
        assert_eq!(decode_catalog(&bytes).unwrap(), cat);
        let mut bad = bytes.clone();
        bad[10] ^= 1;
        assert!(matches!(
            decode_catalog(&bad),
            Err(DurabilityError::Corrupt(_))
        ));
    }

    #[test]
    fn wal_ops_round_trip() {
        let frag_doc = shred(
            "#update-content",
            "<bidder n=\"1\"><date>x</date></bidder>",
            &ShredOptions::default(),
        )
        .unwrap();
        let prims = vec![
            UpdatePrimitive::InsertInto {
                parent: NodeId::new(3, 17),
                first: true,
                content: frag_doc.clone(),
            },
            UpdatePrimitive::Delete {
                target: NodeId::new(3, 4),
            },
            UpdatePrimitive::Rename {
                target: NodeId::new(1, 2),
                name: "renamed".into(),
            },
            UpdatePrimitive::SetAttribute {
                elem: NodeId::new(1, 9),
                name: "k".into(),
                value: "v".into(),
            },
            UpdatePrimitive::RenameAttribute {
                elem: NodeId::new(1, 9),
                name: "old".into(),
                new_name: "new".into(),
            },
        ];
        let payload = encode_update(&prims);
        match decode_op(&payload).unwrap() {
            WalOp::Update { primitives } => {
                assert_eq!(primitives.len(), prims.len());
                match (&primitives[0], &prims[0]) {
                    (
                        UpdatePrimitive::InsertInto {
                            parent: a,
                            first: fa,
                            content: ca,
                        },
                        UpdatePrimitive::InsertInto {
                            parent: b,
                            first: fb,
                            content: cb,
                        },
                    ) => {
                        assert_eq!(a, b);
                        assert_eq!(fa, fb);
                        assert_eq!(
                            mxq_xmldb::serialize_document(ca),
                            mxq_xmldb::serialize_document(cb)
                        );
                    }
                    _ => panic!("primitive kind changed in round trip"),
                }
            }
            other => panic!("expected update op, got {other:?}"),
        }

        let payload = encode_load_xml("doc.xml", "<a><b/></a>");
        match decode_op(&payload).unwrap() {
            WalOp::LoadXml { name, xml } => {
                assert_eq!(name, "doc.xml");
                assert_eq!(xml, "<a><b/></a>");
            }
            other => panic!("expected load op, got {other:?}"),
        }

        assert!(decode_op(&[99]).is_err());
        assert!(decode_op(&payload[..payload.len() - 1]).is_err());
    }

    #[test]
    fn options_default_to_always_sync() {
        let opts = DurabilityOptions::default();
        assert_eq!(opts.sync, SyncPolicy::Always);
        assert!(opts.memory_budget.is_none());
    }
}
