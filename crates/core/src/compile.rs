//! The loop-lifting compiler: XQuery AST → relational algebra plans.
//!
//! The compilation scheme is the one of Section 2.1 (after \[17\], "XQuery on
//! SQL Hosts"): every subexpression is compiled relative to the *loop
//! relation* of its scope; `for` clauses create a new, finer loop via the
//! ρ-shaped [`Op::NestFromSeq`] operator; variables of enclosing scopes are
//! lifted into the inner scope with a join over the nest map
//! ([`Op::LiftThrough`]); results of the loop body are mapped back with
//! [`Op::BackMap`].
//!
//! Two of the paper's optimizations are applied here because they are
//! decisions about plan *shape*:
//!
//! * **Join recognition** (Section 4.1): when a `for` source is independent
//!   of all enclosing loop variables and the `where` clause is a general
//!   comparison separable into an outer-only and an inner-only operand, the
//!   Cartesian-product-shaped nesting is replaced by [`Op::NestFromJoin`],
//!   which evaluates the comparison as a relational join with existential
//!   semantics (Section 4.2).  This detection is driven by the `indep`
//!   property (variable dependency analysis) and is therefore immune to
//!   syntactic variation of the join predicate.
//! * **Nametest pushdown** (Section 3.2) is a pure execution-time choice and
//!   lives in the executor; the compiler simply keeps the name test attached
//!   to the axis step.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use mxq_engine::agg::AggFunc;
use mxq_engine::{CmpOp, Item};
use mxq_staircase::{Axis, NodeTest};

use crate::algebra::{NumFnKind, Op, Plan, PlanRef, PosFilterKind, Props, StrFnKind};
use crate::ast::*;
use crate::config::ExecConfig;
use crate::pul::{UpdateKind, UpdatePlan, UpdateStatementPlan, UpdateTarget};

/// Errors raised during compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Reference to a variable that is not in scope.
    UnknownVariable(String),
    /// Call to an unknown function.
    UnknownFunction(String),
    /// A construct outside the supported subset.
    Unsupported(String),
    /// User-defined function recursion exceeded the inlining depth limit.
    RecursionLimit(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownVariable(v) => write!(f, "unknown variable ${v}"),
            CompileError::UnknownFunction(n) => write!(f, "unknown function {n}()"),
            CompileError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
            CompileError::RecursionLimit(n) => {
                write!(
                    f,
                    "recursive user function {n}() exceeds the inlining depth limit"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

type CResult<T> = Result<T, CompileError>;

/// Compiled `order by` keys: one plan per key, paired with its descending
/// flag, major key first.
type OrderKeys = Vec<(PlanRef, bool)>;

/// The variable environment of one scope: the loop relation plus the plan of
/// every visible variable (all relative to that loop).
#[derive(Clone)]
struct Env {
    loop_: PlanRef,
    vars: HashMap<String, PlanRef>,
}

/// The compiler: holds the plan-node counter, the configuration and the
/// user-defined function table.
pub struct Compiler {
    next_id: usize,
    config: ExecConfig,
    functions: HashMap<String, FunctionDecl>,
    inline_depth: usize,
    externals: Vec<String>,
}

/// Maximum user-function inlining depth (recursion guard).
const MAX_INLINE_DEPTH: usize = 32;

impl Compiler {
    /// Create a compiler with the given configuration.
    pub fn new(config: ExecConfig) -> Self {
        Compiler {
            next_id: 0,
            config,
            functions: HashMap::new(),
            inline_depth: 0,
            externals: Vec::new(),
        }
    }

    /// Names of the external variables declared by the last compiled prolog
    /// (`declare variable $x external`), in declaration order.  Callers use
    /// this to validate bindings before execution.
    pub fn external_variables(&self) -> &[String] {
        &self.externals
    }

    /// Compile the prolog variable declarations into the environment.
    fn compile_prolog_vars(&mut self, vars: &[VarDecl], env: &mut Env) -> CResult<()> {
        for decl in vars {
            let plan = if decl.external {
                self.externals.push(decl.name.clone());
                let default = match &decl.init {
                    Some(e) => Some(self.compile(e, env)?),
                    None => None,
                };
                self.plan(Op::ExternalVar {
                    loop_: env.loop_.clone(),
                    name: decl.name.clone(),
                    default,
                })
            } else {
                let init = decl.init.as_ref().ok_or_else(|| {
                    CompileError::Unsupported(format!(
                        "variable ${} declared without a value",
                        decl.name
                    ))
                })?;
                self.compile(init, env)?
            };
            env.vars.insert(decl.name.clone(), plan);
        }
        Ok(())
    }

    /// Compile a full query (prolog + body) into a plan whose result is the
    /// `iter|pos|item` encoding of the query result (a single iteration).
    pub fn compile_query(&mut self, query: &Query) -> CResult<PlanRef> {
        for f in &query.functions {
            self.functions.insert(f.name.clone(), f.clone());
        }
        let loop_one = self.plan(Op::LoopOne);
        let mut env = Env {
            loop_: loop_one,
            vars: HashMap::new(),
        };
        self.compile_prolog_vars(&query.variables, &mut env)?;
        self.compile(&query.body, &env)
    }

    /// Compile an update query: prolog + updating statements.  Target and
    /// source expressions become ordinary value plans (evaluated in the
    /// singleton loop); the statement kinds stay symbolic so the engine can
    /// collect update primitives instead of a result sequence.
    pub fn compile_update(&mut self, query: &UpdateQuery) -> CResult<UpdatePlan> {
        for f in &query.functions {
            self.functions.insert(f.name.clone(), f.clone());
        }
        let loop_one = self.plan(Op::LoopOne);
        let mut env = Env {
            loop_: loop_one,
            vars: HashMap::new(),
        };
        self.compile_prolog_vars(&query.variables, &mut env)?;
        let mut statements = Vec::new();
        for stmt in &query.statements {
            statements.push(match stmt {
                UpdateStmt::Insert {
                    source,
                    location,
                    target,
                } => {
                    let kind = match location {
                        InsertLocation::FirstInto => UpdateKind::InsertInto { first: true },
                        InsertLocation::LastInto | InsertLocation::Into => {
                            UpdateKind::InsertInto { first: false }
                        }
                        InsertLocation::Before => UpdateKind::InsertBefore,
                        InsertLocation::After => UpdateKind::InsertAfter,
                    };
                    UpdateStatementPlan {
                        kind,
                        target: self.compile_update_target(target, &env, false)?,
                        source: Some(self.compile(source, &env)?),
                    }
                }
                UpdateStmt::Delete { target } => UpdateStatementPlan {
                    kind: UpdateKind::Delete,
                    target: self.compile_update_target(target, &env, true)?,
                    source: None,
                },
                UpdateStmt::ReplaceNode { target, source } => UpdateStatementPlan {
                    kind: UpdateKind::ReplaceNode,
                    target: self.compile_update_target(target, &env, false)?,
                    source: Some(self.compile(source, &env)?),
                },
                UpdateStmt::ReplaceValue { target, source } => UpdateStatementPlan {
                    kind: UpdateKind::ReplaceValue,
                    target: self.compile_update_target(target, &env, true)?,
                    source: Some(self.compile(source, &env)?),
                },
                UpdateStmt::Rename { target, new_name } => UpdateStatementPlan {
                    kind: UpdateKind::Rename,
                    target: self.compile_update_target(target, &env, true)?,
                    source: Some(self.compile(new_name, &env)?),
                },
            });
        }
        Ok(UpdatePlan { statements })
    }

    /// Compile an update target expression.  A path ending in an `@name`
    /// attribute step is split into the owning-element plan plus the
    /// attribute name (attributes are not first-class nodes in this engine),
    /// which is only legal for delete / replace value / rename.
    fn compile_update_target(
        &mut self,
        target: &Expr,
        env: &Env,
        allow_attr: bool,
    ) -> CResult<UpdateTarget> {
        if let Expr::Path { start, steps } = target {
            if let Some(last) = steps.last() {
                if last.axis == Axis::Attribute {
                    if !allow_attr {
                        return Err(CompileError::Unsupported(
                            "attribute targets are only supported for \
                             delete / replace value / rename"
                                .into(),
                        ));
                    }
                    let NodeTest::Named(name) = &last.test else {
                        return Err(CompileError::Unsupported(
                            "update targets need a named attribute (no @*)".into(),
                        ));
                    };
                    if !last.predicates.is_empty() {
                        return Err(CompileError::Unsupported(
                            "predicates on an attribute update target".into(),
                        ));
                    }
                    let elem = if steps.len() == 1 {
                        let start = start.as_ref().ok_or_else(|| {
                            CompileError::Unsupported("absolute update target path".into())
                        })?;
                        self.compile(start, env)?
                    } else {
                        let elem_expr = Expr::Path {
                            start: start.clone(),
                            steps: steps[..steps.len() - 1].to_vec(),
                        };
                        self.compile(&elem_expr, env)?
                    };
                    return Ok(UpdateTarget::Attribute {
                        elem,
                        name: name.to_string(),
                    });
                }
            }
        }
        Ok(UpdateTarget::Nodes(self.compile(target, env)?))
    }

    fn plan(&mut self, op: Op) -> PlanRef {
        let props = infer_props(&op);
        let id = self.next_id;
        self.next_id += 1;
        Arc::new(Plan { id, op, props })
    }

    fn const_seq(&mut self, loop_: &PlanRef, items: Vec<Item>) -> PlanRef {
        self.plan(Op::ConstSeq {
            loop_: loop_.clone(),
            items,
        })
    }

    // ---------------------------------------------------------------------
    // expressions
    // ---------------------------------------------------------------------

    fn compile(&mut self, expr: &Expr, env: &Env) -> CResult<PlanRef> {
        match expr {
            Expr::Literal(lit) => {
                let item = match lit {
                    Literal::Integer(i) => Item::Int(*i),
                    Literal::Double(d) => Item::Dbl(*d),
                    Literal::String(s) => Item::str(s.as_str()),
                };
                Ok(self.const_seq(&env.loop_, vec![item]))
            }
            Expr::Empty => Ok(self.const_seq(&env.loop_, vec![])),
            Expr::Var(name) => env
                .vars
                .get(name)
                .cloned()
                .ok_or_else(|| CompileError::UnknownVariable(name.clone())),
            Expr::Sequence(parts) => {
                let compiled: Vec<PlanRef> = parts
                    .iter()
                    .map(|p| self.compile(p, env))
                    .collect::<CResult<_>>()?;
                Ok(self.plan(Op::Union { parts: compiled }))
            }
            Expr::Flwor {
                clauses,
                where_,
                order_by,
                ret,
            } => {
                let (plan, _leftover_key) =
                    self.compile_clauses(clauses, where_.as_deref(), order_by.as_ref(), ret, env)?;
                Ok(plan)
            }
            Expr::If { cond, then, els } => self.compile_if(cond, then, els, env),
            Expr::Quantified {
                some,
                var,
                source,
                satisfies,
            } => self.compile_quantified(*some, var, source, satisfies, env),
            Expr::Arith { op, l, r } => {
                let l = self.compile(l, env)?;
                let r = self.compile(r, env)?;
                Ok(self.plan(Op::Arith { op: *op, l, r }))
            }
            Expr::Neg(e) => {
                let e = self.compile(e, env)?;
                Ok(self.plan(Op::Neg { e }))
            }
            Expr::Comparison { kind, l, r } => {
                let lp = self.compile(l, env)?;
                let rp = self.compile(r, env)?;
                match kind {
                    CompKind::General(op) => {
                        let lp = self.plan(Op::Atomize { seq: lp });
                        let rp = self.plan(Op::Atomize { seq: rp });
                        Ok(self.plan(Op::GeneralCmp {
                            op: *op,
                            l: lp,
                            r: rp,
                            loop_: env.loop_.clone(),
                        }))
                    }
                    CompKind::Value(op) => {
                        let lp = self.plan(Op::Atomize { seq: lp });
                        let rp = self.plan(Op::Atomize { seq: rp });
                        Ok(self.plan(Op::ValueCmp {
                            op: *op,
                            l: lp,
                            r: rp,
                        }))
                    }
                    CompKind::NodeBefore => Ok(self.plan(Op::ValueCmp {
                        op: CmpOp::Lt,
                        l: lp,
                        r: rp,
                    })),
                    CompKind::NodeAfter => Ok(self.plan(Op::ValueCmp {
                        op: CmpOp::Gt,
                        l: lp,
                        r: rp,
                    })),
                    CompKind::NodeIs => Ok(self.plan(Op::ValueCmp {
                        op: CmpOp::Eq,
                        l: lp,
                        r: rp,
                    })),
                }
            }
            Expr::Logical { is_and, l, r } => {
                let l = self.compile(l, env)?;
                let r = self.compile(r, env)?;
                let l = self.plan(Op::Ebv {
                    seq: l,
                    loop_: env.loop_.clone(),
                });
                let r = self.plan(Op::Ebv {
                    seq: r,
                    loop_: env.loop_.clone(),
                });
                Ok(self.plan(Op::BoolAndOr {
                    is_and: *is_and,
                    l,
                    r,
                    loop_: env.loop_.clone(),
                }))
            }
            Expr::Path { start, steps } => {
                let mut ctx = match start {
                    Some(s) => self.compile(s, env)?,
                    None => {
                        return Err(CompileError::Unsupported(
                            "absolute paths (use doc(\"…\") as the path root)".into(),
                        ))
                    }
                };
                for step in collapse_descendant_steps(steps) {
                    ctx = self.compile_step(ctx, &step, env)?;
                }
                Ok(ctx)
            }
            Expr::FunCall { name, args } => self.compile_funcall(name, args, env),
            Expr::Element(ctor) => self.compile_element(ctor, env),
        }
    }

    // ---------------------------------------------------------------------
    // FLWOR
    // ---------------------------------------------------------------------

    /// Compile the remaining clause list.  Returns the plan plus the
    /// optional order-by keys (each keyed by the iterations of the scope
    /// they were compiled in) that the innermost enclosing `for` clause must
    /// consume.
    fn compile_clauses(
        &mut self,
        clauses: &[Clause],
        where_: Option<&Expr>,
        order_by: Option<&OrderSpec>,
        ret: &Expr,
        env: &Env,
    ) -> CResult<(PlanRef, Option<OrderKeys>)> {
        match clauses.first() {
            None => {
                // innermost scope: apply where, compile the order key and the return clause
                let mut env = env.clone();
                if let Some(w) = where_ {
                    let cond = self.compile(w, &env)?;
                    let cond = self.plan(Op::Ebv {
                        seq: cond,
                        loop_: env.loop_.clone(),
                    });
                    let iters = self.plan(Op::SelectIters {
                        cond,
                        loop_: env.loop_.clone(),
                        negate: false,
                    });
                    env = self.restrict_env(&env, &iters);
                }
                let order_keys = match order_by {
                    Some(spec) => Some(self.compile_order_keys(spec, &env)?),
                    None => None,
                };
                let body = self.compile(ret, &env)?;
                Ok((body, order_keys))
            }
            Some(Clause::Let { var, value }) => {
                let v = self.compile(value, env)?;
                let mut env2 = env.clone();
                env2.vars.insert(var.clone(), v);
                self.compile_clauses(&clauses[1..], where_, order_by, ret, &env2)
            }
            Some(Clause::For { var, at, source }) => {
                // Join recognition (Section 4.1): applicable when this is the
                // last clause, the source is independent of all in-scope
                // variables, and the where clause is a separable general
                // comparison.
                if self.config.join_recognition && clauses.len() == 1 {
                    if let Some(w) = where_ {
                        if let Some(plan) = self.try_compile_join(
                            var,
                            at.as_deref(),
                            source,
                            w,
                            order_by,
                            ret,
                            env,
                        )? {
                            return Ok((plan, None));
                        }
                    }
                }

                let q1 = self.compile(source, env)?;
                let nest = self.plan(Op::NestFromSeq { seq: q1 });
                let inner_loop = self.plan(Op::NestLoop { nest: nest.clone() });
                let mut inner_vars = HashMap::new();
                for (name, plan) in &env.vars {
                    inner_vars.insert(
                        name.clone(),
                        self.plan(Op::LiftThrough {
                            seq: plan.clone(),
                            nest: nest.clone(),
                        }),
                    );
                }
                inner_vars.insert(var.clone(), self.plan(Op::NestVar { nest: nest.clone() }));
                if let Some(at_var) = at {
                    inner_vars.insert(
                        at_var.clone(),
                        self.plan(Op::NestVarPos { nest: nest.clone() }),
                    );
                }
                let env_inner = Env {
                    loop_: inner_loop,
                    vars: inner_vars,
                };
                let remaining_has_for =
                    clauses[1..].iter().any(|c| matches!(c, Clause::For { .. }));
                let (body, order_keys) =
                    self.compile_clauses(&clauses[1..], where_, order_by, ret, &env_inner)?;
                // the innermost `for` consumes the order keys
                let (keys_here, pass_up) = if remaining_has_for {
                    (None, order_keys)
                } else {
                    (order_keys, None)
                };
                let plan = self.plan(Op::BackMap {
                    body,
                    nest,
                    order_keys: keys_here.unwrap_or_default(),
                });
                Ok((plan, pass_up))
            }
        }
    }

    /// Attempt the join-recognised compilation of
    /// `for $v in SOURCE where L op R return RET [order by …]`.
    /// Returns `Ok(None)` when the pattern does not apply.
    #[allow(clippy::too_many_arguments)]
    fn try_compile_join(
        &mut self,
        var: &str,
        at: Option<&str>,
        source: &Expr,
        where_: &Expr,
        order_by: Option<&OrderSpec>,
        ret: &Expr,
        env: &Env,
    ) -> CResult<Option<PlanRef>> {
        // the source must be independent of every in-scope variable (indep)
        let src_vars = source.free_vars();
        if src_vars.iter().any(|v| env.vars.contains_key(v)) {
            return Ok(None);
        }
        let Expr::Comparison {
            kind: CompKind::General(op),
            l,
            r,
        } = where_
        else {
            return Ok(None);
        };
        let lv = l.free_vars();
        let rv = r.free_vars();
        let uses_var = |vs: &[String]| vs.iter().any(|v| v == var);
        let only_var = |vs: &[String]| vs.iter().all(|v| v == var);
        let no_var = |vs: &[String]| !uses_var(vs);
        let in_scope = |vs: &[String]| vs.iter().all(|v| env.vars.contains_key(v));
        // decide which side belongs to the outer scope and which to $var
        let (outer_expr, var_expr, op) =
            if no_var(&lv) && in_scope(&lv) && uses_var(&rv) && only_var(&rv) {
                (l.as_ref(), r.as_ref(), *op)
            } else if no_var(&rv) && in_scope(&rv) && uses_var(&lv) && only_var(&lv) {
                (r.as_ref(), l.as_ref(), op.swap())
            } else {
                return Ok(None);
            };

        // SOURCE evaluated once, in the singleton loop
        let loop_one = self.plan(Op::LoopOne);
        let env_single = Env {
            loop_: loop_one,
            vars: HashMap::new(),
        };
        let source_single = self.compile(source, &env_single)?;

        // the $var-side operand, keyed by source row
        let src_nest = self.plan(Op::NestFromSeq {
            seq: source_single.clone(),
        });
        let src_loop = self.plan(Op::NestLoop {
            nest: src_nest.clone(),
        });
        let mut right_vars = HashMap::new();
        right_vars.insert(
            var.to_string(),
            self.plan(Op::NestVar {
                nest: src_nest.clone(),
            }),
        );
        let right_env = Env {
            loop_: src_loop,
            vars: right_vars,
        };
        let right = self.compile(var_expr, &right_env)?;
        let right = self.plan(Op::Atomize { seq: right });

        // the outer-side operand, keyed by the enclosing loop
        let left = self.compile(outer_expr, env)?;
        let left = self.plan(Op::Atomize { seq: left });

        let nest = self.plan(Op::NestFromJoin {
            source: source_single,
            outer_loop: env.loop_.clone(),
            left,
            right,
            op,
            dict_join: false,
        });

        // inner scope from the join-built nest, same as the standard case
        let inner_loop = self.plan(Op::NestLoop { nest: nest.clone() });
        let mut inner_vars = HashMap::new();
        for (name, plan) in &env.vars {
            inner_vars.insert(
                name.clone(),
                self.plan(Op::LiftThrough {
                    seq: plan.clone(),
                    nest: nest.clone(),
                }),
            );
        }
        inner_vars.insert(
            var.to_string(),
            self.plan(Op::NestVar { nest: nest.clone() }),
        );
        if let Some(at_var) = at {
            inner_vars.insert(
                at_var.to_string(),
                self.plan(Op::NestVarPos { nest: nest.clone() }),
            );
        }
        let env_inner = Env {
            loop_: inner_loop,
            vars: inner_vars,
        };
        let order_keys = match order_by {
            Some(spec) => self.compile_order_keys(spec, &env_inner)?,
            None => Vec::new(),
        };
        let body = self.compile(ret, &env_inner)?;
        Ok(Some(self.plan(Op::BackMap {
            body,
            nest,
            order_keys,
        })))
    }

    /// Compile every key of an `order by` clause in the given scope; each
    /// key is atomised so ordering compares values, not nodes.
    fn compile_order_keys(&mut self, spec: &OrderSpec, env: &Env) -> CResult<OrderKeys> {
        spec.keys
            .iter()
            .map(|k| {
                let key = self.compile(&k.key, env)?;
                let key = self.plan(Op::Atomize { seq: key });
                Ok((key, k.descending))
            })
            .collect()
    }

    fn restrict_env(&mut self, env: &Env, iters: &PlanRef) -> Env {
        let mut vars = HashMap::new();
        for (name, plan) in &env.vars {
            vars.insert(
                name.clone(),
                self.plan(Op::RestrictToIters {
                    seq: plan.clone(),
                    iters: iters.clone(),
                }),
            );
        }
        Env {
            loop_: iters.clone(),
            vars,
        }
    }

    fn compile_if(&mut self, cond: &Expr, then: &Expr, els: &Expr, env: &Env) -> CResult<PlanRef> {
        let c = self.compile(cond, env)?;
        let c = self.plan(Op::Ebv {
            seq: c,
            loop_: env.loop_.clone(),
        });
        let then_iters = self.plan(Op::SelectIters {
            cond: c.clone(),
            loop_: env.loop_.clone(),
            negate: false,
        });
        let else_iters = self.plan(Op::SelectIters {
            cond: c,
            loop_: env.loop_.clone(),
            negate: true,
        });
        let env_then = self.restrict_env(env, &then_iters);
        let env_else = self.restrict_env(env, &else_iters);
        let t = self.compile(then, &env_then)?;
        let e = self.compile(els, &env_else)?;
        Ok(self.plan(Op::Union { parts: vec![t, e] }))
    }

    fn compile_quantified(
        &mut self,
        some: bool,
        var: &str,
        source: &Expr,
        satisfies: &Expr,
        env: &Env,
    ) -> CResult<PlanRef> {
        // some $v in S satisfies P  ≡  exists(for $v in S where P return 1)
        // every $v in S satisfies P ≡  not(some $v in S satisfies not(P))
        let inner_pred = if some {
            satisfies.clone()
        } else {
            Expr::FunCall {
                name: "not".into(),
                args: vec![satisfies.clone()],
            }
        };
        let flwor = Expr::Flwor {
            clauses: vec![Clause::For {
                var: var.to_string(),
                at: None,
                source: source.clone(),
            }],
            where_: Some(Box::new(inner_pred)),
            order_by: None,
            ret: Box::new(Expr::integer(1)),
        };
        let seq = self.compile(&flwor, env)?;
        let exists = self.plan(Op::Ebv {
            seq,
            loop_: env.loop_.clone(),
        });
        if some {
            Ok(exists)
        } else {
            Ok(self.plan(Op::BoolNot {
                e: exists,
                loop_: env.loop_.clone(),
            }))
        }
    }

    // ---------------------------------------------------------------------
    // path steps
    // ---------------------------------------------------------------------

    fn compile_step(&mut self, ctx: PlanRef, step: &Step, env: &Env) -> CResult<PlanRef> {
        // Filter expressions (`expr[pred]`) reach us as a synthetic
        // `self::node()` step.  Their predicates filter the *sequence
        // itself*: positions are relative to the whole sequence per
        // iteration, not to a per-context-node group, and the result keeps
        // the sequence order (no document re-ordering, no duplicate
        // elimination — the input may not even hold nodes).
        if step.axis == Axis::SelfAxis
            && step.test == NodeTest::AnyKind
            && !step.predicates.is_empty()
        {
            let mut result = ctx;
            for pred in &step.predicates {
                result = self.compile_predicate(result, pred, env)?;
            }
            return Ok(result);
        }

        // the raw step (axis + node test)
        let apply_axis = |c: &mut Self, ctx: PlanRef| -> PlanRef {
            if step.axis == Axis::Attribute {
                let name = match &step.test {
                    NodeTest::Named(n) => Some(n.to_string()),
                    _ => None,
                };
                c.plan(Op::AttrStep { ctx, name })
            } else {
                c.plan(Op::AxisStep {
                    ctx,
                    axis: step.axis,
                    test: step.test.clone(),
                })
            }
        };

        if step.predicates.is_empty() {
            return Ok(apply_axis(self, ctx));
        }

        // Steps with predicates: open a nested scope per *context node* so
        // that positional predicates are relative to the correct sibling
        // group (this is the XQuery Core normalisation of path steps).
        let nest = self.plan(Op::NestFromSeq { seq: ctx });
        let inner_loop = self.plan(Op::NestLoop { nest: nest.clone() });
        let dot = self.plan(Op::NestVar { nest: nest.clone() });
        let mut inner_vars: HashMap<String, PlanRef> = HashMap::new();
        for (name, plan) in &env.vars {
            inner_vars.insert(
                name.clone(),
                self.plan(Op::LiftThrough {
                    seq: plan.clone(),
                    nest: nest.clone(),
                }),
            );
        }
        inner_vars.insert(".".to_string(), dot.clone());
        let mut env_inner = Env {
            loop_: inner_loop,
            vars: inner_vars,
        };

        let mut result = apply_axis(self, dot);
        for pred in &step.predicates {
            result = self.compile_predicate(result, pred, &env_inner)?;
            // subsequent predicates see the filtered sequence; the loop stays
            env_inner.vars.insert("__step".into(), result.clone());
        }

        let mapped = self.plan(Op::BackMap {
            body: result,
            nest,
            order_keys: Vec::new(),
        });
        // restore document order / duplicate freedom per original iteration
        Ok(self.plan(Op::DocOrderDistinct { seq: mapped }))
    }

    /// Apply one predicate to a step result inside its per-context-node scope.
    fn compile_predicate(&mut self, seq: PlanRef, pred: &Expr, env: &Env) -> CResult<PlanRef> {
        // positional forms
        if let Some(kind) = positional_form(pred) {
            return Ok(self.plan(Op::PosFilter { seq, kind }));
        }
        // general boolean predicate: one more nesting, per candidate node
        let nest = self.plan(Op::NestFromSeq { seq });
        let inner_loop = self.plan(Op::NestLoop { nest: nest.clone() });
        let dot = self.plan(Op::NestVar { nest: nest.clone() });
        let mut vars = HashMap::new();
        for (name, plan) in &env.vars {
            vars.insert(
                name.clone(),
                self.plan(Op::LiftThrough {
                    seq: plan.clone(),
                    nest: nest.clone(),
                }),
            );
        }
        vars.insert(".".into(), dot);
        let env_pred = Env {
            loop_: inner_loop.clone(),
            vars,
        };
        let cond = self.compile(pred, &env_pred)?;
        let cond = self.plan(Op::Ebv {
            seq: cond,
            loop_: inner_loop,
        });
        let cand_loop = self.plan_nestloop(&nest);
        let keep = self.plan(Op::SelectIters {
            cond,
            loop_: cand_loop,
            negate: false,
        });
        let kept_var = self.plan(Op::NestVar { nest: nest.clone() });
        let restricted = self.plan(Op::RestrictToIters {
            seq: kept_var,
            iters: keep,
        });
        // map the surviving candidates back to the per-context-node scope
        Ok(self.plan(Op::BackMap {
            body: restricted,
            nest,
            order_keys: Vec::new(),
        }))
    }

    fn plan_nestloop(&mut self, nest: &PlanRef) -> PlanRef {
        self.plan(Op::NestLoop { nest: nest.clone() })
    }

    // ---------------------------------------------------------------------
    // functions
    // ---------------------------------------------------------------------

    fn compile_funcall(&mut self, name: &str, args: &[Expr], env: &Env) -> CResult<PlanRef> {
        let agg = |f: AggFunc| -> Option<AggFunc> { Some(f) };
        match name {
            "doc" | "document" | "fn:doc" => {
                let doc_name = match args.first() {
                    Some(Expr::Literal(Literal::String(s))) => s.clone(),
                    _ => {
                        return Err(CompileError::Unsupported(
                            "doc() requires a string literal argument".into(),
                        ))
                    }
                };
                Ok(self.plan(Op::DocRoot {
                    loop_: env.loop_.clone(),
                    name: doc_name,
                }))
            }
            "count" | "sum" | "avg" | "min" | "max" => {
                let func = match name {
                    "count" => agg(AggFunc::Count),
                    "sum" => agg(AggFunc::Sum),
                    "avg" => agg(AggFunc::Avg),
                    "min" => agg(AggFunc::Min),
                    _ => agg(AggFunc::Max),
                }
                .unwrap();
                let seq = self.compile_arg(args, 0, env)?;
                let seq = if func == AggFunc::Count {
                    seq
                } else {
                    let atom = self.plan(Op::Atomize { seq });
                    self.plan(Op::CastNumber { seq: atom })
                };
                Ok(self.plan(Op::Aggregate {
                    func,
                    seq,
                    loop_: env.loop_.clone(),
                }))
            }
            "exists" => {
                let seq = self.compile_arg(args, 0, env)?;
                Ok(self.plan(Op::Ebv {
                    seq,
                    loop_: env.loop_.clone(),
                }))
            }
            "empty" => {
                let seq = self.compile_arg(args, 0, env)?;
                Ok(self.plan(Op::Empty {
                    seq,
                    loop_: env.loop_.clone(),
                }))
            }
            "not" => {
                let seq = self.compile_arg(args, 0, env)?;
                Ok(self.plan(Op::BoolNot {
                    e: seq,
                    loop_: env.loop_.clone(),
                }))
            }
            "boolean" => {
                let seq = self.compile_arg(args, 0, env)?;
                Ok(self.plan(Op::Ebv {
                    seq,
                    loop_: env.loop_.clone(),
                }))
            }
            "true" => Ok(self.const_seq(&env.loop_, vec![Item::Bool(true)])),
            "false" => Ok(self.const_seq(&env.loop_, vec![Item::Bool(false)])),
            "zero-or-one" | "exactly-one" | "one-or-more" => self.compile_arg(args, 0, env),
            "data" => {
                let seq = self.compile_arg(args, 0, env)?;
                Ok(self.plan(Op::Atomize { seq }))
            }
            "string" => {
                let seq = self.compile_arg(args, 0, env)?;
                Ok(self.plan(Op::StringValue {
                    seq,
                    loop_: env.loop_.clone(),
                }))
            }
            "number" => {
                let seq = self.compile_arg(args, 0, env)?;
                let seq = self.plan(Op::Atomize { seq });
                Ok(self.plan(Op::CastNumber { seq }))
            }
            "distinct-values" => {
                let seq = self.compile_arg(args, 0, env)?;
                let seq = self.plan(Op::Atomize { seq });
                Ok(self.plan(Op::DistinctValues { seq }))
            }
            "contains" | "starts-with" | "ends-with" | "concat" | "string-length" | "substring"
            | "string-join" | "upper-case" | "lower-case" | "normalize-space" | "name"
            | "local-name" | "translate" => {
                let kind = match name {
                    "contains" => StrFnKind::Contains,
                    "starts-with" => StrFnKind::StartsWith,
                    "ends-with" => StrFnKind::EndsWith,
                    "concat" => StrFnKind::Concat,
                    "string-length" => StrFnKind::StringLength,
                    "substring" => StrFnKind::Substring,
                    "string-join" => StrFnKind::StringJoin,
                    "upper-case" => StrFnKind::UpperCase,
                    "lower-case" => StrFnKind::LowerCase,
                    "normalize-space" => StrFnKind::NormalizeSpace,
                    "translate" => StrFnKind::Translate,
                    _ => StrFnKind::NodeName,
                };
                let compiled: Vec<PlanRef> = args
                    .iter()
                    .map(|a| self.compile(a, env))
                    .collect::<CResult<_>>()?;
                Ok(self.plan(Op::StringFn {
                    kind,
                    args: compiled,
                    loop_: env.loop_.clone(),
                }))
            }
            "round" | "floor" | "ceiling" | "abs" => {
                let kind = match name {
                    "round" => NumFnKind::Round,
                    "floor" => NumFnKind::Floor,
                    "ceiling" => NumFnKind::Ceiling,
                    _ => NumFnKind::Abs,
                };
                let arg = self.compile_arg(args, 0, env)?;
                let arg = self.plan(Op::Atomize { seq: arg });
                let arg = self.plan(Op::CastNumber { seq: arg });
                Ok(self.plan(Op::NumFn { kind, arg }))
            }
            "subsequence" => {
                let seq = self.compile_arg(args, 0, env)?;
                let start = const_int(args.get(1)).ok_or_else(|| {
                    CompileError::Unsupported("subsequence() requires literal bounds".into())
                })?;
                let len = match args.get(2) {
                    None => None,
                    Some(a) => Some(const_int(Some(a)).ok_or_else(|| {
                        CompileError::Unsupported("subsequence() requires literal bounds".into())
                    })?),
                };
                Ok(self.plan(Op::Subsequence { seq, start, len }))
            }
            "position" | "last" => Err(CompileError::Unsupported(format!(
                "{name}() is only supported inside step predicates"
            ))),
            _ => {
                // user-defined function: inline expansion
                let Some(decl) = self.functions.get(name).cloned() else {
                    return Err(CompileError::UnknownFunction(name.to_string()));
                };
                if decl.params.len() != args.len() {
                    return Err(CompileError::Unsupported(format!(
                        "{name}() expects {} arguments, got {}",
                        decl.params.len(),
                        args.len()
                    )));
                }
                if self.inline_depth >= MAX_INLINE_DEPTH {
                    return Err(CompileError::RecursionLimit(name.to_string()));
                }
                self.inline_depth += 1;
                let mut env2 = env.clone();
                for (param, arg) in decl.params.iter().zip(args) {
                    let v = self.compile(arg, env)?;
                    env2.vars.insert(param.clone(), v);
                }
                let result = self.compile(&decl.body, &env2);
                self.inline_depth -= 1;
                result
            }
        }
    }

    fn compile_arg(&mut self, args: &[Expr], idx: usize, env: &Env) -> CResult<PlanRef> {
        match args.get(idx) {
            Some(a) => self.compile(a, env),
            None => Ok(self.const_seq(&env.loop_, vec![])),
        }
    }

    // ---------------------------------------------------------------------
    // element construction
    // ---------------------------------------------------------------------

    fn compile_element(&mut self, ctor: &ElementCtor, env: &Env) -> CResult<PlanRef> {
        let mut attrs = Vec::new();
        for (name, parts) in &ctor.attributes {
            let value = self.compile_attr_value(parts, env)?;
            attrs.push((name.clone(), value));
        }
        let mut content = Vec::new();
        for c in &ctor.content {
            let plan = match c {
                Content::Text(t) => self.const_seq(&env.loop_, vec![Item::str(t.as_str())]),
                Content::Expr(e) => self.compile(e, env)?,
                Content::Element(e) => self.compile_element(e, env)?,
            };
            content.push(plan);
        }
        Ok(self.plan(Op::ElemCtor {
            loop_: env.loop_.clone(),
            name: ctor.name.clone(),
            attrs,
            content,
        }))
    }

    fn compile_attr_value(&mut self, parts: &[AttrPart], env: &Env) -> CResult<PlanRef> {
        let compiled: Vec<PlanRef> = parts
            .iter()
            .map(|p| match p {
                AttrPart::Text(t) => Ok(self.const_seq(&env.loop_, vec![Item::str(t.as_str())])),
                AttrPart::Expr(e) => {
                    let plan = self.compile(e, env)?;
                    Ok(self.plan(Op::StringValue {
                        seq: plan,
                        loop_: env.loop_.clone(),
                    }))
                }
            })
            .collect::<CResult<_>>()?;
        if compiled.len() == 1 {
            let only = compiled.into_iter().next().unwrap();
            Ok(self.plan(Op::StringValue {
                seq: only,
                loop_: env.loop_.clone(),
            }))
        } else {
            Ok(self.plan(Op::StringFn {
                kind: StrFnKind::Concat,
                args: compiled,
                loop_: env.loop_.clone(),
            }))
        }
    }
}

/// Peephole path rewrite: `descendant-or-self::node()/child::T` (the
/// expansion of `//T`) collapses into a single `descendant::T` step when no
/// predicates are involved — the same plan the Pathfinder compiler emits,
/// and the shape the nametest pushdown of Section 3.2 accelerates.
fn collapse_descendant_steps(steps: &[Step]) -> Vec<Step> {
    let mut out: Vec<Step> = Vec::with_capacity(steps.len());
    let mut i = 0;
    while i < steps.len() {
        let s = &steps[i];
        let is_dos_node = s.axis == Axis::DescendantOrSelf
            && s.test == NodeTest::AnyKind
            && s.predicates.is_empty();
        if is_dos_node && i + 1 < steps.len() {
            let next = &steps[i + 1];
            if next.axis == Axis::Child && next.predicates.is_empty() {
                out.push(Step {
                    axis: Axis::Descendant,
                    test: next.test.clone(),
                    predicates: Vec::new(),
                });
                i += 2;
                continue;
            }
        }
        out.push(s.clone());
        i += 1;
    }
    out
}

/// Detect positional predicate forms: `[N]`, `[last()]`, `[position() = N]`.
fn positional_form(pred: &Expr) -> Option<PosFilterKind> {
    match pred {
        Expr::Literal(Literal::Integer(n)) => Some(PosFilterKind::Eq(*n)),
        Expr::FunCall { name, args } if name == "last" && args.is_empty() => {
            Some(PosFilterKind::Last)
        }
        Expr::Comparison {
            kind: CompKind::General(CmpOp::Eq) | CompKind::Value(CmpOp::Eq),
            l,
            r,
        } => {
            let is_position = |e: &Expr| matches!(e, Expr::FunCall { name, args } if name == "position" && args.is_empty());
            let is_last = |e: &Expr| matches!(e, Expr::FunCall { name, args } if name == "last" && args.is_empty());
            if is_position(l) {
                if let Expr::Literal(Literal::Integer(n)) = r.as_ref() {
                    return Some(PosFilterKind::Eq(*n));
                }
                if is_last(r) {
                    return Some(PosFilterKind::Last);
                }
            }
            None
        }
        _ => None,
    }
}

fn const_int(e: Option<&Expr>) -> Option<i64> {
    match e {
        Some(Expr::Literal(Literal::Integer(n))) => Some(*n),
        _ => None,
    }
}

/// Infer the column properties of an operator (Section 4.1).  The executor
/// consults these only when the order-aware mode is enabled.
pub(crate) fn infer_props(op: &Op) -> Props {
    match op {
        Op::LoopOne => Props {
            ord_iter_pos: true,
            grpord_pos: true,
            dense_iter: true,
            item_doc_order: false,
        },
        Op::ConstSeq { .. }
        | Op::DocRoot { .. }
        | Op::ExternalVar { .. }
        | Op::NestVar { .. }
        | Op::NestVarPos { .. }
        | Op::NestLoop { .. }
        | Op::Aggregate { .. }
        | Op::Ebv { .. }
        | Op::Empty { .. }
        | Op::StringValue { .. }
        | Op::ValueCmp { .. }
        | Op::GeneralCmp { .. }
        | Op::BoolAndOr { .. }
        | Op::BoolNot { .. }
        | Op::Arith { .. }
        | Op::ElemCtor { .. } => Props {
            ord_iter_pos: true,
            grpord_pos: true,
            dense_iter: false,
            item_doc_order: false,
        },
        Op::BackMap { .. }
        | Op::Union { .. }
        | Op::LiftThrough { .. }
        | Op::RestrictToIters { .. }
        | Op::DistinctValues { .. }
        | Op::DocOrderDistinct { .. }
        | Op::PosFilter { .. }
        | Op::Subsequence { .. }
        | Op::Atomize { .. }
        | Op::CastNumber { .. }
        | Op::NumFn { .. }
        | Op::StringFn { .. }
        | Op::Neg { .. }
        | Op::AttrStep { .. } => Props {
            ord_iter_pos: true,
            grpord_pos: true,
            dense_iter: false,
            item_doc_order: false,
        },
        // the staircase join emits in (pre, iter) order — document order per
        // iteration, but *not* [iter, pos] order
        Op::AxisStep { .. } => Props {
            ord_iter_pos: false,
            grpord_pos: true,
            dense_iter: false,
            item_doc_order: true,
        },
        Op::NestFromSeq { .. } | Op::NestFromJoin { .. } => Props {
            ord_iter_pos: true,
            grpord_pos: true,
            dense_iter: false,
            item_doc_order: false,
        },
        Op::SelectIters { .. } => Props {
            ord_iter_pos: true,
            grpord_pos: true,
            dense_iter: false,
            item_doc_order: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn compile_str(q: &str, cfg: ExecConfig) -> CResult<PlanRef> {
        let query = parse_query(q).expect("parse");
        Compiler::new(cfg).compile_query(&query)
    }

    #[test]
    fn compiles_simple_flwor() {
        let plan = compile_str(
            "for $v in (3, 4, 5, 6) return if ($v mod 2 = 0) then \"even\" else \"odd\"",
            ExecConfig::default(),
        )
        .unwrap();
        assert!(plan.operator_count() > 5);
        let dump = plan.explain();
        assert!(dump.contains("backmap"));
        assert!(dump.contains("σ-iters"));
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let err = compile_str("$nope", ExecConfig::default()).unwrap_err();
        assert_eq!(err, CompileError::UnknownVariable("nope".into()));
    }

    #[test]
    fn unknown_function_is_an_error() {
        let err = compile_str("frobnicate(1)", ExecConfig::default()).unwrap_err();
        assert!(matches!(err, CompileError::UnknownFunction(_)));
    }

    #[test]
    fn join_recognition_changes_plan_shape() {
        let q = "for $p in doc(\"a.xml\")//person \
                 return count(for $t in doc(\"a.xml\")//auction \
                              where $t/buyer = $p/id return $t)";
        let with = compile_str(q, ExecConfig::default()).unwrap();
        let without = compile_str(
            q,
            ExecConfig {
                join_recognition: false,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert!(
            with.explain().contains("nest(⋈)"),
            "join-recognised plan uses NestFromJoin"
        );
        assert!(!without.explain().contains("nest(⋈)"));
    }

    #[test]
    fn positional_predicates_detected() {
        assert_eq!(
            positional_form(&Expr::integer(2)),
            Some(PosFilterKind::Eq(2))
        );
        assert_eq!(
            positional_form(&Expr::FunCall {
                name: "last".into(),
                args: vec![]
            }),
            Some(PosFilterKind::Last)
        );
        assert_eq!(positional_form(&Expr::string("x")), None);
    }

    #[test]
    fn user_function_inlining_and_recursion_guard() {
        let ok = compile_str(
            "declare function local:f($x) { $x * 2 }; local:f(21)",
            ExecConfig::default(),
        );
        assert!(ok.is_ok());
        let rec = compile_str(
            "declare function local:f($x) { local:f($x) }; local:f(1)",
            ExecConfig::default(),
        );
        assert!(matches!(rec.unwrap_err(), CompileError::RecursionLimit(_)));
    }

    #[test]
    fn plan_operator_counts_are_substantial() {
        // the paper reports ~86 operators on average for XMark; even a modest
        // query with a join and constructors compiles to a few dozen
        let q = "for $p in doc(\"a.xml\")//person \
                 return <item name=\"{$p/name/text()}\">{count($p/watch)}</item>";
        let plan = compile_str(q, ExecConfig::default()).unwrap();
        assert!(plan.operator_count() >= 12, "got {}", plan.operator_count());
    }
}
