//! Lexer and recursive-descent parser for the XQuery subset.
//!
//! The grammar follows XQuery 1.0 operator precedence for the constructs we
//! support (see [`crate::ast`]).  Direct element constructors are parsed by
//! switching the lexer into character mode, exactly like a real XQuery
//! scanner does.

use std::fmt;

use mxq_engine::CmpOp;
use mxq_staircase::{Axis, NodeTest};

use crate::ast::*;

/// A parse error with a byte offset into the query text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token.
    pub offset: usize,
    /// Human readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XQuery parse error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

/// Parse a complete query (prolog + body).
pub fn parse_query(src: &str) -> PResult<Query> {
    let mut p = Parser::new(src);
    let q = p.parse_query()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(q)
}

/// Parse a single expression (no prolog).
pub fn parse_expr(src: &str) -> PResult<Expr> {
    let q = parse_query(src)?;
    Ok(q.body)
}

/// Parse an update query: prolog + one or more comma-separated XQuery Update
/// Facility statements (`insert nodes`, `delete nodes`, `replace node`,
/// `replace value of node`, `rename node`).
pub fn parse_update(src: &str) -> PResult<UpdateQuery> {
    let mut p = Parser::new(src);
    let q = p.parse_update_query()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(q)
}

/// Parse a statement, auto-detecting whether the text is a query or an
/// XQuery Update Facility statement list.
///
/// After the shared prolog, a text whose first token is one of the update
/// keywords (`insert`, `delete`, `replace`, `rename`) followed by a valid
/// update statement parses as [`Statement::Update`]; everything else parses
/// as [`Statement::Query`].  A leading update keyword that turns out to be a
/// path step (e.g. the query `insert` selecting `child::insert` elements)
/// falls back to the query grammar.
pub fn parse_statement(src: &str) -> PResult<Statement> {
    let mut p = Parser::new(src);
    let (functions, variables) = p.parse_prolog()?;
    let looks_like_update = ["insert", "delete", "replace", "rename"]
        .iter()
        .any(|kw| p.at_name(kw));
    if looks_like_update {
        let save = p.save();
        match p.parse_update_statements().and_then(|stmts| {
            p.skip_ws();
            if p.at_end() {
                Ok(stmts)
            } else {
                Err(p.err("unexpected trailing input"))
            }
        }) {
            Ok(statements) => {
                return Ok(Statement::Update(UpdateQuery {
                    functions,
                    variables,
                    statements,
                }))
            }
            Err(update_err) => {
                // not a well-formed update — retry as a query; if that fails
                // too, the update-grammar error is the more helpful one
                p.restore(save);
                let body = match p.parse_expr() {
                    Ok(b) => b,
                    Err(_) => return Err(update_err),
                };
                p.skip_ws();
                if !p.at_end() {
                    return Err(update_err);
                }
                return Ok(Statement::Query(Query {
                    functions,
                    variables,
                    body,
                }));
            }
        }
    }
    let body = p.parse_expr()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(Statement::Query(Query {
        functions,
        variables,
        body,
    }))
}

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Name(String),
    Var(String),
    Int(i64),
    Dbl(f64),
    Str(String),
    Sym(&'static str),
    Eof,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Name(n) => format!("name `{n}`"),
            Tok::Var(v) => format!("variable `${v}`"),
            Tok::Int(i) => format!("integer {i}"),
            Tok::Dbl(d) => format!("number {d}"),
            Tok::Str(_) => "string literal".into(),
            Tok::Sym(s) => format!("`{s}`"),
            Tok::Eof => "end of input".into(),
        }
    }
}

struct Parser {
    src: Vec<char>,
    pos: usize,
    /// peeked token and the position it started at / ends at
    peeked: Option<(Tok, usize, usize)>,
}

impl Parser {
    fn new(src: &str) -> Self {
        Parser {
            src: src.chars().collect(),
            pos: 0,
            peeked: None,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.peeked.as_ref().map(|(_, s, _)| *s).unwrap_or(self.pos),
            message: msg.into(),
        }
    }

    fn at_end(&mut self) -> bool {
        self.peek() == &Tok::Eof
    }

    // -- character level helpers -------------------------------------------

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_whitespace() {
                self.pos += 1;
            }
            // XQuery comments (: ... :), possibly nested
            if self.pos + 1 < self.src.len()
                && self.src[self.pos] == '('
                && self.src[self.pos + 1] == ':'
            {
                let mut depth = 1;
                self.pos += 2;
                while self.pos + 1 < self.src.len() && depth > 0 {
                    if self.src[self.pos] == '(' && self.src[self.pos + 1] == ':' {
                        depth += 1;
                        self.pos += 2;
                    } else if self.src[self.pos] == ':' && self.src[self.pos + 1] == ')' {
                        depth -= 1;
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                    }
                }
            } else {
                break;
            }
        }
    }

    fn ch(&self, off: usize) -> char {
        self.src.get(self.pos + off).copied().unwrap_or('\0')
    }

    // -- token level --------------------------------------------------------

    fn lex(&mut self) -> (Tok, usize, usize) {
        self.skip_ws();
        let start = self.pos;
        if self.pos >= self.src.len() {
            return (Tok::Eof, start, start);
        }
        let c = self.src[self.pos];
        // names (may contain - . : but not start with a digit)
        if c.is_alphabetic() || c == '_' {
            let mut s = String::new();
            while self.pos < self.src.len() {
                let c = self.src[self.pos];
                if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == ':' {
                    // a name must not swallow `::` (axis separator)
                    if c == ':' && self.ch(1) == ':' {
                        break;
                    }
                    s.push(c);
                    self.pos += 1;
                } else {
                    break;
                }
            }
            return (Tok::Name(s), start, self.pos);
        }
        if c.is_ascii_digit() {
            let mut s = String::new();
            let mut is_dbl = false;
            while self.pos < self.src.len() {
                let c = self.src[self.pos];
                let fraction = c == '.' && self.ch(1).is_ascii_digit();
                let exponent =
                    (c == 'e' || c == 'E') && (self.ch(1).is_ascii_digit() || self.ch(1) == '-');
                if c.is_ascii_digit() || fraction || exponent {
                    is_dbl |= fraction || exponent;
                    s.push(c);
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let tok = if is_dbl {
                Tok::Dbl(s.parse().unwrap_or(0.0))
            } else {
                Tok::Int(s.parse().unwrap_or(0))
            };
            return (tok, start, self.pos);
        }
        if c == '"' || c == '\'' {
            self.pos += 1;
            let mut s = String::new();
            while self.pos < self.src.len() && self.src[self.pos] != c {
                s.push(self.src[self.pos]);
                self.pos += 1;
            }
            self.pos += 1; // closing quote
            return (Tok::Str(s), start, self.pos);
        }
        if c == '$' {
            self.pos += 1;
            let mut s = String::new();
            while self.pos < self.src.len() {
                let c = self.src[self.pos];
                if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                    s.push(c);
                    self.pos += 1;
                } else {
                    break;
                }
            }
            return (Tok::Var(s), start, self.pos);
        }
        // symbols, longest first
        let two: String = self.src[self.pos..(self.pos + 2).min(self.src.len())]
            .iter()
            .collect();
        for sym in ["<<", ">>", "<=", ">=", "!=", "//", "::", ":=", ".."] {
            if two == *sym {
                self.pos += 2;
                return (Tok::Sym(sym), start, self.pos);
            }
        }
        let sym: Option<&'static str> = match c {
            '(' => Some("("),
            ')' => Some(")"),
            '[' => Some("["),
            ']' => Some("]"),
            '{' => Some("{"),
            '}' => Some("}"),
            ',' => Some(","),
            ';' => Some(";"),
            '/' => Some("/"),
            '@' => Some("@"),
            '.' => Some("."),
            '+' => Some("+"),
            '-' => Some("-"),
            '*' => Some("*"),
            '=' => Some("="),
            '<' => Some("<"),
            '>' => Some(">"),
            '?' => Some("?"),
            _ => None,
        };
        match sym {
            Some(s) => {
                self.pos += 1;
                (Tok::Sym(s), start, self.pos)
            }
            None => {
                self.pos += 1;
                (Tok::Sym("?"), start, self.pos)
            }
        }
    }

    fn peek(&mut self) -> &Tok {
        if self.peeked.is_none() {
            let t = self.lex();
            self.peeked = Some(t);
        }
        &self.peeked.as_ref().unwrap().0
    }

    fn next(&mut self) -> Tok {
        if let Some((t, _, _)) = self.peeked.take() {
            return t;
        }
        self.lex().0
    }

    /// Rewind the character cursor to the start of the peeked token (used to
    /// switch into constructor character mode).
    fn rewind_peek(&mut self) {
        if let Some((_, start, _)) = self.peeked.take() {
            self.pos = start;
        }
    }

    fn expect_sym(&mut self, sym: &'static str) -> PResult<()> {
        match self.next() {
            Tok::Sym(s) if s == sym => Ok(()),
            other => Err(self.err(format!("expected `{sym}`, found {}", other.describe()))),
        }
    }

    fn expect_name(&mut self, kw: &str) -> PResult<()> {
        match self.next() {
            Tok::Name(n) if n == kw => Ok(()),
            other => Err(self.err(format!("expected `{kw}`, found {}", other.describe()))),
        }
    }

    fn at_name(&mut self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Name(n) if n == kw)
    }

    fn at_sym(&mut self, sym: &str) -> bool {
        matches!(self.peek(), Tok::Sym(s) if *s == sym)
    }

    fn eat_name(&mut self, kw: &str) -> bool {
        if self.at_name(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, sym: &'static str) -> bool {
        if self.at_sym(sym) {
            self.next();
            true
        } else {
            false
        }
    }

    // -- grammar -------------------------------------------------------------

    fn parse_query(&mut self) -> PResult<Query> {
        let (functions, variables) = self.parse_prolog()?;
        let body = self.parse_expr()?;
        Ok(Query {
            functions,
            variables,
            body,
        })
    }

    fn parse_update_query(&mut self) -> PResult<UpdateQuery> {
        let (functions, variables) = self.parse_prolog()?;
        let statements = self.parse_update_statements()?;
        Ok(UpdateQuery {
            functions,
            variables,
            statements,
        })
    }

    fn parse_update_statements(&mut self) -> PResult<Vec<UpdateStmt>> {
        let mut statements = vec![self.parse_update_stmt()?];
        while self.eat_sym(",") {
            statements.push(self.parse_update_stmt()?);
        }
        Ok(statements)
    }

    /// Save the lexer position (for backtracking between grammars).
    fn save(&self) -> (usize, Option<(Tok, usize, usize)>) {
        (self.pos, self.peeked.clone())
    }

    /// Restore a previously saved lexer position.
    fn restore(&mut self, save: (usize, Option<(Tok, usize, usize)>)) {
        self.pos = save.0;
        self.peeked = save.1;
    }

    fn parse_update_stmt(&mut self) -> PResult<UpdateStmt> {
        if self.eat_name("insert") {
            if !self.eat_name("nodes") {
                self.expect_name("node")?;
            }
            let source = self.parse_expr_single()?;
            let location = if self.eat_name("as") {
                let first = if self.eat_name("first") {
                    true
                } else {
                    self.expect_name("last")?;
                    false
                };
                self.expect_name("into")?;
                if first {
                    InsertLocation::FirstInto
                } else {
                    InsertLocation::LastInto
                }
            } else if self.eat_name("into") {
                InsertLocation::Into
            } else if self.eat_name("before") {
                InsertLocation::Before
            } else if self.eat_name("after") {
                InsertLocation::After
            } else {
                return Err(self.err("expected `into`, `before` or `after`"));
            };
            let target = self.parse_expr_single()?;
            Ok(UpdateStmt::Insert {
                source,
                location,
                target,
            })
        } else if self.eat_name("delete") {
            if !self.eat_name("nodes") {
                self.expect_name("node")?;
            }
            let target = self.parse_expr_single()?;
            Ok(UpdateStmt::Delete { target })
        } else if self.eat_name("replace") {
            let value_of = if self.eat_name("value") {
                self.expect_name("of")?;
                true
            } else {
                false
            };
            self.expect_name("node")?;
            let target = self.parse_expr_single()?;
            self.expect_name("with")?;
            let source = self.parse_expr_single()?;
            Ok(if value_of {
                UpdateStmt::ReplaceValue { target, source }
            } else {
                UpdateStmt::ReplaceNode { target, source }
            })
        } else if self.eat_name("rename") {
            self.expect_name("node")?;
            let target = self.parse_expr_single()?;
            self.expect_name("as")?;
            let new_name = self.parse_expr_single()?;
            Ok(UpdateStmt::Rename { target, new_name })
        } else {
            Err(self
                .err("expected an update statement (`insert`, `delete`, `replace` or `rename`)"))
        }
    }

    fn parse_prolog(&mut self) -> PResult<(Vec<FunctionDecl>, Vec<VarDecl>)> {
        let mut functions = Vec::new();
        let mut variables = Vec::new();
        while self.at_name("declare") {
            self.next();
            if self.eat_name("function") {
                let name = match self.next() {
                    Tok::Name(n) => strip_prefix(&n),
                    other => {
                        return Err(self.err(format!(
                            "expected function name, found {}",
                            other.describe()
                        )))
                    }
                };
                self.expect_sym("(")?;
                let mut params = Vec::new();
                if !self.at_sym(")") {
                    loop {
                        match self.next() {
                            Tok::Var(v) => params.push(v),
                            other => {
                                return Err(self.err(format!(
                                    "expected parameter, found {}",
                                    other.describe()
                                )))
                            }
                        }
                        self.skip_type_annotation();
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                }
                self.expect_sym(")")?;
                self.skip_type_annotation();
                self.expect_sym("{")?;
                let body = self.parse_expr()?;
                self.expect_sym("}")?;
                self.expect_sym(";")?;
                functions.push(FunctionDecl { name, params, body });
            } else if self.eat_name("variable") {
                let var = match self.next() {
                    Tok::Var(v) => v,
                    other => {
                        return Err(
                            self.err(format!("expected variable, found {}", other.describe()))
                        )
                    }
                };
                self.skip_type_annotation();
                // `declare variable $x external;` — value supplied at
                // execution time, with an optional `:= default`
                let external = self.eat_name("external");
                let init = if self.eat_sym(":=") {
                    Some(self.parse_expr_single()?)
                } else if external {
                    None
                } else {
                    return Err(self.err("expected `:=` or `external` in variable declaration"));
                };
                self.expect_sym(";")?;
                variables.push(VarDecl {
                    name: var,
                    init,
                    external,
                });
            } else {
                return Err(self.err("unsupported declaration (only function/variable)"));
            }
        }
        Ok((functions, variables))
    }

    /// Skip an optional `as SequenceType` annotation.
    fn skip_type_annotation(&mut self) {
        if self.eat_name("as") {
            // consume a name, possibly with occurrence indicator and parens
            if let Tok::Name(_) = self.peek() {
                self.next();
                if self.at_sym("(") {
                    self.next();
                    let _ = self.eat_sym(")");
                }
                if self.at_sym("?") || self.at_sym("*") || self.at_sym("+") {
                    self.next();
                }
            }
        }
    }

    fn parse_expr(&mut self) -> PResult<Expr> {
        let first = self.parse_expr_single()?;
        if !self.at_sym(",") {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat_sym(",") {
            parts.push(self.parse_expr_single()?);
        }
        Ok(Expr::Sequence(parts))
    }

    fn parse_expr_single(&mut self) -> PResult<Expr> {
        if self.at_name("for") || self.at_name("let") {
            return self.parse_flwor();
        }
        if self.at_name("if") {
            return self.parse_if();
        }
        if self.at_name("some") || self.at_name("every") {
            return self.parse_quantified();
        }
        self.parse_or()
    }

    fn parse_flwor(&mut self) -> PResult<Expr> {
        let mut clauses = Vec::new();
        loop {
            if self.eat_name("for") {
                loop {
                    let var = match self.next() {
                        Tok::Var(v) => v,
                        other => {
                            return Err(
                                self.err(format!("expected `$var`, found {}", other.describe()))
                            )
                        }
                    };
                    self.skip_type_annotation();
                    let at = if self.eat_name("at") {
                        match self.next() {
                            Tok::Var(v) => Some(v),
                            other => {
                                return Err(self
                                    .err(format!("expected `$pos`, found {}", other.describe())))
                            }
                        }
                    } else {
                        None
                    };
                    self.expect_name("in")?;
                    let source = self.parse_expr_single()?;
                    clauses.push(Clause::For { var, at, source });
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            } else if self.eat_name("let") {
                loop {
                    let var = match self.next() {
                        Tok::Var(v) => v,
                        other => {
                            return Err(
                                self.err(format!("expected `$var`, found {}", other.describe()))
                            )
                        }
                    };
                    self.skip_type_annotation();
                    self.expect_sym(":=")?;
                    let value = self.parse_expr_single()?;
                    clauses.push(Clause::Let { var, value });
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        let where_ = if self.eat_name("where") {
            Some(Box::new(self.parse_expr_single()?))
        } else {
            None
        };
        let order_by = if self.at_name("order") {
            self.next();
            self.expect_name("by")?;
            let mut keys = Vec::new();
            loop {
                let key = self.parse_expr_single()?;
                let descending = if self.eat_name("descending") {
                    true
                } else {
                    let _ = self.eat_name("ascending");
                    false
                };
                keys.push(OrderKey {
                    key: Box::new(key),
                    descending,
                });
                if !self.eat_sym(",") {
                    break;
                }
            }
            Some(OrderSpec { keys })
        } else {
            None
        };
        self.expect_name("return")?;
        let ret = Box::new(self.parse_expr_single()?);
        Ok(Expr::Flwor {
            clauses,
            where_,
            order_by,
            ret,
        })
    }

    fn parse_if(&mut self) -> PResult<Expr> {
        self.expect_name("if")?;
        self.expect_sym("(")?;
        let cond = Box::new(self.parse_expr()?);
        self.expect_sym(")")?;
        self.expect_name("then")?;
        let then = Box::new(self.parse_expr_single()?);
        self.expect_name("else")?;
        let els = Box::new(self.parse_expr_single()?);
        Ok(Expr::If { cond, then, els })
    }

    fn parse_quantified(&mut self) -> PResult<Expr> {
        let some = self.eat_name("some");
        if !some {
            self.expect_name("every")?;
        }
        let var = match self.next() {
            Tok::Var(v) => v,
            other => return Err(self.err(format!("expected `$var`, found {}", other.describe()))),
        };
        self.expect_name("in")?;
        let source = Box::new(self.parse_expr_single()?);
        self.expect_name("satisfies")?;
        let satisfies = Box::new(self.parse_expr_single()?);
        Ok(Expr::Quantified {
            some,
            var,
            source,
            satisfies,
        })
    }

    fn parse_or(&mut self) -> PResult<Expr> {
        let mut l = self.parse_and()?;
        while self.at_name("or") {
            self.next();
            let r = self.parse_and()?;
            l = Expr::Logical {
                is_and: false,
                l: Box::new(l),
                r: Box::new(r),
            };
        }
        Ok(l)
    }

    fn parse_and(&mut self) -> PResult<Expr> {
        let mut l = self.parse_comparison()?;
        while self.at_name("and") {
            self.next();
            let r = self.parse_comparison()?;
            l = Expr::Logical {
                is_and: true,
                l: Box::new(l),
                r: Box::new(r),
            };
        }
        Ok(l)
    }

    fn parse_comparison(&mut self) -> PResult<Expr> {
        let l = self.parse_additive()?;
        let kind = if self.at_sym("=") {
            self.next();
            Some(CompKind::General(CmpOp::Eq))
        } else if self.at_sym("!=") {
            self.next();
            Some(CompKind::General(CmpOp::Ne))
        } else if self.at_sym("<=") {
            self.next();
            Some(CompKind::General(CmpOp::Le))
        } else if self.at_sym(">=") {
            self.next();
            Some(CompKind::General(CmpOp::Ge))
        } else if self.at_sym("<") {
            self.next();
            Some(CompKind::General(CmpOp::Lt))
        } else if self.at_sym(">") {
            self.next();
            Some(CompKind::General(CmpOp::Gt))
        } else if self.at_sym("<<") {
            self.next();
            Some(CompKind::NodeBefore)
        } else if self.at_sym(">>") {
            self.next();
            Some(CompKind::NodeAfter)
        } else if self.at_name("eq") {
            self.next();
            Some(CompKind::Value(CmpOp::Eq))
        } else if self.at_name("ne") {
            self.next();
            Some(CompKind::Value(CmpOp::Ne))
        } else if self.at_name("lt") {
            self.next();
            Some(CompKind::Value(CmpOp::Lt))
        } else if self.at_name("le") {
            self.next();
            Some(CompKind::Value(CmpOp::Le))
        } else if self.at_name("gt") {
            self.next();
            Some(CompKind::Value(CmpOp::Gt))
        } else if self.at_name("ge") {
            self.next();
            Some(CompKind::Value(CmpOp::Ge))
        } else if self.at_name("is") {
            self.next();
            Some(CompKind::NodeIs)
        } else {
            None
        };
        match kind {
            None => Ok(l),
            Some(kind) => {
                let r = self.parse_additive()?;
                Ok(Expr::Comparison {
                    kind,
                    l: Box::new(l),
                    r: Box::new(r),
                })
            }
        }
    }

    fn parse_additive(&mut self) -> PResult<Expr> {
        let mut l = self.parse_multiplicative()?;
        loop {
            let op = if self.at_sym("+") {
                ArithOp::Add
            } else if self.at_sym("-") {
                ArithOp::Sub
            } else {
                break;
            };
            self.next();
            let r = self.parse_multiplicative()?;
            l = Expr::Arith {
                op,
                l: Box::new(l),
                r: Box::new(r),
            };
        }
        Ok(l)
    }

    fn parse_multiplicative(&mut self) -> PResult<Expr> {
        let mut l = self.parse_unary()?;
        loop {
            let op = if self.at_sym("*") {
                ArithOp::Mul
            } else if self.at_name("div") {
                ArithOp::Div
            } else if self.at_name("idiv") {
                ArithOp::IDiv
            } else if self.at_name("mod") {
                ArithOp::Mod
            } else {
                break;
            };
            self.next();
            let r = self.parse_unary()?;
            l = Expr::Arith {
                op,
                l: Box::new(l),
                r: Box::new(r),
            };
        }
        Ok(l)
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        if self.eat_sym("-") {
            let e = self.parse_unary()?;
            return Ok(Expr::Neg(Box::new(e)));
        }
        let _ = self.eat_sym("+");
        self.parse_path()
    }

    fn parse_path(&mut self) -> PResult<Expr> {
        if self.at_sym("/") || self.at_sym("//") {
            return Err(self.err("absolute paths are not supported; start from doc(\"…\")"));
        }
        // the first step is either a primary expression or an axis step
        let (start, mut steps) = if self.starts_axis_step() {
            (
                Some(Box::new(Expr::Var(".".into()))),
                vec![self.parse_step()?],
            )
        } else {
            let prim = self.parse_postfix()?;
            (Some(Box::new(prim)), Vec::new())
        };
        loop {
            if self.at_sym("//") {
                self.next();
                steps.push(Step {
                    axis: Axis::DescendantOrSelf,
                    test: NodeTest::AnyKind,
                    predicates: Vec::new(),
                });
                steps.push(self.parse_step()?);
            } else if self.at_sym("/") {
                self.next();
                steps.push(self.parse_step()?);
            } else {
                break;
            }
        }
        if steps.is_empty() {
            Ok(*start.unwrap())
        } else {
            Ok(Expr::Path { start, steps })
        }
    }

    /// Does the upcoming token sequence start an axis step (rather than a
    /// primary expression)?  Name tests, `@`, kind tests, explicit axes, `..`.
    fn starts_axis_step(&mut self) -> bool {
        if self.at_sym("@") || self.at_sym("..") || self.at_sym("*") {
            return true;
        }
        let keywords = [
            "if",
            "for",
            "let",
            "some",
            "every",
            "return",
            "then",
            "else",
            "and",
            "or",
            "div",
            "idiv",
            "mod",
            "eq",
            "ne",
            "lt",
            "le",
            "gt",
            "ge",
            "is",
            "to",
            "where",
            "order",
            "satisfies",
            "in",
            "at",
        ];
        if let Tok::Name(n) = self.peek().clone() {
            if keywords.contains(&n.as_str()) {
                return false;
            }
            // function call → primary, kind test → step, axis:: → step
            let save_pos = self.pos;
            let save_peek = self.peeked.clone();
            self.next();
            let is_call = self.at_sym("(");
            let is_axis = self.at_sym("::");
            self.pos = save_pos;
            self.peeked = save_peek;
            if is_axis {
                return true;
            }
            if is_call {
                // kind tests look like calls but are steps
                return matches!(
                    n.as_str(),
                    "text" | "node" | "comment" | "processing-instruction"
                );
            }
            return true;
        }
        false
    }

    fn parse_step(&mut self) -> PResult<Step> {
        // axis
        let mut axis = Axis::Child;
        if self.at_sym("@") {
            self.next();
            axis = Axis::Attribute;
        } else if self.at_sym("..") {
            self.next();
            return Ok(Step {
                axis: Axis::Parent,
                test: NodeTest::AnyKind,
                predicates: self.parse_predicates()?,
            });
        } else if let Tok::Name(n) = self.peek().clone() {
            // explicit axis?
            let save_pos = self.pos;
            let save_peek = self.peeked.clone();
            self.next();
            if self.at_sym("::") {
                self.next();
                axis = Axis::parse(&n).ok_or_else(|| self.err(format!("unknown axis `{n}`")))?;
            } else {
                self.pos = save_pos;
                self.peeked = save_peek;
            }
        }
        // node test
        let test = if self.eat_sym("*") {
            NodeTest::AnyElement
        } else {
            match self.next() {
                Tok::Name(n) => {
                    if self.at_sym("(") {
                        self.next();
                        let inner = if let Tok::Str(s) = self.peek().clone() {
                            self.next();
                            Some(s)
                        } else {
                            None
                        };
                        self.expect_sym(")")?;
                        match n.as_str() {
                            "text" => NodeTest::Text,
                            "node" => NodeTest::AnyKind,
                            "comment" => NodeTest::Comment,
                            "processing-instruction" => {
                                NodeTest::ProcessingInstruction(inner.map(|s| s.into()))
                            }
                            other => return Err(self.err(format!("unknown kind test `{other}()`"))),
                        }
                    } else {
                        NodeTest::named(strip_prefix(&n))
                    }
                }
                other => {
                    return Err(
                        self.err(format!("expected a node test, found {}", other.describe()))
                    )
                }
            }
        };
        let predicates = self.parse_predicates()?;
        Ok(Step {
            axis,
            test,
            predicates,
        })
    }

    fn parse_predicates(&mut self) -> PResult<Vec<Expr>> {
        let mut preds = Vec::new();
        while self.eat_sym("[") {
            preds.push(self.parse_expr()?);
            self.expect_sym("]")?;
        }
        Ok(preds)
    }

    fn parse_postfix(&mut self) -> PResult<Expr> {
        let prim = self.parse_primary()?;
        // predicates directly on a primary (e.g. `$seq[2]`) become a
        // self-axis step with predicates
        if self.at_sym("[") {
            let predicates = self.parse_predicates()?;
            return Ok(Expr::Path {
                start: Some(Box::new(prim)),
                steps: vec![Step {
                    axis: Axis::SelfAxis,
                    test: NodeTest::AnyKind,
                    predicates,
                }],
            });
        }
        Ok(prim)
    }

    fn parse_primary(&mut self) -> PResult<Expr> {
        // direct element constructor?
        if self.at_sym("<") {
            self.rewind_peek();
            return Ok(Expr::Element(self.parse_element_ctor()?));
        }
        match self.next() {
            Tok::Int(i) => Ok(Expr::Literal(Literal::Integer(i))),
            Tok::Dbl(d) => Ok(Expr::Literal(Literal::Double(d))),
            Tok::Str(s) => Ok(Expr::Literal(Literal::String(s))),
            Tok::Var(v) => Ok(Expr::Var(v)),
            Tok::Sym(".") => Ok(Expr::Var(".".into())),
            Tok::Sym("(") => {
                if self.eat_sym(")") {
                    return Ok(Expr::Empty);
                }
                let e = self.parse_expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Name(n) => {
                // function call
                if self.eat_sym("(") {
                    let mut args = Vec::new();
                    if !self.at_sym(")") {
                        loop {
                            args.push(self.parse_expr_single()?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                    }
                    self.expect_sym(")")?;
                    Ok(Expr::FunCall {
                        name: strip_prefix(&n),
                        args,
                    })
                } else {
                    Err(self.err(format!("unexpected name `{n}` (not a function call)")))
                }
            }
            other => Err(self.err(format!("unexpected {}", other.describe()))),
        }
    }

    // -- direct element constructors (character mode) ------------------------

    fn parse_element_ctor(&mut self) -> PResult<ElementCtor> {
        self.skip_ws();
        if self.ch(0) != '<' {
            return Err(self.err("expected `<` to start element constructor"));
        }
        self.pos += 1;
        let name = self.read_xml_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws_chars();
            match self.ch(0) {
                '/' => {
                    if self.ch(1) != '>' {
                        return Err(self.err("expected `/>`"));
                    }
                    self.pos += 2;
                    return Ok(ElementCtor {
                        name,
                        attributes,
                        content: Vec::new(),
                    });
                }
                '>' => {
                    self.pos += 1;
                    break;
                }
                '\0' => return Err(self.err("unterminated element constructor")),
                _ => {
                    let aname = self.read_xml_name()?;
                    self.skip_ws_chars();
                    if self.ch(0) != '=' {
                        return Err(self.err("expected `=` in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws_chars();
                    let quote = self.ch(0);
                    if quote != '"' && quote != '\'' {
                        return Err(self.err("attribute value must be quoted"));
                    }
                    self.pos += 1;
                    let parts = self.read_attr_parts(quote)?;
                    attributes.push((aname, parts));
                }
            }
        }
        // content until matching close tag
        let mut content = Vec::new();
        let mut text = String::new();
        loop {
            match self.ch(0) {
                '\0' => return Err(self.err(format!("unterminated content of <{name}>"))),
                '<' => {
                    if self.ch(1) == '/' {
                        flush_text(&mut text, &mut content);
                        self.pos += 2;
                        let close = self.read_xml_name()?;
                        if close != name {
                            return Err(self.err(format!("mismatched </{close}> for <{name}>")));
                        }
                        self.skip_ws_chars();
                        if self.ch(0) != '>' {
                            return Err(self.err("expected `>`"));
                        }
                        self.pos += 1;
                        break;
                    }
                    flush_text(&mut text, &mut content);
                    let nested = self.parse_element_ctor()?;
                    content.push(Content::Element(Box::new(nested)));
                }
                '{' => {
                    flush_text(&mut text, &mut content);
                    self.pos += 1;
                    let e = self.parse_expr()?;
                    // after expression parsing we are back in token mode; sync chars
                    self.sync_after_tokens();
                    self.skip_ws_chars();
                    if self.ch(0) != '}' {
                        return Err(self.err("expected `}` closing enclosed expression"));
                    }
                    self.pos += 1;
                    content.push(Content::Expr(e));
                }
                c => {
                    text.push(c);
                    self.pos += 1;
                }
            }
        }
        Ok(ElementCtor {
            name,
            attributes,
            content,
        })
    }

    /// After parsing tokens inside an enclosed expression, drop any peeked
    /// token so character-mode parsing resumes at the right position.
    fn sync_after_tokens(&mut self) {
        self.rewind_peek();
    }

    fn skip_ws_chars(&mut self) {
        while self.ch(0).is_whitespace() {
            self.pos += 1;
        }
    }

    fn read_xml_name(&mut self) -> PResult<String> {
        let mut s = String::new();
        while {
            let c = self.ch(0);
            c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == ':'
        } {
            s.push(self.ch(0));
            self.pos += 1;
        }
        if s.is_empty() {
            return Err(self.err("expected a name"));
        }
        Ok(s)
    }

    fn read_attr_parts(&mut self, quote: char) -> PResult<Vec<AttrPart>> {
        let mut parts = Vec::new();
        let mut text = String::new();
        loop {
            let c = self.ch(0);
            if c == '\0' {
                return Err(self.err("unterminated attribute value"));
            }
            if c == quote {
                self.pos += 1;
                break;
            }
            if c == '{' {
                if !text.is_empty() {
                    parts.push(AttrPart::Text(std::mem::take(&mut text)));
                }
                self.pos += 1;
                let e = self.parse_expr()?;
                self.sync_after_tokens();
                self.skip_ws_chars();
                if self.ch(0) != '}' {
                    return Err(self.err("expected `}` in attribute value template"));
                }
                self.pos += 1;
                parts.push(AttrPart::Expr(e));
            } else {
                text.push(c);
                self.pos += 1;
            }
        }
        if !text.is_empty() {
            parts.push(AttrPart::Text(text));
        }
        Ok(parts)
    }
}

fn flush_text(text: &mut String, content: &mut Vec<Content>) {
    if !text.trim().is_empty() {
        content.push(Content::Text(std::mem::take(text)));
    } else {
        text.clear();
    }
}

/// Strip a namespace prefix (`fn:`, `local:`, `xs:`) from a name.
fn strip_prefix(name: &str) -> String {
    match name.rfind(':') {
        Some(i) => name[i + 1..].to_string(),
        None => name.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literals_and_sequences() {
        assert_eq!(parse_expr("42").unwrap(), Expr::integer(42));
        assert_eq!(parse_expr("\"hi\"").unwrap(), Expr::string("hi"));
        assert_eq!(parse_expr("()").unwrap(), Expr::Empty);
        match parse_expr("(1, 2, 3)").unwrap() {
            Expr::Sequence(v) => assert_eq!(v.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_flwor_with_where_and_order() {
        let q = parse_expr(
            "for $x at $i in doc(\"a.xml\")/site/item let $y := $x/name where $i > 2 order by $y descending return $y",
        )
        .unwrap();
        match q {
            Expr::Flwor {
                clauses,
                where_,
                order_by,
                ..
            } => {
                assert_eq!(clauses.len(), 2);
                assert!(where_.is_some());
                let spec = order_by.unwrap();
                assert_eq!(spec.keys.len(), 1);
                assert!(spec.keys[0].descending);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_multi_key_order_by() {
        let q = parse_expr(
            "for $x in doc(\"a.xml\")//item \
             order by $x/@dept, $x/price descending, $x/name ascending return $x",
        )
        .unwrap();
        match q {
            Expr::Flwor { order_by, .. } => {
                let spec = order_by.unwrap();
                assert_eq!(spec.keys.len(), 3);
                assert!(!spec.keys[0].descending);
                assert!(spec.keys[1].descending);
                assert!(!spec.keys[2].descending);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_paths_with_axes_and_predicates() {
        let q = parse_expr("$a/child::b//c[@id = \"x\"][2]/text()").unwrap();
        match q {
            Expr::Path { start, steps } => {
                assert_eq!(*start.unwrap(), Expr::Var("a".into()));
                // b, descendant-or-self::node(), c[..][2], text()
                assert_eq!(steps.len(), 4);
                assert_eq!(steps[2].predicates.len(), 2);
                assert_eq!(steps[3].test, NodeTest::Text);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_operators_with_precedence() {
        let q = parse_expr("1 + 2 * 3 = 7 and true()").unwrap();
        match q {
            Expr::Logical {
                is_and: true, l, ..
            } => match *l {
                Expr::Comparison { .. } => {}
                other => panic!("unexpected lhs {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_element_constructor_with_enclosed_exprs() {
        let q =
            parse_expr("<item id=\"{$x/@id}\" kind=\"a\">{$x/name/text()} trailing <b/></item>")
                .unwrap();
        match q {
            Expr::Element(e) => {
                assert_eq!(e.name, "item");
                assert_eq!(e.attributes.len(), 2);
                assert!(matches!(e.attributes[0].1[0], AttrPart::Expr(_)));
                assert_eq!(e.content.len(), 3);
                assert!(matches!(e.content[0], Content::Expr(_)));
                assert!(matches!(e.content[1], Content::Text(_)));
                assert!(matches!(e.content[2], Content::Element(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_quantified_and_if() {
        let q = parse_expr("some $x in $s satisfies $x = 3").unwrap();
        assert!(matches!(q, Expr::Quantified { some: true, .. }));
        let q = parse_expr("if ($a) then 1 else 2").unwrap();
        assert!(matches!(q, Expr::If { .. }));
    }

    #[test]
    fn parses_prolog_functions() {
        let q = parse_query(
            "declare function local:convert($v) { 2.2 * $v }; for $i in doc(\"a.xml\")//reserve return local:convert($i)",
        )
        .unwrap();
        assert_eq!(q.functions.len(), 1);
        assert_eq!(q.functions[0].name, "convert");
        assert_eq!(q.functions[0].params, vec!["v".to_string()]);
    }

    #[test]
    fn parses_node_order_comparison() {
        let q = parse_expr("$a << $b").unwrap();
        assert!(matches!(
            q,
            Expr::Comparison {
                kind: CompKind::NodeBefore,
                ..
            }
        ));
    }

    #[test]
    fn parses_comments_and_whitespace() {
        let q = parse_expr("(: a comment (: nested :) :) 1 + (: x :) 2").unwrap();
        assert!(matches!(q, Expr::Arith { .. }));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_expr("for $x").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("<a>{1}").is_err());
        assert!(parse_expr("/site/people").is_err());
    }

    #[test]
    fn parses_update_statements() {
        let u = parse_update(
            "insert nodes <bidder/> as last into doc(\"a.xml\")/site/open_auctions/open_auction[1]",
        )
        .unwrap();
        assert!(matches!(
            u.statements[0],
            UpdateStmt::Insert {
                location: InsertLocation::LastInto,
                ..
            }
        ));
        let u = parse_update("insert node <x/> before $t").unwrap();
        assert!(matches!(
            u.statements[0],
            UpdateStmt::Insert {
                location: InsertLocation::Before,
                ..
            }
        ));
        let u = parse_update("delete nodes doc(\"a.xml\")//bidder").unwrap();
        assert!(matches!(u.statements[0], UpdateStmt::Delete { .. }));
        let u = parse_update("replace node $old with <new/>").unwrap();
        assert!(matches!(u.statements[0], UpdateStmt::ReplaceNode { .. }));
        let u = parse_update("replace value of node $n with \"v\"").unwrap();
        assert!(matches!(u.statements[0], UpdateStmt::ReplaceValue { .. }));
        let u = parse_update("rename node $n as \"y\"").unwrap();
        assert!(matches!(u.statements[0], UpdateStmt::Rename { .. }));
    }

    #[test]
    fn parses_multi_statement_update_with_prolog() {
        let u = parse_update(
            "declare variable $d := doc(\"a.xml\"); \
             delete nodes $d//stale, insert nodes <fresh/> as first into $d/root",
        )
        .unwrap();
        assert_eq!(u.variables.len(), 1);
        assert_eq!(u.statements.len(), 2);
    }

    #[test]
    fn parses_external_variable_declarations() {
        let q = parse_query("declare variable $x external; $x + 1").unwrap();
        assert_eq!(q.variables.len(), 1);
        let d = &q.variables[0];
        assert_eq!(d.name, "x");
        assert!(d.external);
        assert!(d.init.is_none());

        let q = parse_query("declare variable $x external := 7; $x").unwrap();
        let d = &q.variables[0];
        assert!(d.external);
        assert_eq!(d.init, Some(Expr::integer(7)));

        let q = parse_query("declare variable $x := 1; $x").unwrap();
        let d = &q.variables[0];
        assert!(!d.external);
        assert_eq!(d.init, Some(Expr::integer(1)));

        // a declaration needs either `external` or a value
        assert!(parse_query("declare variable $x; $x").is_err());
    }

    #[test]
    fn statement_auto_detection() {
        // plain query
        let s = parse_statement("1 + 1").unwrap();
        assert!(!s.is_update());
        // update statement list
        let s = parse_statement("delete nodes doc(\"a.xml\")//stale").unwrap();
        assert!(s.is_update());
        // prolog is shared between the two grammars
        let s = parse_statement(
            "declare variable $d := doc(\"a.xml\"); insert nodes <x/> as last into $d/root",
        )
        .unwrap();
        assert!(s.is_update());
        let s = parse_statement("declare variable $d external; count($d)").unwrap();
        assert!(!s.is_update());
        // an update keyword that is actually a path step falls back to query
        let s = parse_statement("insert").unwrap();
        match s {
            Statement::Query(q) => assert!(matches!(q.body, Expr::Path { .. })),
            other => panic!("unexpected {other:?}"),
        }
        // garbage that starts with an update keyword reports the update error
        assert!(parse_statement("insert nodes <x/> sideways $t").is_err());
        assert!(parse_statement("for $x").is_err());
    }

    #[test]
    fn rejects_malformed_updates() {
        assert!(parse_update("insert nodes <x/>").is_err());
        assert!(parse_update("insert nodes <x/> sideways $t").is_err());
        assert!(parse_update("replace node $x").is_err());
        assert!(parse_update("rename node $x").is_err());
        assert!(parse_update("frobnicate nodes $x").is_err());
        assert!(parse_update("delete nodes $x trailing").is_err());
    }

    #[test]
    fn predicate_on_variable_uses_self_step() {
        let q = parse_expr("$seq[2]").unwrap();
        match q {
            Expr::Path { steps, .. } => {
                assert_eq!(steps[0].axis, Axis::SelfAxis);
                assert_eq!(steps[0].predicates.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
