//! Pending Update Lists: the semantics layer of the XQuery Update Facility
//! subset (paper Section 5.2 provides the storage substrate; this module
//! provides snapshot semantics on top of it).
//!
//! Updating statements are evaluated in two strictly separated phases:
//!
//! 1. **Collection** — every statement's target and source expressions are
//!    evaluated against the *unchanged* store (snapshot isolation); the
//!    resulting update primitives, with their content already copied into
//!    private fragments, accumulate in a [`PendingUpdateList`].
//! 2. **Application** — after the XQUF compatibility rules are checked
//!    (e.g. two `rename`s of one node conflict), the primitives are applied
//!    per document in an order that makes the snapshot positions stable:
//!    value updates (renames, attribute patches) first, then structural
//!    primitives swept from the **highest** affected position to the lowest,
//!    so an applied edit never shifts the position of one still pending.
//!    Within one position, replacements go first, deletes next and inserts
//!    last, which reproduces the XQUF application order (deleting a node
//!    never swallows content inserted next to it, and a delete of a node the
//!    list also replaces is void — the replacement survives, exactly as a
//!    delete of an already-detached node is void in the spec).
//!
//! Application is atomic per update call: every failure mode (conflicts,
//! wrong target kinds) is detected during collection, before the first
//! primitive touches a document.

use std::collections::HashSet;
use std::fmt;

use mxq_engine::NodeId;
use mxq_xmldb::update::StructuralUpdate;
use mxq_xmldb::Document;

use crate::algebra::PlanRef;

// ---------------------------------------------------------------------------
// compiled update plans
// ---------------------------------------------------------------------------

/// The kind of a compiled update statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// `insert … into` (first or last child).
    InsertInto {
        /// `as first into` when true, `as last into` / `into` otherwise.
        first: bool,
    },
    /// `insert … before`.
    InsertBefore,
    /// `insert … after`.
    InsertAfter,
    /// `delete nodes`.
    Delete,
    /// `replace node … with …`.
    ReplaceNode,
    /// `replace value of node … with …`.
    ReplaceValue,
    /// `rename node … as …`.
    Rename,
}

/// The compiled target of an update statement: either a node sequence plan,
/// or an element plan plus an attribute name (for statements addressing an
/// attribute through a trailing `@name` step).
#[derive(Debug)]
pub enum UpdateTarget {
    /// The target expression yields the target nodes directly.
    Nodes(PlanRef),
    /// The target is the `name` attribute of the elements the plan yields.
    Attribute {
        /// Plan producing the owning element(s).
        elem: PlanRef,
        /// The attribute name.
        name: String,
    },
}

/// One compiled update statement: its kind, target plan and optional source
/// plan (insert/replace content, or the `rename … as` name expression).
#[derive(Debug)]
pub struct UpdateStatementPlan {
    /// What the statement does.
    pub kind: UpdateKind,
    /// The compiled target.
    pub target: UpdateTarget,
    /// The compiled source/content/name expression, when the kind has one.
    pub source: Option<PlanRef>,
}

/// A compiled update query: the statements share one plan-id space so the
/// executor memoises common subexpressions across them.
#[derive(Debug)]
pub struct UpdatePlan {
    /// The compiled statements in source order.
    pub statements: Vec<UpdateStatementPlan>,
}

impl UpdatePlan {
    /// The plan roots of all statements (targets and sources) — every
    /// sub-plan the executor will evaluate, for static analysis.
    pub fn roots(&self) -> Vec<&PlanRef> {
        let mut v = Vec::new();
        for s in &self.statements {
            match &s.target {
                UpdateTarget::Nodes(p) => v.push(p),
                UpdateTarget::Attribute { elem, .. } => v.push(elem),
            }
            if let Some(src) = &s.source {
                v.push(src);
            }
        }
        v
    }
}

// ---------------------------------------------------------------------------
// primitives
// ---------------------------------------------------------------------------

/// One update primitive, fully resolved: target node plus (copied) content.
#[derive(Debug, Clone)]
pub enum UpdatePrimitive {
    /// Insert `content` as the first/last children of `parent`.
    InsertInto {
        /// The parent element.
        parent: NodeId,
        /// First child when true, last child otherwise.
        first: bool,
        /// The content fragment (owned copy).
        content: Document,
    },
    /// Insert `content` as preceding siblings of `target`.
    InsertBefore {
        /// The anchor node.
        target: NodeId,
        /// The content fragment (owned copy).
        content: Document,
    },
    /// Insert `content` as following siblings of `target`.
    InsertAfter {
        /// The anchor node.
        target: NodeId,
        /// The content fragment (owned copy).
        content: Document,
    },
    /// Delete the subtree rooted at `target`.
    Delete {
        /// The node to delete.
        target: NodeId,
    },
    /// Replace the subtree rooted at `target` with `content`.
    ReplaceNode {
        /// The node to replace.
        target: NodeId,
        /// The replacement fragment (owned copy).
        content: Document,
    },
    /// Replace the value (text content) of `target`.
    ReplaceValue {
        /// The node whose value changes.
        target: NodeId,
        /// The new string value.
        value: String,
    },
    /// Rename the element or processing instruction at `target`.
    Rename {
        /// The node to rename.
        target: NodeId,
        /// The new name.
        name: String,
    },
    /// Set attribute `name` on `elem` to `value`.
    SetAttribute {
        /// The owning element.
        elem: NodeId,
        /// Attribute name.
        name: String,
        /// New attribute value.
        value: String,
    },
    /// Remove attribute `name` from `elem`.
    RemoveAttribute {
        /// The owning element.
        elem: NodeId,
        /// Attribute name.
        name: String,
    },
    /// Rename attribute `name` of `elem` to `new_name`.
    RenameAttribute {
        /// The owning element.
        elem: NodeId,
        /// Current attribute name.
        name: String,
        /// New attribute name.
        new_name: String,
    },
}

impl UpdatePrimitive {
    /// The node the primitive is anchored at.
    pub fn target_node(&self) -> NodeId {
        match self {
            UpdatePrimitive::InsertInto { parent, .. } => *parent,
            UpdatePrimitive::InsertBefore { target, .. }
            | UpdatePrimitive::InsertAfter { target, .. }
            | UpdatePrimitive::Delete { target }
            | UpdatePrimitive::ReplaceNode { target, .. }
            | UpdatePrimitive::ReplaceValue { target, .. }
            | UpdatePrimitive::Rename { target, .. } => *target,
            UpdatePrimitive::SetAttribute { elem, .. }
            | UpdatePrimitive::RemoveAttribute { elem, .. }
            | UpdatePrimitive::RenameAttribute { elem, .. } => *elem,
        }
    }
}

// ---------------------------------------------------------------------------
// errors
// ---------------------------------------------------------------------------

/// Errors raised while collecting or checking a pending update list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PulError {
    /// Two incompatible primitives address the same node (XQUF compatibility
    /// rules: at most one `rename`, `replace node`, `replace value` each).
    Conflict {
        /// Which rule was violated (`rename`, `replace node`, …).
        what: &'static str,
        /// The contested target.
        target: String,
    },
    /// A target item is not a node.
    NotANode(&'static str),
    /// A target node has the wrong kind for the statement.
    WrongTargetKind(String),
    /// The statement requires exactly one target node.
    ExactlyOne {
        /// Which statement kind complained.
        what: &'static str,
        /// How many target nodes were found.
        got: usize,
    },
    /// Structural updates of fragment roots (document nodes / root elements)
    /// are not allowed — a document must stay rooted.
    TargetIsRoot,
    /// Updates may only address persistent documents, not constructed nodes.
    TransientTarget,
    /// The new name of a `rename` is not a valid QName.
    InvalidName(String),
}

impl fmt::Display for PulError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PulError::Conflict { what, target } => {
                write!(
                    f,
                    "conflicting updates: two `{what}` primitives target {target}"
                )
            }
            PulError::NotANode(what) => write!(f, "{what} target is not a node"),
            PulError::WrongTargetKind(m) => write!(f, "{m}"),
            PulError::ExactlyOne { what, got } => {
                write!(f, "{what} requires exactly one target node, got {got}")
            }
            PulError::TargetIsRoot => {
                write!(f, "structural updates of a document root are not allowed")
            }
            PulError::TransientTarget => {
                write!(
                    f,
                    "update targets must live in a loaded document, not in constructed nodes"
                )
            }
            PulError::InvalidName(n) => write!(f, "`{n}` is not a valid element/attribute name"),
        }
    }
}

impl std::error::Error for PulError {}

// ---------------------------------------------------------------------------
// the pending update list
// ---------------------------------------------------------------------------

/// An ordered collection of update primitives with XQUF conflict checking
/// and position-stable application.
#[derive(Debug, Default)]
pub struct PendingUpdateList {
    prims: Vec<UpdatePrimitive>,
    renames: HashSet<NodeId>,
    replaces: HashSet<NodeId>,
    values: HashSet<NodeId>,
    attr_values: HashSet<(NodeId, String)>,
    attr_renames: HashSet<(NodeId, String)>,
}

impl PendingUpdateList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of collected primitives.
    pub fn len(&self) -> usize {
        self.prims.len()
    }

    /// True if no primitives were collected.
    pub fn is_empty(&self) -> bool {
        self.prims.is_empty()
    }

    /// The collected primitives in statement order.
    pub fn primitives(&self) -> &[UpdatePrimitive] {
        &self.prims
    }

    /// Add a primitive, enforcing the XQUF compatibility rules incrementally:
    /// at most one `rename`, one `replace node` and one `replace value` per
    /// target node (attribute variants are keyed by element + name).
    pub fn add(&mut self, prim: UpdatePrimitive) -> Result<(), PulError> {
        let conflict = |what: &'static str, node: NodeId| PulError::Conflict {
            what,
            target: node.to_string(),
        };
        // `fresh` is whether the "first primitive of this kind for this
        // target" registration succeeded; a duplicate is a conflict
        let fresh = match &prim {
            UpdatePrimitive::Rename { target, .. } => self
                .renames
                .insert(*target)
                .then_some(())
                .ok_or(("rename node", *target)),
            UpdatePrimitive::ReplaceNode { target, .. } => self
                .replaces
                .insert(*target)
                .then_some(())
                .ok_or(("replace node", *target)),
            UpdatePrimitive::ReplaceValue { target, .. } => self
                .values
                .insert(*target)
                .then_some(())
                .ok_or(("replace value of node", *target)),
            UpdatePrimitive::SetAttribute { elem, name, .. } => self
                .attr_values
                .insert((*elem, name.clone()))
                .then_some(())
                .ok_or(("replace value of attribute", *elem)),
            UpdatePrimitive::RenameAttribute { elem, name, .. } => self
                .attr_renames
                .insert((*elem, name.clone()))
                .then_some(())
                .ok_or(("rename attribute", *elem)),
            // inserts, deletes and attribute removals never conflict
            _ => Ok(()),
        };
        if let Err((what, node)) = fresh {
            return Err(conflict(what, node));
        }
        self.prims.push(prim);
        Ok(())
    }

    /// The fragment ids (documents) the list touches, ascending.
    pub fn fragments(&self) -> Vec<u32> {
        let mut frags: Vec<u32> = self.prims.iter().map(|p| p.target_node().frag).collect();
        frags.sort_unstable();
        frags.dedup();
        frags
    }

    /// Apply every primitive targeting fragment `frag` to `doc`, which must
    /// still be in the snapshot state the primitives were collected against.
    /// Returns the number of primitives applied.
    ///
    /// Value updates go first (they move nothing); structural primitives are
    /// swept from the highest snapshot position down, so each application
    /// leaves all still-pending (lower) positions valid.  Duplicate deletes
    /// of one node collapse into one, and a delete of a node that is also
    /// replaced is void (the replace detaches the original node first; a
    /// delete of a detached node has no effect in XQUF).
    pub fn apply_to<D: StructuralUpdate + ?Sized>(&self, frag: u32, doc: &mut D) -> usize {
        let mut applied = 0;

        // pass 1: pure value updates at snapshot positions.  Attribute
        // primitives address attributes by (element, name), so they run in
        // XQUF phase order — value replacement first, renames second,
        // deletes last (remapped through any rename of the same attribute) —
        // which makes the outcome independent of statement order, exactly as
        // the spec's identity-based addressing would.
        for prim in self.prims.iter().filter(|p| p.target_node().frag == frag) {
            match prim {
                UpdatePrimitive::Rename { target, name } => {
                    doc.rename(target.pre, name);
                    applied += 1;
                }
                UpdatePrimitive::SetAttribute { elem, name, value } => {
                    doc.set_attribute(elem.pre, name, value);
                    applied += 1;
                }
                _ => {}
            }
        }
        let mut attr_rename_map: std::collections::HashMap<(u32, &str), &str> =
            std::collections::HashMap::new();
        for prim in self.prims.iter().filter(|p| p.target_node().frag == frag) {
            if let UpdatePrimitive::RenameAttribute {
                elem,
                name,
                new_name,
            } = prim
            {
                doc.rename_attribute(elem.pre, name, new_name);
                attr_rename_map.insert((elem.pre, name.as_str()), new_name.as_str());
                applied += 1;
            }
        }
        for prim in self.prims.iter().filter(|p| p.target_node().frag == frag) {
            if let UpdatePrimitive::RemoveAttribute { elem, name } = prim {
                let effective = attr_rename_map
                    .get(&(elem.pre, name.as_str()))
                    .copied()
                    .unwrap_or(name.as_str());
                doc.remove_attribute(elem.pre, effective);
                applied += 1;
            }
        }

        // pass 2: structural updates, highest snapshot position first.
        // Phases at one position: replace(0) < delete(1) < insert(2) <
        // replace-value-of-element(3); see the module docs for why.
        let replaced: HashSet<u32> = self
            .prims
            .iter()
            .filter_map(|p| match p {
                UpdatePrimitive::ReplaceNode { target, .. } if target.frag == frag => {
                    Some(target.pre)
                }
                _ => None,
            })
            .collect();
        let mut deleted_seen: HashSet<u32> = HashSet::new();
        // (key, phase, snapshot content level, seq, primitive).  The level
        // serves two purposes: an InsertBefore anchor may be gone by the
        // time the insert applies (the splice then reuses the snapshot
        // level), and inserts whose keys tie apply **shallowest first** —
        // deeper content at a shared numeric position belongs to a subtree
        // that ends there and must precede the shallower siblings, which
        // works out because the deeper op recomputes its position from its
        // anchor node's state after the shallow splice.
        let mut structural: Vec<(u64, u8, u16, usize, &UpdatePrimitive)> = Vec::new();
        for (seq, prim) in self.prims.iter().enumerate() {
            if prim.target_node().frag != frag {
                continue;
            }
            let keyed = match prim {
                UpdatePrimitive::ReplaceNode { target, .. } => Some((target.pre as u64, 0, 0)),
                UpdatePrimitive::Delete { target } => {
                    if replaced.contains(&target.pre) || !deleted_seen.insert(target.pre) {
                        None
                    } else {
                        Some((target.pre as u64, 1, 0))
                    }
                }
                UpdatePrimitive::InsertBefore { target, .. } => {
                    Some((target.pre as u64, 2, doc.node_level(target.pre)))
                }
                UpdatePrimitive::InsertInto {
                    parent,
                    first: true,
                    ..
                } => Some((parent.pre as u64 + 1, 2, doc.node_level(parent.pre) + 1)),
                UpdatePrimitive::InsertInto {
                    parent,
                    first: false,
                    ..
                } => Some((
                    parent.pre as u64 + doc.node_size(parent.pre) as u64 + 1,
                    2,
                    doc.node_level(parent.pre) + 1,
                )),
                UpdatePrimitive::InsertAfter { target, .. } => Some((
                    target.pre as u64 + doc.node_size(target.pre) as u64 + 1,
                    2,
                    doc.node_level(target.pre),
                )),
                UpdatePrimitive::ReplaceValue { target, .. } => Some((target.pre as u64 + 1, 3, 0)),
                _ => None,
            };
            if let Some((key, phase, level)) = keyed {
                structural.push((key, phase, level, seq, prim));
            }
        }
        structural.sort_by(|a, b| {
            b.0.cmp(&a.0)
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
                .then(a.3.cmp(&b.3))
        });

        for (_, _, level, _, prim) in structural {
            match prim {
                UpdatePrimitive::InsertInto {
                    parent,
                    first,
                    content,
                } => {
                    if *first {
                        doc.insert_first_child(parent.pre, content);
                    } else {
                        doc.insert_last_child(parent.pre, content);
                    }
                }
                UpdatePrimitive::InsertBefore { target, content } => {
                    doc.insert_at(target.pre, level, content);
                }
                UpdatePrimitive::InsertAfter { target, content } => {
                    doc.insert_after(target.pre, content);
                }
                UpdatePrimitive::Delete { target } => {
                    doc.delete_subtree(target.pre);
                }
                UpdatePrimitive::ReplaceNode { target, content } => {
                    doc.replace_subtree(target.pre, content);
                }
                UpdatePrimitive::ReplaceValue { target, value } => {
                    doc.replace_value(target.pre, value);
                }
                _ => unreachable!("value primitives handled in pass 1"),
            }
            applied += 1;
        }
        applied
    }
}

/// Is `name` acceptable as an element/attribute name for `rename`?
pub fn valid_qname(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxq_xmldb::update::{fragment_from_xml, NaiveDocument, PagedDocument};
    use mxq_xmldb::{serialize_document, shred, ShredOptions};

    fn nid(pre: u32) -> NodeId {
        NodeId::new(1, pre)
    }

    fn apply_both(pul: &PendingUpdateList, xml: &str) -> String {
        let doc = shred("d", xml, &ShredOptions::default()).unwrap();
        let mut naive = NaiveDocument::from_document(&doc);
        let mut paged = PagedDocument::from_document(&doc, 4, 75);
        let a = pul.apply_to(1, &mut naive);
        let b = pul.apply_to(1, &mut paged);
        assert_eq!(a, b);
        let n = serialize_document(&naive.to_document());
        let p = serialize_document(&paged.to_document());
        assert_eq!(n, p, "naive and paged disagree");
        n
    }

    #[test]
    fn conflicting_renames_are_rejected() {
        let mut pul = PendingUpdateList::new();
        pul.add(UpdatePrimitive::Rename {
            target: nid(1),
            name: "x".into(),
        })
        .unwrap();
        let err = pul
            .add(UpdatePrimitive::Rename {
                target: nid(1),
                name: "y".into(),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            PulError::Conflict {
                what: "rename node",
                ..
            }
        ));
        // renaming a *different* node is fine
        pul.add(UpdatePrimitive::Rename {
            target: nid(2),
            name: "y".into(),
        })
        .unwrap();
    }

    #[test]
    fn conflicting_replaces_are_rejected() {
        let mut pul = PendingUpdateList::new();
        pul.add(UpdatePrimitive::ReplaceValue {
            target: nid(1),
            value: "a".into(),
        })
        .unwrap();
        assert!(pul
            .add(UpdatePrimitive::ReplaceValue {
                target: nid(1),
                value: "b".into(),
            })
            .is_err());
        pul.add(UpdatePrimitive::SetAttribute {
            elem: nid(2),
            name: "k".into(),
            value: "1".into(),
        })
        .unwrap();
        assert!(pul
            .add(UpdatePrimitive::SetAttribute {
                elem: nid(2),
                name: "k".into(),
                value: "2".into(),
            })
            .is_err());
        // a different attribute of the same element is compatible
        pul.add(UpdatePrimitive::SetAttribute {
            elem: nid(2),
            name: "other".into(),
            value: "2".into(),
        })
        .unwrap();
    }

    #[test]
    fn snapshot_positions_survive_mixed_application() {
        // <a><b/><c/><d/></a>: insert before <c> and delete <b> — both
        // target snapshot positions; the delete must not swallow the insert.
        let mut pul = PendingUpdateList::new();
        pul.add(UpdatePrimitive::InsertBefore {
            target: nid(2), // <c>
            content: fragment_from_xml("<new/>"),
        })
        .unwrap();
        pul.add(UpdatePrimitive::Delete { target: nid(1) }) // <b>
            .unwrap();
        let out = apply_both(&pul, "<a><b/><c/><d/></a>");
        assert_eq!(out, "<a><new/><c/><d/></a>");
    }

    #[test]
    fn delete_and_insert_on_same_node() {
        // insert before X + delete X: both contents land, X goes
        let mut pul = PendingUpdateList::new();
        pul.add(UpdatePrimitive::InsertBefore {
            target: nid(1),
            content: fragment_from_xml("<p/>"),
        })
        .unwrap();
        pul.add(UpdatePrimitive::InsertAfter {
            target: nid(1),
            content: fragment_from_xml("<q/>"),
        })
        .unwrap();
        pul.add(UpdatePrimitive::Delete { target: nid(1) }).unwrap();
        let out = apply_both(&pul, "<a><b><x/></b><c/></a>");
        assert_eq!(out, "<a><p/><q/><c/></a>");
    }

    #[test]
    fn replace_plus_delete_keeps_replacement() {
        // XQUF: the delete targets the original node, which the replace has
        // already detached — the delete is void and the replacement survives
        let mut pul = PendingUpdateList::new();
        pul.add(UpdatePrimitive::ReplaceNode {
            target: nid(1),
            content: fragment_from_xml("<y/>"),
        })
        .unwrap();
        pul.add(UpdatePrimitive::Delete { target: nid(1) }).unwrap();
        let out = apply_both(&pul, "<a><b/><c/></a>");
        assert_eq!(out, "<a><y/><c/></a>");
    }

    #[test]
    fn duplicate_deletes_collapse() {
        let mut pul = PendingUpdateList::new();
        pul.add(UpdatePrimitive::Delete { target: nid(1) }).unwrap();
        pul.add(UpdatePrimitive::Delete { target: nid(1) }).unwrap();
        let out = apply_both(&pul, "<a><b/><c/></a>");
        assert_eq!(out, "<a><c/></a>");
    }

    #[test]
    fn insert_into_deleted_subtree_vanishes() {
        let mut pul = PendingUpdateList::new();
        pul.add(UpdatePrimitive::InsertInto {
            parent: nid(1),
            first: false,
            content: fragment_from_xml("<new/>"),
        })
        .unwrap();
        pul.add(UpdatePrimitive::Delete { target: nid(1) }).unwrap();
        let out = apply_both(&pul, "<a><b><x/></b><c/></a>");
        assert_eq!(out, "<a><c/></a>");
    }

    #[test]
    fn element_value_replacement_wipes_pending_region_correctly() {
        // replace value of <a>'s first child <b> + delete <b>'s sibling <c>
        let mut pul = PendingUpdateList::new();
        pul.add(UpdatePrimitive::ReplaceValue {
            target: nid(1), // <b>
            value: "flat".into(),
        })
        .unwrap();
        pul.add(UpdatePrimitive::Delete { target: nid(4) }) // <c>
            .unwrap();
        let out = apply_both(&pul, "<a><b><x/><y/></b><c/></a>");
        assert_eq!(out, "<a><b>flat</b></a>");
    }

    #[test]
    fn qname_validation() {
        assert!(valid_qname("item"));
        assert!(valid_qname("ns:item"));
        assert!(valid_qname("_a-b.c"));
        assert!(!valid_qname(""));
        assert!(!valid_qname("1abc"));
        assert!(!valid_qname("a b"));
        assert!(!valid_qname("<x>"));
    }

    #[test]
    fn fragments_lists_touched_documents() {
        let mut pul = PendingUpdateList::new();
        pul.add(UpdatePrimitive::Delete {
            target: NodeId::new(2, 1),
        })
        .unwrap();
        pul.add(UpdatePrimitive::Delete {
            target: NodeId::new(1, 1),
        })
        .unwrap();
        assert_eq!(pul.fragments(), vec![1, 2]);
    }
}
