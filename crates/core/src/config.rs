//! Execution / optimization configuration and runtime statistics.
//!
//! Every optimization the paper evaluates is an independent switch here so
//! the ablation experiments (Figures 12–14, Section 4.2) can be reproduced by
//! toggling exactly one knob at a time.

use mxq_staircase::ScanStats;

/// Optimization and execution switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Evaluate `child` steps with the loop-lifted staircase join (Section 3);
    /// when false, the plain staircase join is invoked once per iteration
    /// (the "iterative child step" configuration of Figure 12).
    pub loop_lifted_child: bool,
    /// Same switch for the `descendant`/`descendant-or-self` axes.
    pub loop_lifted_descendant: bool,
    /// Push simple name tests below the location step using the element-name
    /// index (Section 3.2, the "nametest" configuration of Figure 12).
    pub nametest_pushdown: bool,
    /// Recognise value-based joins hidden in FLWOR/where nesting and compile
    /// them to relational joins instead of loop-lifted Cartesian products
    /// (Section 4.1, Figure 13).
    pub join_recognition: bool,
    /// Maintain and exploit order properties: prune sorts, use the streaming
    /// (hash-based) row numbering and positional lookups (Section 4.1,
    /// Figure 14).  When false every order requirement is (re-)established
    /// with a full sort.
    pub order_aware: bool,
    /// For non-equality existential comparisons, push min/max aggregates
    /// below the theta-join (Figure 8(b)); when false the join produces
    /// duplicate iteration pairs removed by a δ afterwards (Figure 8(a)).
    pub existential_minmax: bool,
    /// Assert the statically inferred plan properties against every executed
    /// intermediate table (debugging aid; also enabled by the
    /// `MXQ_VALIDATE_PLANS=1` environment variable).
    pub validate_plans: bool,
    /// Worker threads for the parallel kernels (scan, sort, aggregation,
    /// radix join).  `0` means "auto": honour the `MXQ_THREADS` environment
    /// variable, falling back to single-threaded execution.  Thread count is
    /// a pure performance knob — results are bit-identical for any value.
    pub threads: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            loop_lifted_child: true,
            loop_lifted_descendant: true,
            nametest_pushdown: true,
            join_recognition: true,
            order_aware: true,
            existential_minmax: true,
            validate_plans: false,
            threads: 0,
        }
    }
}

impl ExecConfig {
    /// The fully optimized configuration (all switches on) — the default.
    pub fn optimized() -> Self {
        Self::default()
    }

    /// A stable fingerprint of the configuration, used as part of plan-cache
    /// keys.  Every execution-affecting field feeds the key — two configs
    /// that differ in any of them must never share a cached statement, even
    /// when the difference (like `validate_plans` or `threads`) changes only
    /// how a plan runs rather than its shape.
    pub fn fingerprint(&self) -> u64 {
        let bits = [
            self.loop_lifted_child,
            self.loop_lifted_descendant,
            self.nametest_pushdown,
            self.join_recognition,
            self.order_aware,
            self.existential_minmax,
            self.validate_plans,
        ];
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
            | ((self.threads as u64) << 8)
    }

    /// The fully naive configuration (all switches off): iterative staircase
    /// joins, no join recognition, no order awareness.
    pub fn naive() -> Self {
        ExecConfig {
            loop_lifted_child: false,
            loop_lifted_descendant: false,
            nametest_pushdown: false,
            join_recognition: false,
            order_aware: false,
            existential_minmax: false,
            validate_plans: false,
            threads: 0,
        }
    }
}

/// Statistics gathered while executing one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Staircase join counters (nodes scanned, passes, …).
    pub staircase: ScanStats,
    /// Number of full sorts performed.
    pub sorts: u64,
    /// Number of sorts avoided thanks to order properties.
    pub sorts_avoided: u64,
    /// Number of algebra operators evaluated (memoised nodes count once).
    pub ops_evaluated: u64,
    /// Total rows of all materialised intermediate tables.
    pub rows_materialized: u64,
    /// Largest single intermediate table (rows).
    pub peak_rows: u64,
    /// Join pairs produced by theta/equi joins (before duplicate elimination).
    pub join_pairs: u64,
    /// Elements constructed in the transient container.
    pub constructed_nodes: u64,
    /// Equi-joins executed on the code-to-code fast path because the plan
    /// analyser statically proved both operands share one dictionary.
    pub proven_dict_joins: u64,
}

impl ExecStats {
    /// Record the materialisation of an intermediate result of `rows` rows.
    pub fn record_table(&mut self, rows: usize) {
        self.rows_materialized += rows as u64;
        self.peak_rows = self.peak_rows.max(rows as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_optimized() {
        let c = ExecConfig::default();
        assert!(c.loop_lifted_child && c.join_recognition && c.order_aware);
        let n = ExecConfig::naive();
        assert!(!n.loop_lifted_child && !n.join_recognition && !n.order_aware);
    }

    #[test]
    fn fingerprint_covers_every_execution_affecting_field() {
        let base = ExecConfig::default();
        let variants = [
            ExecConfig {
                loop_lifted_child: !base.loop_lifted_child,
                ..base
            },
            ExecConfig {
                loop_lifted_descendant: !base.loop_lifted_descendant,
                ..base
            },
            ExecConfig {
                nametest_pushdown: !base.nametest_pushdown,
                ..base
            },
            ExecConfig {
                join_recognition: !base.join_recognition,
                ..base
            },
            ExecConfig {
                order_aware: !base.order_aware,
                ..base
            },
            ExecConfig {
                existential_minmax: !base.existential_minmax,
                ..base
            },
            ExecConfig {
                validate_plans: !base.validate_plans,
                ..base
            },
            ExecConfig { threads: 4, ..base },
        ];
        for v in variants {
            assert_ne!(
                v.fingerprint(),
                base.fingerprint(),
                "flipping a field must change the fingerprint: {v:?}"
            );
        }
        // thread counts are distinguished from each other, not just from auto
        assert_ne!(
            ExecConfig { threads: 2, ..base }.fingerprint(),
            ExecConfig { threads: 4, ..base }.fingerprint()
        );
    }

    #[test]
    fn record_table_tracks_peak() {
        let mut s = ExecStats::default();
        s.record_table(10);
        s.record_table(3);
        assert_eq!(s.rows_materialized, 13);
        assert_eq!(s.peak_rows, 10);
    }
}
