//! Static plan analysis: property inference, plan verification and
//! property-driven simplification (Section 4.1 taken to its conclusion).
//!
//! The loop-lifting compiler annotates every node with the four order
//! properties of [`Props`] as it builds the plan.  This module re-derives a
//! *richer* property set bottom-up over the finished DAG — per-iteration
//! duplicate-freeness, document order, at-most-one-item cardinality, dense
//! positions, constant columns, the source document of a node column and the
//! dictionary a string column's codes come from — and puts it to work three
//! ways:
//!
//! * [`verify`] checks the structural preconditions of every operator (loop
//!   relations where loops are expected, nest maps where nest maps are
//!   expected, node sequences under the document-order δ) and that plan ids
//!   are unique, so a broken rewrite or compiler bug surfaces at `prepare()`
//!   time as [`crate::Error::PlanInvariant`] instead of as a silently wrong
//!   answer;
//! * [`simplify`] removes operators the properties prove redundant (a
//!   `docorder-δ` whose input is already in document order and duplicate
//!   free, a `distinct` over at-most-one-item iterations), statically commits
//!   a recognised join to the code-to-code fast path when both operands
//!   provably share one dictionary, and upgrades the compiler's conservative
//!   order annotations (the staircase join *does* emit `[iter, pos]` order
//!   after its renumbering) so the executor skips further sorts;
//! * [`validate_table`] asserts the inferred properties against actually
//!   executed tables when `MXQ_VALIDATE_PLANS=1` (or
//!   [`crate::ExecConfig::validate_plans`]) — the analysis is itself tested
//!   differentially, on every table of every query of the test suite.
//!
//! [`explain_annotated`] renders a plan with its inferred properties, which
//! [`crate::Session::explain`] exposes together with the list of applied
//! rewrites.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use mxq_engine::{Item, Table};

use crate::algebra::{Op, Plan, PlanRef, Props};

// ---------------------------------------------------------------------------
// the inferred property set
// ---------------------------------------------------------------------------

/// Table shape of an operator's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Unary `iter` loop relation.
    Loop,
    /// `outer|inner|pos|item` nest map.
    Nest,
    /// `iter|pos|item` sequence table.
    Seq,
}

/// What the `item` column of a sequence can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// Provably only node references.
    Nodes,
    /// Provably only atomic values (never nodes).
    Atomic,
    /// Statically unknown.
    Mixed,
}

impl ItemKind {
    fn join(self, other: ItemKind) -> ItemKind {
        if self == other {
            self
        } else {
            ItemKind::Mixed
        }
    }
}

/// Provenance of a dictionary-encoded string column: which shared dictionary
/// its codes resolve against.  Two columns with the same origin are backed by
/// the same [`mxq_engine::Dictionary`] instance at runtime, so an equi-join
/// between them runs code-to-code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DictOrigin {
    /// The attribute-value dictionary of the named loaded document.
    AttrValues(String),
}

impl fmt::Display for DictOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DictOrigin::AttrValues(doc) => write!(f, "attr-values({doc})"),
        }
    }
}

/// The properties inferred for one plan node.  Every `true` is a guarantee
/// (checked at runtime under `MXQ_VALIDATE_PLANS=1`); `false` means
/// "not proven", never "proven false".
#[derive(Debug, Clone)]
pub struct NodeProps {
    /// Output table shape.
    pub shape: Shape,
    /// Rows are sorted on `[iter, pos]` (loop relations: on `iter`).
    pub sorted_iter_pos: bool,
    /// Within each iteration the `pos` values are exactly `1..=k`.
    pub dense_pos: bool,
    /// Every iteration holds at most one row.
    pub max_one_per_iter: bool,
    /// No iteration holds the same node twice (trivially true for
    /// sequences proven to hold no nodes).
    pub dup_free_iter: bool,
    /// Node items appear in document order within each iteration
    /// (vacuously true for sequences proven to hold no nodes).
    pub item_doc_order: bool,
    /// What the `item` column can hold.
    pub item_kind: ItemKind,
    /// The literal items every iteration repeats (constant columns).
    pub const_items: Option<Vec<Item>>,
    /// Every node item provably belongs to this loaded document.
    pub source_doc: Option<String>,
    /// The dictionary the item column's codes provably come from.
    pub dict: Option<DictOrigin>,
}

impl NodeProps {
    /// Properties of a loop relation (`iter` only; item facts are vacuous).
    fn loop_shape() -> NodeProps {
        NodeProps {
            shape: Shape::Loop,
            sorted_iter_pos: true,
            dense_pos: true,
            max_one_per_iter: true,
            dup_free_iter: true,
            item_doc_order: true,
            item_kind: ItemKind::Mixed,
            const_items: None,
            source_doc: None,
            dict: None,
        }
    }

    /// Properties of a per-iteration single atomic value (comparisons,
    /// aggregates, boolean connectives, …).
    fn scalar() -> NodeProps {
        NodeProps {
            shape: Shape::Seq,
            sorted_iter_pos: true,
            dense_pos: true,
            max_one_per_iter: true,
            dup_free_iter: true,
            item_doc_order: true,
            item_kind: ItemKind::Atomic,
            const_items: None,
            source_doc: None,
            dict: None,
        }
    }

    fn conservative(shape: Shape) -> NodeProps {
        NodeProps {
            shape,
            sorted_iter_pos: false,
            dense_pos: false,
            max_one_per_iter: false,
            dup_free_iter: false,
            item_doc_order: false,
            item_kind: ItemKind::Mixed,
            const_items: None,
            source_doc: None,
            dict: None,
        }
    }

    /// Greatest lower bound of two property sets (used when an operator can
    /// produce either of two tables, e.g. an external variable falling back
    /// to its declared default).
    fn meet(&self, other: &NodeProps) -> NodeProps {
        NodeProps {
            shape: self.shape,
            sorted_iter_pos: self.sorted_iter_pos && other.sorted_iter_pos,
            dense_pos: self.dense_pos && other.dense_pos,
            max_one_per_iter: self.max_one_per_iter && other.max_one_per_iter,
            dup_free_iter: self.dup_free_iter && other.dup_free_iter,
            item_doc_order: self.item_doc_order && other.item_doc_order,
            item_kind: self.item_kind.join(other.item_kind),
            const_items: None,
            source_doc: match (&self.source_doc, &other.source_doc) {
                (Some(a), Some(b)) if a == b => Some(a.clone()),
                _ => None,
            },
            dict: match (&self.dict, &other.dict) {
                (Some(a), Some(b)) if a == b => Some(a.clone()),
                _ => None,
            },
        }
    }

    /// Compact annotation used by [`explain_annotated`].
    pub fn annotation(&self) -> String {
        let mut tags: Vec<String> = Vec::new();
        match self.shape {
            Shape::Loop => tags.push("loop".into()),
            Shape::Nest => tags.push("nest".into()),
            Shape::Seq => {
                if self.sorted_iter_pos {
                    tags.push("ord".into());
                }
                if self.dense_pos {
                    tags.push("pos1..k".into());
                }
                if self.max_one_per_iter {
                    tags.push("max1".into());
                }
                match self.item_kind {
                    ItemKind::Nodes => {
                        tags.push("nodes".into());
                        if self.dup_free_iter {
                            tags.push("dup-free".into());
                        }
                        if self.item_doc_order {
                            tags.push("doc-order".into());
                        }
                    }
                    ItemKind::Atomic => tags.push("atomic".into()),
                    ItemKind::Mixed => {}
                }
                if self.const_items.is_some() {
                    tags.push("const".into());
                }
                if let Some(doc) = &self.source_doc {
                    tags.push(format!("doc={doc}"));
                }
                if let Some(d) = &self.dict {
                    tags.push(format!("dict={d}"));
                }
            }
        }
        format!("{{{}}}", tags.join(" "))
    }
}

/// Structural equality of literal items (bitwise on doubles, so `NaN`
/// constants compare equal to themselves).
fn items_equal(a: &Item, b: &Item) -> bool {
    match (a, b) {
        (Item::Int(x), Item::Int(y)) => x == y,
        (Item::Dbl(x), Item::Dbl(y)) => x.to_bits() == y.to_bits(),
        (Item::Str(x), Item::Str(y)) => x == y,
        (Item::Bool(x), Item::Bool(y)) => x == y,
        (Item::Node(x), Item::Node(y)) => x == y,
        _ => false,
    }
}

fn kind_of_items(items: &[Item]) -> ItemKind {
    let nodes = items.iter().filter(|i| i.is_node()).count();
    if nodes == 0 {
        ItemKind::Atomic
    } else if nodes == items.len() {
        ItemKind::Nodes
    } else {
        ItemKind::Mixed
    }
}

fn pairwise_distinct(items: &[Item]) -> bool {
    // literal sequences are tiny; quadratic is fine (and capped for safety)
    items.len() <= 64
        && items
            .iter()
            .enumerate()
            .all(|(i, a)| items[i + 1..].iter().all(|b| !items_equal(a, b)))
}

// ---------------------------------------------------------------------------
// bottom-up inference
// ---------------------------------------------------------------------------

/// The result of analysing one plan DAG: inferred properties per plan id.
#[derive(Debug, Default)]
pub struct Analysis {
    props: HashMap<usize, NodeProps>,
}

impl Analysis {
    /// The inferred properties of a plan node, by id.
    ///
    /// # Panics
    /// Panics when the id does not belong to the analysed DAG.
    pub fn props(&self, id: usize) -> &NodeProps {
        &self.props[&id]
    }

    /// The inferred properties of a plan node, by id, if analysed.
    pub fn get(&self, id: usize) -> Option<&NodeProps> {
        self.props.get(&id)
    }

    /// Number of analysed nodes.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// True when no nodes were analysed.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// Analyse another root into this map (used when one execution evaluates
    /// several plans sharing an id space, e.g. update statements).
    pub fn extend_with(&mut self, root: &PlanRef) {
        analyze_into(root, &mut self.props);
    }
}

/// Infer properties for every node of the DAG, bottom-up.
pub fn analyze(root: &PlanRef) -> Analysis {
    let mut a = Analysis::default();
    a.extend_with(root);
    a
}

fn analyze_into(root: &PlanRef, out: &mut HashMap<usize, NodeProps>) {
    if out.contains_key(&root.id) {
        return;
    }
    for c in root.children() {
        analyze_into(&c, out);
    }
    let props = infer_node(&root.op, out);
    out.insert(root.id, props);
}

/// Per-operator inference.  `env` holds the already-inferred children.
fn infer_node(op: &Op, env: &HashMap<usize, NodeProps>) -> NodeProps {
    let p = |r: &PlanRef| &env[&r.id];
    match op {
        Op::LoopOne | Op::NestLoop { .. } | Op::SelectIters { .. } => NodeProps::loop_shape(),

        Op::ConstSeq { items, .. } => {
            let kind = kind_of_items(items);
            NodeProps {
                shape: Shape::Seq,
                sorted_iter_pos: true,
                dense_pos: true,
                max_one_per_iter: items.len() <= 1,
                dup_free_iter: pairwise_distinct(items),
                item_doc_order: items.len() <= 1 || kind == ItemKind::Atomic,
                item_kind: kind,
                const_items: Some(items.clone()),
                source_doc: None,
                dict: None,
            }
        }

        Op::DocRoot { name, .. } => NodeProps {
            shape: Shape::Seq,
            sorted_iter_pos: true,
            dense_pos: true,
            max_one_per_iter: true,
            dup_free_iter: true,
            item_doc_order: true,
            item_kind: ItemKind::Nodes,
            const_items: None,
            source_doc: Some(name.clone()),
            dict: None,
        },

        Op::ExternalVar { default, .. } => {
            // bound: the same opaque items replicated per iteration, emitted
            // in loop order
            let bound = NodeProps {
                shape: Shape::Seq,
                sorted_iter_pos: true,
                dense_pos: true,
                ..NodeProps::conservative(Shape::Seq)
            };
            match default {
                // unbound executions return the default's table verbatim
                Some(d) => bound.meet(p(d)),
                None => bound,
            }
        }

        Op::NestFromSeq { seq } => {
            let s = p(seq);
            NodeProps {
                shape: Shape::Nest,
                sorted_iter_pos: true,
                dense_pos: true,
                // at most one *inner iteration per outer iteration* — the
                // cardinality BackMap needs to inherit its body's order
                max_one_per_iter: s.max_one_per_iter,
                dup_free_iter: false,
                item_doc_order: false,
                item_kind: s.item_kind,
                const_items: None,
                source_doc: s.source_doc.clone(),
                dict: None,
            }
        }

        Op::NestFromJoin { source, .. } => {
            let s = p(source);
            NodeProps {
                shape: Shape::Nest,
                sorted_iter_pos: true,
                dense_pos: true,
                max_one_per_iter: false,
                dup_free_iter: false,
                item_doc_order: false,
                item_kind: s.item_kind,
                const_items: None,
                source_doc: s.source_doc.clone(),
                dict: None,
            }
        }

        Op::NestVar { nest } => {
            let n = p(nest);
            NodeProps {
                shape: Shape::Seq,
                sorted_iter_pos: true,
                dense_pos: true,
                max_one_per_iter: true,
                dup_free_iter: true,
                item_doc_order: true,
                item_kind: n.item_kind,
                const_items: None,
                source_doc: n.source_doc.clone(),
                dict: None,
            }
        }

        Op::NestVarPos { .. } => NodeProps::scalar(),

        Op::LiftThrough { seq, .. } => {
            // each inner iteration receives a verbatim copy of its outer
            // iteration's rows, emitted in (inner, pos) order
            let s = p(seq);
            NodeProps {
                shape: Shape::Seq,
                sorted_iter_pos: true,
                dict: None, // the copy re-materialises the item column
                ..s.clone()
            }
        }

        Op::BackMap {
            body,
            nest,
            order_keys,
        } => {
            let b = p(body);
            // when each outer iteration owns at most one inner iteration,
            // back-mapping concatenates at most one group: the body's
            // per-iteration order and duplicate facts survive.  With several
            // groups (or explicit order keys) they do not.
            let single_group = order_keys.is_empty() && p(nest).max_one_per_iter;
            NodeProps {
                shape: Shape::Seq,
                sorted_iter_pos: true,
                dense_pos: true,
                max_one_per_iter: single_group && b.max_one_per_iter,
                dup_free_iter: single_group && b.dup_free_iter,
                item_doc_order: single_group && b.item_doc_order,
                item_kind: b.item_kind,
                const_items: None,
                source_doc: b.source_doc.clone(),
                dict: None,
            }
        }

        Op::RestrictToIters { seq, .. } => {
            // whole iterations are dropped; surviving ones are untouched (the
            // row filter preserves order and the column encoding)
            NodeProps {
                shape: Shape::Seq,
                ..p(seq).clone()
            }
        }

        Op::Union { parts } => {
            if let [part] = parts.as_slice() {
                let q = p(part);
                return NodeProps {
                    shape: Shape::Seq,
                    sorted_iter_pos: true,
                    dense_pos: true,
                    dict: None,
                    ..q.clone()
                };
            }
            let kinds = parts
                .iter()
                .map(|q| p(q).item_kind)
                .reduce(ItemKind::join)
                .unwrap_or(ItemKind::Mixed);
            let source = parts
                .iter()
                .map(|q| p(q).source_doc.clone())
                .reduce(|a, b| if a == b { a } else { None })
                .flatten();
            NodeProps {
                shape: Shape::Seq,
                sorted_iter_pos: true,
                dense_pos: true,
                max_one_per_iter: false,
                dup_free_iter: kinds == ItemKind::Atomic,
                item_doc_order: kinds == ItemKind::Atomic,
                item_kind: kinds,
                const_items: None,
                source_doc: if kinds == ItemKind::Nodes {
                    source
                } else {
                    None
                },
                dict: None,
            }
        }

        Op::AxisStep { ctx, .. } => NodeProps {
            // the staircase join result is deduplicated per iteration and the
            // executor re-sorts it by (iter, node): document order, duplicate
            // free AND [iter, pos]-sorted — stronger than the compiler's
            // conservative annotation
            shape: Shape::Seq,
            sorted_iter_pos: true,
            dense_pos: true,
            max_one_per_iter: false,
            dup_free_iter: true,
            item_doc_order: true,
            item_kind: ItemKind::Nodes,
            const_items: None,
            source_doc: p(ctx).source_doc.clone(),
            dict: None,
        },

        Op::AttrStep { ctx, name } => {
            let c = p(ctx);
            // one named attribute per element: a single-node context yields
            // at most one row per iteration
            let single = c.max_one_per_iter && name.is_some();
            NodeProps {
                shape: Shape::Seq,
                sorted_iter_pos: true,
                dense_pos: true,
                max_one_per_iter: single,
                dup_free_iter: true, // holds no nodes
                item_doc_order: true,
                item_kind: ItemKind::Atomic,
                const_items: None,
                source_doc: None,
                // context nodes of one loaded document read their attribute
                // values as codes into that document's value dictionary
                dict: c
                    .source_doc
                    .clone()
                    .filter(|_| c.item_kind == ItemKind::Nodes)
                    .map(DictOrigin::AttrValues),
            }
        }

        Op::Arith { .. }
        | Op::ValueCmp { .. }
        | Op::GeneralCmp { .. }
        | Op::BoolAndOr { .. }
        | Op::BoolNot { .. }
        | Op::Ebv { .. }
        | Op::Empty { .. }
        | Op::Aggregate { .. }
        | Op::StringValue { .. }
        | Op::StringFn { .. } => NodeProps::scalar(),

        Op::Neg { e } => {
            let s = p(e);
            NodeProps {
                shape: Shape::Seq,
                sorted_iter_pos: s.sorted_iter_pos,
                dense_pos: s.dense_pos,
                max_one_per_iter: s.max_one_per_iter,
                dup_free_iter: true,
                item_doc_order: true,
                item_kind: ItemKind::Atomic,
                const_items: None,
                source_doc: None,
                dict: None,
            }
        }

        Op::Atomize { seq } => {
            let s = p(seq);
            NodeProps {
                shape: Shape::Seq,
                sorted_iter_pos: s.sorted_iter_pos,
                dense_pos: s.dense_pos,
                max_one_per_iter: s.max_one_per_iter,
                // distinct nodes may atomise to equal strings
                dup_free_iter: s.max_one_per_iter,
                item_doc_order: true,
                item_kind: ItemKind::Atomic,
                const_items: if s.item_kind == ItemKind::Atomic {
                    s.const_items.clone()
                } else {
                    None
                },
                source_doc: None,
                // a dictionary-encoded column is already atomic and passes
                // through unchanged, codes and all
                dict: s.dict.clone(),
            }
        }

        Op::CastNumber { seq } | Op::NumFn { arg: seq, .. } => {
            let s = p(seq);
            NodeProps {
                shape: Shape::Seq,
                sorted_iter_pos: s.sorted_iter_pos,
                dense_pos: s.dense_pos,
                max_one_per_iter: s.max_one_per_iter,
                dup_free_iter: true,
                item_doc_order: true,
                item_kind: ItemKind::Atomic,
                const_items: None,
                source_doc: None,
                dict: None,
            }
        }

        Op::DistinctValues { seq } => NodeProps {
            shape: Shape::Seq,
            sorted_iter_pos: true,
            dense_pos: true,
            max_one_per_iter: p(seq).max_one_per_iter,
            dup_free_iter: true,
            item_doc_order: true,
            item_kind: ItemKind::Atomic,
            const_items: None,
            source_doc: None,
            dict: None,
        },

        Op::DocOrderDistinct { seq } => {
            let s = p(seq);
            NodeProps {
                shape: Shape::Seq,
                sorted_iter_pos: true,
                dense_pos: true,
                max_one_per_iter: s.max_one_per_iter,
                dup_free_iter: true,
                item_doc_order: true,
                item_kind: s.item_kind,
                const_items: None,
                source_doc: s.source_doc.clone(),
                dict: None,
            }
        }

        Op::PosFilter { seq, .. } => {
            let s = p(seq);
            // positions are unique per iteration when they are dense, so a
            // positional pick keeps at most one row
            let max_one = s.dense_pos || s.max_one_per_iter;
            NodeProps {
                shape: Shape::Seq,
                sorted_iter_pos: s.sorted_iter_pos,
                dense_pos: true,
                max_one_per_iter: max_one,
                dup_free_iter: s.dup_free_iter || max_one,
                item_doc_order: s.item_doc_order,
                item_kind: s.item_kind,
                const_items: None,
                source_doc: s.source_doc.clone(),
                dict: s.dict.clone(),
            }
        }

        Op::Subsequence { seq, len, .. } => {
            let s = p(seq);
            let max_one = s.max_one_per_iter || (matches!(len, Some(l) if *l <= 1) && s.dense_pos);
            NodeProps {
                shape: Shape::Seq,
                sorted_iter_pos: s.sorted_iter_pos,
                dense_pos: true,
                max_one_per_iter: max_one,
                dup_free_iter: s.dup_free_iter || max_one,
                item_doc_order: s.item_doc_order,
                item_kind: s.item_kind,
                const_items: None,
                source_doc: s.source_doc.clone(),
                dict: s.dict.clone(),
            }
        }

        Op::ElemCtor { .. } => NodeProps {
            shape: Shape::Seq,
            sorted_iter_pos: true,
            dense_pos: true,
            max_one_per_iter: true,
            dup_free_iter: true,
            item_doc_order: true,
            item_kind: ItemKind::Nodes,
            const_items: None,
            // constructed nodes live in the transient container, not in a
            // loaded document
            source_doc: None,
            dict: None,
        },
    }
}

// ---------------------------------------------------------------------------
// plan verification
// ---------------------------------------------------------------------------

/// A structural invariant violated by a plan — a compiler or rewrite bug
/// caught before execution.
#[derive(Debug, Clone)]
pub struct PlanViolation {
    /// Id of the offending plan node.
    pub plan_id: usize,
    /// Operator name of the offending node.
    pub op: &'static str,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.plan_id, self.op, self.message)
    }
}

impl std::error::Error for PlanViolation {}

/// Verify the structural preconditions of every operator in the DAG.
///
/// Checked invariants: every `loop_` input is a loop relation, every `nest`
/// input is a nest map, every sequence input is a sequence; the
/// document-order δ and the axis steps consume sequences that can actually
/// hold nodes; literal sequences hold no node references; plan ids are
/// unique across the DAG (distinct nodes sharing an id would corrupt the
/// executor's memo table).
pub fn verify(root: &PlanRef, analysis: &Analysis) -> Result<(), PlanViolation> {
    let mut ids: HashMap<usize, *const Plan> = HashMap::new();
    verify_node(root, analysis, &mut ids)
}

fn verify_node(
    p: &PlanRef,
    analysis: &Analysis,
    ids: &mut HashMap<usize, *const Plan>,
) -> Result<(), PlanViolation> {
    let ptr = Arc::as_ptr(p);
    match ids.get(&p.id) {
        Some(&seen) if std::ptr::eq(seen, ptr) => return Ok(()),
        Some(_) => {
            return Err(PlanViolation {
                plan_id: p.id,
                op: p.op_name(),
                message: "two distinct plan nodes share one id (memo corruption)".into(),
            })
        }
        None => {
            ids.insert(p.id, ptr);
        }
    }
    for c in p.children() {
        verify_node(&c, analysis, ids)?;
    }

    let violation = |message: String| PlanViolation {
        plan_id: p.id,
        op: p.op_name(),
        message,
    };
    let shape_of = |r: &PlanRef| analysis.props(r.id).shape;
    let expect = |r: &PlanRef, want: Shape, slot: &str| -> Result<(), PlanViolation> {
        let got = shape_of(r);
        if got == want {
            Ok(())
        } else {
            Err(violation(format!(
                "{slot} input [{}] has shape {got:?}, expected {want:?}",
                r.id
            )))
        }
    };

    use Shape::{Loop, Nest, Seq};
    match &p.op {
        Op::LoopOne => {}
        Op::ConstSeq { loop_, items } => {
            expect(loop_, Loop, "loop")?;
            if items.iter().any(Item::is_node) {
                return Err(violation("literal sequence holds a node reference".into()));
            }
        }
        Op::DocRoot { loop_, .. } => expect(loop_, Loop, "loop")?,
        Op::ExternalVar { loop_, default, .. } => {
            expect(loop_, Loop, "loop")?;
            if let Some(d) = default {
                expect(d, Seq, "default")?;
            }
        }
        Op::NestFromSeq { seq } => expect(seq, Seq, "seq")?,
        Op::NestFromJoin {
            source,
            outer_loop,
            left,
            right,
            ..
        } => {
            expect(source, Seq, "source")?;
            expect(outer_loop, Loop, "outer loop")?;
            expect(left, Seq, "left operand")?;
            expect(right, Seq, "right operand")?;
        }
        Op::NestLoop { nest } | Op::NestVar { nest } | Op::NestVarPos { nest } => {
            expect(nest, Nest, "nest")?
        }
        Op::LiftThrough { seq, nest } => {
            expect(seq, Seq, "seq")?;
            expect(nest, Nest, "nest")?;
        }
        Op::BackMap {
            body,
            nest,
            order_keys,
        } => {
            expect(body, Seq, "body")?;
            expect(nest, Nest, "nest")?;
            for (k, _) in order_keys {
                expect(k, Seq, "order key")?;
            }
        }
        Op::SelectIters { cond, loop_, .. } => {
            expect(cond, Seq, "condition")?;
            expect(loop_, Loop, "loop")?;
        }
        Op::RestrictToIters { seq, iters } => {
            expect(seq, Seq, "seq")?;
            expect(iters, Loop, "iters")?;
        }
        Op::Union { parts } => {
            for part in parts {
                expect(part, Seq, "part")?;
            }
        }
        Op::AxisStep { ctx, .. } | Op::AttrStep { ctx, .. } => {
            expect(ctx, Seq, "context")?;
            if analysis.props(ctx.id).item_kind == ItemKind::Atomic {
                return Err(violation(
                    "path step over a provably node-free sequence (XPTY0019)".into(),
                ));
            }
        }
        Op::Arith { l, r, .. } | Op::ValueCmp { l, r, .. } => {
            expect(l, Seq, "left")?;
            expect(r, Seq, "right")?;
        }
        Op::Neg { e } => expect(e, Seq, "operand")?,
        Op::GeneralCmp { l, r, loop_, .. } | Op::BoolAndOr { l, r, loop_, .. } => {
            expect(l, Seq, "left")?;
            expect(r, Seq, "right")?;
            expect(loop_, Loop, "loop")?;
        }
        Op::BoolNot { e, loop_ } => {
            expect(e, Seq, "operand")?;
            expect(loop_, Loop, "loop")?;
        }
        Op::Ebv { seq, loop_ }
        | Op::Empty { seq, loop_ }
        | Op::Aggregate { seq, loop_, .. }
        | Op::StringValue { seq, loop_ } => {
            expect(seq, Seq, "seq")?;
            expect(loop_, Loop, "loop")?;
        }
        Op::Atomize { seq }
        | Op::CastNumber { seq }
        | Op::DistinctValues { seq }
        | Op::PosFilter { seq, .. }
        | Op::Subsequence { seq, .. } => expect(seq, Seq, "seq")?,
        Op::DocOrderDistinct { seq } => {
            expect(seq, Seq, "seq")?;
            if analysis.props(seq.id).item_kind == ItemKind::Atomic {
                return Err(violation(
                    "document-order δ over a provably node-free sequence".into(),
                ));
            }
        }
        Op::StringFn { args, loop_, .. } => {
            for a in args {
                expect(a, Seq, "argument")?;
            }
            expect(loop_, Loop, "loop")?;
        }
        Op::NumFn { arg, .. } => expect(arg, Seq, "argument")?,
        Op::ElemCtor {
            loop_,
            attrs,
            content,
            ..
        } => {
            expect(loop_, Loop, "loop")?;
            for (_, a) in attrs {
                expect(a, Seq, "attribute value")?;
            }
            for c in content {
                expect(c, Seq, "content")?;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// property-driven simplification
// ---------------------------------------------------------------------------

/// One applied rewrite, for `EXPLAIN`-style reporting.
#[derive(Debug, Clone)]
pub struct Rewrite {
    /// Id of the node the rewrite applied to (in the pre-rewrite plan).
    pub plan_id: usize,
    /// Human-readable description.
    pub description: String,
}

impl fmt::Display for Rewrite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.plan_id, self.description)
    }
}

/// The outcome of [`simplify`].
#[derive(Debug)]
pub struct Simplified {
    /// The rewritten plan (shares untouched sub-DAGs with the input).
    pub plan: PlanRef,
    /// Operator eliminations and join commitments, in application order.
    pub rewrites: Vec<Rewrite>,
    /// Number of nodes whose order annotations were strengthened.
    pub props_upgraded: usize,
}

struct Simplifier<'a> {
    analysis: &'a Analysis,
    memo: HashMap<usize, PlanRef>,
    next_id: usize,
    rewrites: Vec<Rewrite>,
    props_upgraded: usize,
}

/// Rewrite a plan using the inferred properties:
///
/// * drop a [`Op::DocOrderDistinct`] whose input is provably in document
///   order, duplicate free and densely numbered — the δ would be an
///   expensive no-op;
/// * replace a [`Op::DistinctValues`] over at-most-one-item iterations with
///   plain atomisation;
/// * set the `dict_join` flag on a [`Op::NestFromJoin`] whose operands
///   provably share one dictionary, committing the executor to the
///   code-to-code join without a runtime check;
/// * strengthen [`Props`] where the analysis proves more order than the
///   compiler annotated (notably: axis-step output *is* `[iter, pos]`
///   sorted), letting the order-aware executor skip downstream sorts.
///
/// Node ids are preserved for rewritten nodes (replacement nodes get fresh
/// ids), so the executor's memoisation keeps working across shared sub-DAGs.
pub fn simplify(root: &PlanRef, analysis: &Analysis) -> Simplified {
    let mut max_id = 0;
    fn walk_max(p: &PlanRef, seen: &mut HashMap<usize, ()>, max_id: &mut usize) {
        if seen.insert(p.id, ()).is_some() {
            return;
        }
        *max_id = (*max_id).max(p.id);
        for c in p.children() {
            walk_max(&c, seen, max_id);
        }
    }
    walk_max(root, &mut HashMap::new(), &mut max_id);

    let mut s = Simplifier {
        analysis,
        memo: HashMap::new(),
        next_id: max_id + 1,
        rewrites: Vec::new(),
        props_upgraded: 0,
    };
    let plan = s.rewrite(root);
    Simplified {
        plan,
        rewrites: s.rewrites,
        props_upgraded: s.props_upgraded,
    }
}

impl Simplifier<'_> {
    fn rewrite(&mut self, p: &PlanRef) -> PlanRef {
        if let Some(done) = self.memo.get(&p.id) {
            return done.clone();
        }
        let result = self.rewrite_uncached(p);
        self.memo.insert(p.id, result.clone());
        result
    }

    fn rewrite_uncached(&mut self, p: &PlanRef) -> PlanRef {
        // -- elimination: redundant document-order δ ------------------------
        if let Op::DocOrderDistinct { seq } = &p.op {
            let a = self.analysis.props(seq.id);
            if a.item_kind == ItemKind::Nodes && a.item_doc_order && a.dup_free_iter && a.dense_pos
            {
                self.rewrites.push(Rewrite {
                    plan_id: p.id,
                    description: format!(
                        "removed docorder-δ: input [{}] is already in document order, \
                         duplicate-free and densely numbered",
                        seq.id
                    ),
                });
                return self.rewrite(seq);
            }
        }

        // -- elimination: distinct-values over singleton iterations ---------
        if let Op::DistinctValues { seq } = &p.op {
            let a = self.analysis.props(seq.id);
            if a.max_one_per_iter && a.dense_pos {
                self.rewrites.push(Rewrite {
                    plan_id: p.id,
                    description: format!(
                        "replaced distinct with data: input [{}] holds at most one \
                         item per iteration",
                        seq.id
                    ),
                });
                let child = self.rewrite(seq);
                let op = Op::Atomize { seq: child };
                let props = strengthen(crate::compile::infer_props(&op), self.analysis.get(p.id));
                let id = self.next_id;
                self.next_id += 1;
                return Arc::new(Plan { id, op, props });
            }
        }

        // -- generic rebuild with rewritten children ------------------------
        let new_op = self.rebuild_op(p);
        let props = strengthen(p.props, self.analysis.get(p.id));
        let children_changed = new_op.is_some();
        if !children_changed && props == p.props {
            return p.clone();
        }
        if props != p.props {
            self.props_upgraded += 1;
        }
        Arc::new(Plan {
            id: p.id,
            op: new_op.unwrap_or_else(|| self.rebuild_op_forced(p)),
            props,
        })
    }

    /// Rebuild the operator with rewritten children; `None` when every child
    /// rewrote to itself (pointer-identical) and no flag changed.
    fn rebuild_op(&mut self, p: &PlanRef) -> Option<Op> {
        let before: Vec<PlanRef> = p.children();
        let after: Vec<PlanRef> = before.iter().map(|c| self.rewrite(c)).collect();
        let unchanged = before.iter().zip(&after).all(|(a, b)| Arc::ptr_eq(a, b));
        let dict_commit = self.dict_join_commit(p);
        if unchanged && !dict_commit {
            return None;
        }
        Some(self.rebuild_with(p, dict_commit))
    }

    fn rebuild_op_forced(&mut self, p: &PlanRef) -> Op {
        let dict_commit = self.dict_join_commit(p);
        self.rebuild_with(p, dict_commit)
    }

    /// Does this node qualify for the static code-to-code join commitment?
    fn dict_join_commit(&mut self, p: &PlanRef) -> bool {
        let Op::NestFromJoin {
            left,
            right,
            op,
            dict_join,
            ..
        } = &p.op
        else {
            return false;
        };
        if *dict_join || !op.is_equality() {
            return false;
        }
        let (Some(ld), Some(rd)) = (
            &self.analysis.props(left.id).dict,
            &self.analysis.props(right.id).dict,
        ) else {
            return false;
        };
        if ld != rd {
            return false;
        }
        self.rewrites.push(Rewrite {
            plan_id: p.id,
            description: format!(
                "committed nest(⋈) to the code-to-code join: both operands are \
                 encoded against {ld}"
            ),
        });
        true
    }

    fn rebuild_with(&mut self, p: &PlanRef, dict_commit: bool) -> Op {
        let rw = |s: &mut Self, r: &PlanRef| s.rewrite(r);
        match &p.op {
            Op::LoopOne => Op::LoopOne,
            Op::ConstSeq { loop_, items } => Op::ConstSeq {
                loop_: rw(self, loop_),
                items: items.clone(),
            },
            Op::DocRoot { loop_, name } => Op::DocRoot {
                loop_: rw(self, loop_),
                name: name.clone(),
            },
            Op::ExternalVar {
                loop_,
                name,
                default,
            } => Op::ExternalVar {
                loop_: rw(self, loop_),
                name: name.clone(),
                default: default.as_ref().map(|d| rw(self, d)),
            },
            Op::NestFromSeq { seq } => Op::NestFromSeq { seq: rw(self, seq) },
            Op::NestFromJoin {
                source,
                outer_loop,
                left,
                right,
                op,
                dict_join,
            } => Op::NestFromJoin {
                source: rw(self, source),
                outer_loop: rw(self, outer_loop),
                left: rw(self, left),
                right: rw(self, right),
                op: *op,
                dict_join: *dict_join || dict_commit,
            },
            Op::NestLoop { nest } => Op::NestLoop {
                nest: rw(self, nest),
            },
            Op::NestVar { nest } => Op::NestVar {
                nest: rw(self, nest),
            },
            Op::NestVarPos { nest } => Op::NestVarPos {
                nest: rw(self, nest),
            },
            Op::LiftThrough { seq, nest } => Op::LiftThrough {
                seq: rw(self, seq),
                nest: rw(self, nest),
            },
            Op::BackMap {
                body,
                nest,
                order_keys,
            } => Op::BackMap {
                body: rw(self, body),
                nest: rw(self, nest),
                order_keys: order_keys.iter().map(|(k, d)| (rw(self, k), *d)).collect(),
            },
            Op::SelectIters {
                cond,
                loop_,
                negate,
            } => Op::SelectIters {
                cond: rw(self, cond),
                loop_: rw(self, loop_),
                negate: *negate,
            },
            Op::RestrictToIters { seq, iters } => Op::RestrictToIters {
                seq: rw(self, seq),
                iters: rw(self, iters),
            },
            Op::Union { parts } => Op::Union {
                parts: parts.iter().map(|q| rw(self, q)).collect(),
            },
            Op::AxisStep { ctx, axis, test } => Op::AxisStep {
                ctx: rw(self, ctx),
                axis: *axis,
                test: test.clone(),
            },
            Op::AttrStep { ctx, name } => Op::AttrStep {
                ctx: rw(self, ctx),
                name: name.clone(),
            },
            Op::Arith { op, l, r } => Op::Arith {
                op: *op,
                l: rw(self, l),
                r: rw(self, r),
            },
            Op::Neg { e } => Op::Neg { e: rw(self, e) },
            Op::ValueCmp { op, l, r } => Op::ValueCmp {
                op: *op,
                l: rw(self, l),
                r: rw(self, r),
            },
            Op::GeneralCmp { op, l, r, loop_ } => Op::GeneralCmp {
                op: *op,
                l: rw(self, l),
                r: rw(self, r),
                loop_: rw(self, loop_),
            },
            Op::BoolAndOr {
                is_and,
                l,
                r,
                loop_,
            } => Op::BoolAndOr {
                is_and: *is_and,
                l: rw(self, l),
                r: rw(self, r),
                loop_: rw(self, loop_),
            },
            Op::BoolNot { e, loop_ } => Op::BoolNot {
                e: rw(self, e),
                loop_: rw(self, loop_),
            },
            Op::Ebv { seq, loop_ } => Op::Ebv {
                seq: rw(self, seq),
                loop_: rw(self, loop_),
            },
            Op::Empty { seq, loop_ } => Op::Empty {
                seq: rw(self, seq),
                loop_: rw(self, loop_),
            },
            Op::Aggregate { func, seq, loop_ } => Op::Aggregate {
                func: *func,
                seq: rw(self, seq),
                loop_: rw(self, loop_),
            },
            Op::Atomize { seq } => Op::Atomize { seq: rw(self, seq) },
            Op::StringValue { seq, loop_ } => Op::StringValue {
                seq: rw(self, seq),
                loop_: rw(self, loop_),
            },
            Op::CastNumber { seq } => Op::CastNumber { seq: rw(self, seq) },
            Op::StringFn { kind, args, loop_ } => Op::StringFn {
                kind: *kind,
                args: args.iter().map(|a| rw(self, a)).collect(),
                loop_: rw(self, loop_),
            },
            Op::NumFn { kind, arg } => Op::NumFn {
                kind: *kind,
                arg: rw(self, arg),
            },
            Op::DistinctValues { seq } => Op::DistinctValues { seq: rw(self, seq) },
            Op::DocOrderDistinct { seq } => Op::DocOrderDistinct { seq: rw(self, seq) },
            Op::PosFilter { seq, kind } => Op::PosFilter {
                seq: rw(self, seq),
                kind: *kind,
            },
            Op::Subsequence { seq, start, len } => Op::Subsequence {
                seq: rw(self, seq),
                start: *start,
                len: *len,
            },
            Op::ElemCtor {
                loop_,
                name,
                attrs,
                content,
            } => Op::ElemCtor {
                loop_: rw(self, loop_),
                name: name.clone(),
                attrs: attrs
                    .iter()
                    .map(|(n, a)| (n.clone(), rw(self, a)))
                    .collect(),
                content: content.iter().map(|c| rw(self, c)).collect(),
            },
        }
    }
}

/// Merge the analysis' order facts into the compiler's [`Props`] annotation.
/// `[iter, pos]`-sortedness implies group order.
fn strengthen(mut props: Props, inferred: Option<&NodeProps>) -> Props {
    if let Some(a) = inferred {
        if a.sorted_iter_pos {
            props.ord_iter_pos = true;
            props.grpord_pos = true;
        }
        if a.item_doc_order && a.item_kind == ItemKind::Nodes {
            props.item_doc_order = true;
        }
    }
    props
}

// ---------------------------------------------------------------------------
// runtime validation (MXQ_VALIDATE_PLANS=1)
// ---------------------------------------------------------------------------

/// Assert the inferred properties of one plan node against its executed
/// table.  Returns a description of the first violated property, if any.
///
/// Loop relations check iteration order and uniqueness; nest maps are
/// skipped (their invariants are structural); sequence tables check order,
/// position density, cardinality, item kind, per-iteration duplicate
/// freedom, document order, constant columns and dictionary encoding.
pub fn validate_table(props: &NodeProps, t: &Table) -> Result<(), String> {
    match props.shape {
        Shape::Nest => return Ok(()),
        Shape::Loop => {
            let Ok(col) = t.column("iter") else {
                return Ok(());
            };
            let Ok(iters) = col.as_int() else {
                return Ok(());
            };
            if props.sorted_iter_pos && iters.windows(2).any(|w| w[0] > w[1]) {
                return Err("loop iterations are not sorted".into());
            }
            if props.max_one_per_iter {
                let mut seen = std::collections::HashSet::new();
                if iters.iter().any(|i| !seen.insert(*i)) {
                    return Err("loop relation repeats an iteration".into());
                }
            }
            return Ok(());
        }
        Shape::Seq => {}
    }
    let (Ok(iter), Ok(pos), Ok(item)) = (t.column("iter"), t.column("pos"), t.column("item"))
    else {
        return Ok(());
    };
    let (Ok(iters), Ok(poss)) = (iter.as_int(), pos.as_int()) else {
        return Ok(());
    };
    let items = item.to_items();

    if props.sorted_iter_pos {
        for w in 0..iters.len().saturating_sub(1) {
            if (iters[w], poss[w]) > (iters[w + 1], poss[w + 1]) {
                return Err(format!(
                    "claimed [iter, pos] order is violated at row {}",
                    w + 1
                ));
            }
        }
    }

    let mut groups: HashMap<i64, Vec<(i64, &Item)>> = HashMap::new();
    for i in 0..iters.len() {
        groups
            .entry(iters[i])
            .or_default()
            .push((poss[i], &items[i]));
    }
    for rows in groups.values_mut() {
        rows.sort_by_key(|(p, _)| *p);
    }

    if props.max_one_per_iter {
        if let Some((it, _)) = groups.iter().find(|(_, rows)| rows.len() > 1) {
            return Err(format!("iteration {it} holds more than one item"));
        }
    }
    if props.dense_pos {
        for (it, rows) in &groups {
            if rows
                .iter()
                .enumerate()
                .any(|(k, (p, _))| *p != k as i64 + 1)
            {
                return Err(format!("iteration {it} positions are not 1..=k"));
            }
        }
    }
    match props.item_kind {
        ItemKind::Nodes => {
            if items.iter().any(|i| !i.is_node()) {
                return Err("claimed node column holds a non-node item".into());
            }
        }
        ItemKind::Atomic => {
            if items.iter().any(Item::is_node) {
                return Err("claimed atomic column holds a node".into());
            }
        }
        ItemKind::Mixed => {}
    }
    if props.item_kind == ItemKind::Nodes {
        for (it, rows) in &groups {
            let nodes: Vec<_> = rows
                .iter()
                .filter_map(|(_, i)| match i {
                    Item::Node(n) => Some(*n),
                    _ => None,
                })
                .collect();
            if props.item_doc_order && nodes.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("iteration {it} nodes are not in document order"));
            }
            if props.dup_free_iter {
                let mut seen = std::collections::HashSet::new();
                if nodes.iter().any(|n| !seen.insert(*n)) {
                    return Err(format!("iteration {it} holds a duplicate node"));
                }
            }
        }
    }
    if let Some(want) = &props.const_items {
        for (it, rows) in &groups {
            if rows.len() != want.len()
                || rows
                    .iter()
                    .zip(want)
                    .any(|((_, got), w)| !items_equal(got, w))
            {
                return Err(format!(
                    "iteration {it} does not repeat the claimed constant sequence"
                ));
            }
        }
    }
    if props.dict.is_some() && t.nrows() > 0 && item.dict_parts().is_none() {
        return Err("claimed dictionary-encoded column is not dictionary-encoded".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// annotated explain
// ---------------------------------------------------------------------------

/// Render the DAG like [`Plan::explain`], annotating every node with its
/// inferred properties (and the code-to-code commitment of a recognised
/// join).  Shared nodes are expanded once.
pub fn explain_annotated(root: &PlanRef, analysis: &Analysis) -> String {
    let mut out = String::new();
    let mut seen = std::collections::HashSet::new();
    fn walk(
        p: &PlanRef,
        depth: usize,
        analysis: &Analysis,
        seen: &mut std::collections::HashSet<usize>,
        out: &mut String,
    ) {
        out.push_str(&"  ".repeat(depth));
        if !seen.insert(p.id) {
            out.push_str(&format!("[{}] {} (shared)\n", p.id, p.op_name()));
            return;
        }
        let commit = match &p.op {
            Op::NestFromJoin {
                dict_join: true, ..
            } => " code=code",
            _ => "",
        };
        let ann = analysis
            .get(p.id)
            .map(|np| np.annotation())
            .unwrap_or_default();
        out.push_str(&format!("[{}] {}{} {}\n", p.id, p.op_name(), commit, ann));
        for c in p.children() {
            walk(&c, depth + 1, analysis, seen, out);
        }
    }
    walk(root, 0, analysis, &mut seen, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiler;
    use crate::config::ExecConfig;
    use crate::parser::parse_query;

    fn plan_of(q: &str) -> PlanRef {
        let parsed = parse_query(q).expect("parse");
        Compiler::new(ExecConfig::default())
            .compile_query(&parsed)
            .expect("compile")
    }

    #[test]
    fn literal_sequences_are_constant_and_atomic() {
        let plan = plan_of("3");
        let a = analyze(&plan);
        let p = a.props(plan.id);
        assert_eq!(p.item_kind, ItemKind::Atomic);
        assert!(p.sorted_iter_pos && p.dense_pos && p.max_one_per_iter);
        assert!(matches!(p.const_items.as_deref(), Some([Item::Int(3)])));

        // sequence construction unions singleton constants: still ordered
        // and atomic, but no longer a single constant column
        let plan = plan_of("(1, 2, 3)");
        let a = analyze(&plan);
        let p = a.props(plan.id);
        assert_eq!(p.item_kind, ItemKind::Atomic);
        assert!(p.sorted_iter_pos && p.dense_pos);
        assert!(!p.max_one_per_iter);
    }

    #[test]
    fn axis_steps_prove_document_order_and_source() {
        let plan = plan_of("doc(\"d.xml\")/a/b");
        let a = analyze(&plan);
        let p = a.props(plan.id);
        assert_eq!(p.item_kind, ItemKind::Nodes);
        assert!(p.sorted_iter_pos && p.dup_free_iter && p.item_doc_order);
        assert_eq!(p.source_doc.as_deref(), Some("d.xml"));
    }

    #[test]
    fn attribute_steps_inherit_the_value_dictionary() {
        let plan = plan_of("doc(\"d.xml\")/a/@id");
        let a = analyze(&plan);
        let p = a.props(plan.id);
        assert_eq!(p.item_kind, ItemKind::Atomic);
        assert_eq!(p.dict, Some(DictOrigin::AttrValues("d.xml".to_string())));
    }

    #[test]
    fn every_compiled_plan_verifies() {
        for q in [
            "1 + 2",
            "(1, 2)[2]",
            "doc(\"d.xml\")//a[@id = \"x\"]/b[1]",
            "for $x in doc(\"d.xml\")/a/b order by $x/@k return <r>{$x}</r>",
            "for $x in doc(\"d.xml\")/a/b for $y in doc(\"d.xml\")/c \
             where $y/@ref = $x/@id return $y",
            "declare variable $v external := 3; $v * 2",
        ] {
            let plan = plan_of(q);
            let a = analyze(&plan);
            verify(&plan, &a).unwrap_or_else(|v| panic!("{q} violates: {v}"));
        }
    }

    #[test]
    fn verifier_rejects_steps_over_atomics() {
        let plan = plan_of("(1, 2)/self::a");
        let a = analyze(&plan);
        let err = verify(&plan, &a).expect_err("atomic context must be rejected");
        assert!(err.message.contains("node-free"));
    }

    #[test]
    fn verifier_rejects_duplicate_ids() {
        let l1 = Arc::new(Plan {
            id: 0,
            op: Op::LoopOne,
            props: Props::default(),
        });
        let l2 = Arc::new(Plan {
            id: 0,
            op: Op::LoopOne,
            props: Props::default(),
        });
        let bad = Arc::new(Plan {
            id: 1,
            op: Op::Union {
                parts: vec![
                    Arc::new(Plan {
                        id: 2,
                        op: Op::ConstSeq {
                            loop_: l1,
                            items: vec![Item::Int(1)],
                        },
                        props: Props::default(),
                    }),
                    Arc::new(Plan {
                        id: 3,
                        op: Op::ConstSeq {
                            loop_: l2,
                            items: vec![Item::Int(2)],
                        },
                        props: Props::default(),
                    }),
                ],
            },
            props: Props::default(),
        });
        let a = analyze(&bad);
        let err = verify(&bad, &a).expect_err("duplicate ids must be rejected");
        assert!(err.message.contains("share one id"));
    }

    #[test]
    fn simplifier_drops_redundant_docorder_delta() {
        // `$b` binds one node per iteration, so the predicated step's
        // back-mapping concatenates a single staircase-join group: already
        // document-ordered and duplicate-free
        let plan = plan_of("for $b in doc(\"d.xml\")/site/a return $b/bidder[1]");
        assert!(plan.explain().contains("docorder-δ"));
        let a = analyze(&plan);
        let simplified = simplify(&plan, &a);
        assert!(
            !simplified.plan.explain().contains("docorder-δ"),
            "redundant δ must be removed:\n{}",
            simplified.plan.explain()
        );
        assert!(simplified
            .rewrites
            .iter()
            .any(|r| r.description.contains("docorder-δ")));
    }

    #[test]
    fn simplifier_keeps_required_docorder_delta() {
        // the context of the predicated step is a full node sequence — the
        // back-mapped groups may interleave, the δ must stay
        let plan = plan_of("doc(\"d.xml\")//a[@id = \"x\"]");
        let a = analyze(&plan);
        let simplified = simplify(&plan, &a);
        assert!(simplified.plan.explain().contains("docorder-δ"));
    }

    #[test]
    fn simplifier_rewrites_distinct_over_singletons() {
        let plan = plan_of("for $x in doc(\"d.xml\")/a return distinct-values($x/@id)");
        let a = analyze(&plan);
        let simplified = simplify(&plan, &a);
        assert!(!simplified.plan.explain().contains("distinct"));
        assert!(simplified
            .rewrites
            .iter()
            .any(|r| r.description.contains("distinct")));
    }

    #[test]
    fn simplifier_commits_shared_dictionary_joins() {
        let plan = plan_of(
            "for $p in doc(\"d.xml\")/site/people/person \
             for $o in doc(\"d.xml\")/site/orders/order \
             where $o/@buyer = $p/@id return $p",
        );
        assert!(
            plan.explain().contains("nest(⋈)"),
            "join must be recognised"
        );
        let a = analyze(&plan);
        let simplified = simplify(&plan, &a);
        assert!(simplified
            .rewrites
            .iter()
            .any(|r| r.description.contains("code-to-code")));
        let re = analyze(&simplified.plan);
        assert!(explain_annotated(&simplified.plan, &re).contains("code=code"));
    }

    #[test]
    fn simplifier_upgrades_axis_step_order() {
        let plan = plan_of("doc(\"d.xml\")/a/b/c");
        let a = analyze(&plan);
        let simplified = simplify(&plan, &a);
        assert!(simplified.props_upgraded > 0);
        fn all_steps_ordered(p: &PlanRef) -> bool {
            let here = !matches!(p.op, Op::AxisStep { .. }) || p.props.ord_iter_pos;
            here && p.children().iter().all(all_steps_ordered)
        }
        assert!(all_steps_ordered(&simplified.plan));
    }

    #[test]
    fn simplified_plans_keep_unique_ids_and_verify() {
        for q in [
            "for $b in doc(\"d.xml\")/a return $b/c[1]/text()",
            "for $x in doc(\"d.xml\")/a return distinct-values($x/@id)",
            "doc(\"d.xml\")//a[@id = \"x\"]/b",
        ] {
            let plan = plan_of(q);
            let a = analyze(&plan);
            let simplified = simplify(&plan, &a);
            let re = analyze(&simplified.plan);
            verify(&simplified.plan, &re)
                .unwrap_or_else(|v| panic!("{q} violates after simplify: {v}"));
        }
    }

    #[test]
    fn annotations_render_inferred_properties() {
        let plan = plan_of("doc(\"d.xml\")/a/@id");
        let a = analyze(&plan);
        let s = explain_annotated(&plan, &a);
        assert!(s.contains("dict=attr-values(d.xml)"), "{s}");
        assert!(s.contains("{ord"), "{s}");
    }
}
