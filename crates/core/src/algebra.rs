//! The relational algebra targeted by the XQuery compiler.
//!
//! Every operator consumes and produces *sequence tables* with the pervasive
//! `iter|pos|item` schema of Section 2.1 (loop relations are unary `iter`
//! tables, nest maps carry `outer|inner|pos|item`).  The operator set mirrors
//! the logical algebra of the paper — σ, π, ⋈, ×, \, ∪̇, the row-numbering
//! operator ρ, aggregates — but the variants are specialised to the plan
//! shapes the loop-lifting compiler emits, which is exactly the property the
//! peephole optimizer of Section 4.1 exploits.
//!
//! Plans are DAGs: sub-plans are shared via [`PlanRef`] (reference counting),
//! and the executor memoises evaluated nodes by plan id, mirroring the
//! materialisation of intermediate results in MonetDB/XQuery.

use std::sync::Arc;

use mxq_engine::agg::AggFunc;
use mxq_engine::{CmpOp, Item};
use mxq_staircase::{Axis, NodeTest};

use crate::ast::ArithOp;

/// A reference-counted plan node.  Plans are immutable after compilation and
/// atomically reference counted, so a compiled plan (and with it a
/// [`crate::Prepared`] statement or a plan-cache entry) can be shared and
/// executed from many threads concurrently.
pub type PlanRef = Arc<Plan>;

/// Column properties inferred at plan-construction time and exploited by the
/// executor when the order-aware mode is enabled (Section 4.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Props {
    /// The output is sorted on `[iter, pos]` (the `ord` property).
    pub ord_iter_pos: bool,
    /// Within every `iter` group the `pos` values are ascending even if the
    /// groups are interleaved (the `grpord` property).
    pub grpord_pos: bool,
    /// The `iter` column is densely numbered `1..n` (the `dense` property).
    pub dense_iter: bool,
    /// The `item` column holds nodes in document order within each iteration.
    pub item_doc_order: bool,
}

/// A plan node: a unique id (for memoisation), the operator, and the inferred
/// column properties.
#[derive(Debug)]
pub struct Plan {
    /// Unique identifier within one compilation.
    pub id: usize,
    /// The operator.
    pub op: Op,
    /// Inferred column properties.
    pub props: Props,
}

/// String functions supported by [`Op::StringFn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrFnKind {
    /// `fn:contains(a, b)`.
    Contains,
    /// `fn:starts-with(a, b)`.
    StartsWith,
    /// `fn:ends-with(a, b)`.
    EndsWith,
    /// `fn:concat(a, b, …)`.
    Concat,
    /// `fn:string-length(a)`.
    StringLength,
    /// `fn:substring(a, start[, len])`.
    Substring,
    /// `fn:string-join(seq, sep)`.
    StringJoin,
    /// `fn:upper-case(a)`.
    UpperCase,
    /// `fn:lower-case(a)`.
    LowerCase,
    /// `fn:normalize-space(a)`.
    NormalizeSpace,
    /// `fn:name(node)` — element name.
    NodeName,
    /// `fn:translate(a, from, to)`.
    Translate,
}

/// Numeric single-argument functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumFnKind {
    /// `fn:round`.
    Round,
    /// `fn:floor`.
    Floor,
    /// `fn:ceiling`.
    Ceiling,
    /// `fn:abs`.
    Abs,
}

/// Positional predicate kinds (`[3]`, `[last()]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PosFilterKind {
    /// Keep the item whose position equals the given constant.
    Eq(i64),
    /// Keep the last item of every iteration.
    Last,
}

/// The algebra operators.
#[derive(Debug)]
pub enum Op {
    /// The outermost loop relation: a single iteration (`iter = [1]`).
    LoopOne,
    /// A constant sequence, loop-lifted: for every iteration of `loop_`, the
    /// same literal items at positions `1..len`.
    ConstSeq {
        /// The loop relation to lift over.
        loop_: PlanRef,
        /// The literal items.
        items: Vec<Item>,
    },
    /// The root node of a loaded document, loop-lifted over `loop_`.
    DocRoot {
        /// The loop relation.
        loop_: PlanRef,
        /// Document name as passed to `fn:doc`.
        name: String,
    },
    /// An external variable (`declare variable $x external;`): its value is
    /// supplied at execution time through [`crate::Params`] and loop-lifted
    /// over `loop_` exactly like a constant sequence.  The optional `default`
    /// plan (from `declare variable $x external := expr;`) is evaluated when
    /// no binding is supplied; without a default, executing with the
    /// variable unbound is an error.
    ExternalVar {
        /// The loop relation to lift over.
        loop_: PlanRef,
        /// Variable name (without `$`).
        name: String,
        /// Default-value plan when the prolog declares one.
        default: Option<PlanRef>,
    },
    /// ρ: turn a sequence into a *nest map* describing one new inner
    /// iteration per input tuple.  Output columns `outer|inner|pos|item`
    /// where `inner` is densely numbered in `[iter, pos]` order.
    NestFromSeq {
        /// The sequence being iterated by a `for` clause.
        seq: PlanRef,
    },
    /// Join-recognised nesting (Section 4.1/4.2): the `for` source is
    /// independent of the enclosing loop and the `where` clause is a general
    /// comparison between an outer-only and an inner-only expression.  The
    /// nest map contains one inner iteration per *qualifying* pair of
    /// (outer iteration, source row), computed with a join instead of a
    /// Cartesian product.
    NestFromJoin {
        /// Source sequence evaluated once (in the singleton loop).
        source: PlanRef,
        /// The enclosing loop relation.
        outer_loop: PlanRef,
        /// Outer-only comparison operand, keyed by the outer `iter`.
        left: PlanRef,
        /// Source-only comparison operand, keyed by the source row (its `iter`
        /// equals the source row number).
        right: PlanRef,
        /// The comparison operator (existential semantics).
        op: CmpOp,
        /// Statically committed to the code-to-code join: the plan analyser
        /// proved both operands are encoded against the same dictionary, so
        /// the executor may (and the stats do) count on the fast path
        /// without a runtime `Arc::ptr_eq` probe succeeding by luck.
        dict_join: bool,
    },
    /// Inner loop relation of a nest map (`iter` = the `inner` column).
    NestLoop {
        /// The nest map.
        nest: PlanRef,
    },
    /// The `for` variable of a nest map: `iter = inner`, `pos = 1`, `item`.
    NestVar {
        /// The nest map.
        nest: PlanRef,
    },
    /// The positional (`at $i`) variable of a nest map.
    NestVarPos {
        /// The nest map.
        nest: PlanRef,
    },
    /// Lift a sequence of the outer scope into the inner scope of `nest`
    /// (the "loop-lifting" join over the scope map relation).
    LiftThrough {
        /// The outer-scope sequence.
        seq: PlanRef,
        /// The nest map defining the inner scope.
        nest: PlanRef,
    },
    /// Map an inner-scope result back to the outer scope (the back-mapping
    /// equi-join of Figure 5(c)), renumbering positions; optional order keys
    /// (each keyed by inner iteration, major key first, with a per-key
    /// direction) implement multi-key `order by`.
    BackMap {
        /// The inner-scope result.
        body: PlanRef,
        /// The nest map.
        nest: PlanRef,
        /// `order by` keys: one item per inner iteration each, paired with
        /// the key's descending flag.  Empty when there is no `order by`.
        order_keys: Vec<(PlanRef, bool)>,
    },
    /// Iterations of a (boolean, single-item) condition that are true
    /// (`negate = false`) or absent/false (`negate = true`) — the σ/σ¬ pair
    /// of Figure 5(b).  Output: unary `iter` table.
    SelectIters {
        /// The per-iteration condition.
        cond: PlanRef,
        /// The loop relation (needed to compute the complement).
        loop_: PlanRef,
        /// Return the complement?
        negate: bool,
    },
    /// Keep only tuples whose `iter` appears in the given loop relation.
    RestrictToIters {
        /// The sequence to restrict.
        seq: PlanRef,
        /// The loop relation to restrict to.
        iters: PlanRef,
    },
    /// Disjoint union of sequences evaluated in disjoint (or ordered)
    /// iteration sets; positions are renumbered per iteration with the part
    /// index as the major key (sequence construction `e1, e2`).
    Union {
        /// The parts, in sequence order.
        parts: Vec<PlanRef>,
    },
    /// An XPath axis step evaluated with the (loop-lifted) staircase join.
    AxisStep {
        /// The context sequence (node items).
        ctx: PlanRef,
        /// The axis.
        axis: Axis,
        /// The node test.
        test: NodeTest,
    },
    /// Attribute access: for each context node, the value(s) of the named
    /// attribute (or all attributes), as untyped string items.
    AttrStep {
        /// The context sequence (node items).
        ctx: PlanRef,
        /// Attribute name; `None` selects all attributes.
        name: Option<String>,
    },
    /// Binary arithmetic on per-iteration single items.
    Arith {
        /// The operator.
        op: ArithOp,
        /// Left operand.
        l: PlanRef,
        /// Right operand.
        r: PlanRef,
    },
    /// Unary minus.
    Neg {
        /// Operand.
        e: PlanRef,
    },
    /// Value comparison (`eq`, `lt`, …) on per-iteration single items; also
    /// used for node order comparisons (`<<`, `>>`, `is`).
    ValueCmp {
        /// The operator.
        op: CmpOp,
        /// Left operand.
        l: PlanRef,
        /// Right operand.
        r: PlanRef,
    },
    /// General comparison with existential semantics (Section 4.2): true for
    /// an iteration iff *any* pair of items compares true.
    GeneralCmp {
        /// The operator.
        op: CmpOp,
        /// Left operand sequence.
        l: PlanRef,
        /// Right operand sequence.
        r: PlanRef,
        /// The loop relation (iterations with empty operands yield false).
        loop_: PlanRef,
    },
    /// Logical `and` / `or` of per-iteration booleans.
    BoolAndOr {
        /// True for `and`.
        is_and: bool,
        /// Left operand.
        l: PlanRef,
        /// Right operand.
        r: PlanRef,
        /// The loop relation.
        loop_: PlanRef,
    },
    /// Logical negation of a per-iteration boolean (`fn:not`).
    BoolNot {
        /// Operand (effective boolean value is taken).
        e: PlanRef,
        /// The loop relation.
        loop_: PlanRef,
    },
    /// Effective boolean value per iteration (`fn:exists` shape): true iff
    /// the iteration has at least one item whose EBV is true (for node items:
    /// non-empty).
    Ebv {
        /// The sequence.
        seq: PlanRef,
        /// The loop relation (absent iterations get `false`).
        loop_: PlanRef,
    },
    /// `fn:empty`.
    Empty {
        /// The sequence.
        seq: PlanRef,
        /// The loop relation.
        loop_: PlanRef,
    },
    /// Grouped aggregate (`count`, `sum`, `avg`, `min`, `max`) per iteration.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The sequence to aggregate (atomised).
        seq: PlanRef,
        /// The loop relation: `count`/`sum` produce 0 for empty iterations,
        /// the others produce the empty sequence.
        loop_: PlanRef,
    },
    /// Atomisation (`fn:data`): nodes are replaced by their typed value
    /// (string value; numeric strings stay strings — casts are explicit).
    Atomize {
        /// The sequence.
        seq: PlanRef,
    },
    /// `fn:string` of the first item (empty string for the empty sequence).
    StringValue {
        /// The sequence.
        seq: PlanRef,
        /// The loop relation.
        loop_: PlanRef,
    },
    /// `fn:number` — cast to double.
    CastNumber {
        /// The sequence.
        seq: PlanRef,
    },
    /// String functions (see [`StrFnKind`]).
    StringFn {
        /// Which function.
        kind: StrFnKind,
        /// Arguments (each a per-iteration sequence, atomised to its first item).
        args: Vec<PlanRef>,
        /// The loop relation.
        loop_: PlanRef,
    },
    /// Numeric functions (round/floor/ceiling/abs).
    NumFn {
        /// Which function.
        kind: NumFnKind,
        /// Argument.
        arg: PlanRef,
    },
    /// `fn:distinct-values` per iteration (atomised).
    DistinctValues {
        /// The sequence.
        seq: PlanRef,
    },
    /// Sort node items into document order and remove duplicates, per
    /// iteration (the implicit step between path steps).
    DocOrderDistinct {
        /// The sequence of node items.
        seq: PlanRef,
    },
    /// Positional predicate (`[3]`, `[last()]`) per iteration.
    PosFilter {
        /// The sequence.
        seq: PlanRef,
        /// Which positions to keep.
        kind: PosFilterKind,
    },
    /// `fn:subsequence(seq, start[, len])` with constant bounds.
    Subsequence {
        /// The sequence.
        seq: PlanRef,
        /// 1-based start position.
        start: i64,
        /// Optional length.
        len: Option<i64>,
    },
    /// Element construction: for every iteration of `loop_`, build a new
    /// element node in the transient container with the given (computed)
    /// attributes and child content.
    ElemCtor {
        /// The loop relation (one element per iteration).
        loop_: PlanRef,
        /// Element name.
        name: String,
        /// Attributes: name and per-iteration string value.
        attrs: Vec<(String, PlanRef)>,
        /// Child content parts, concatenated per iteration.
        content: Vec<PlanRef>,
    },
}

impl Plan {
    /// Number of operators in the plan DAG (each shared node counted once) —
    /// the paper reports an average of 86 operators for XMark plans.
    pub fn operator_count(self: &Arc<Self>) -> usize {
        let mut seen = std::collections::HashSet::new();
        fn walk(p: &PlanRef, seen: &mut std::collections::HashSet<usize>) {
            if !seen.insert(p.id) {
                return;
            }
            for c in p.children() {
                walk(&c, seen);
            }
        }
        walk(self, &mut seen);
        seen.len()
    }

    /// The children of this plan node (shared references).
    pub fn children(&self) -> Vec<PlanRef> {
        match &self.op {
            Op::LoopOne => vec![],
            Op::ConstSeq { loop_, .. } | Op::DocRoot { loop_, .. } => vec![loop_.clone()],
            Op::ExternalVar { loop_, default, .. } => {
                let mut v = vec![loop_.clone()];
                v.extend(default.iter().cloned());
                v
            }
            Op::NestFromSeq { seq } => vec![seq.clone()],
            Op::NestFromJoin {
                source,
                outer_loop,
                left,
                right,
                ..
            } => vec![
                source.clone(),
                outer_loop.clone(),
                left.clone(),
                right.clone(),
            ],
            Op::NestLoop { nest } | Op::NestVar { nest } | Op::NestVarPos { nest } => {
                vec![nest.clone()]
            }
            Op::LiftThrough { seq, nest } => vec![seq.clone(), nest.clone()],
            Op::BackMap {
                body,
                nest,
                order_keys,
            } => {
                let mut v = vec![body.clone(), nest.clone()];
                v.extend(order_keys.iter().map(|(k, _)| k.clone()));
                v
            }
            Op::SelectIters { cond, loop_, .. } => vec![cond.clone(), loop_.clone()],
            Op::RestrictToIters { seq, iters } => vec![seq.clone(), iters.clone()],
            Op::Union { parts } => parts.clone(),
            Op::AxisStep { ctx, .. } => vec![ctx.clone()],
            Op::AttrStep { ctx, .. } => vec![ctx.clone()],
            Op::Arith { l, r, .. } | Op::ValueCmp { l, r, .. } => vec![l.clone(), r.clone()],
            Op::Neg { e } => vec![e.clone()],
            Op::GeneralCmp { l, r, loop_, .. } | Op::BoolAndOr { l, r, loop_, .. } => {
                vec![l.clone(), r.clone(), loop_.clone()]
            }
            Op::BoolNot { e, loop_ } => vec![e.clone(), loop_.clone()],
            Op::Ebv { seq, loop_ }
            | Op::Empty { seq, loop_ }
            | Op::Aggregate { seq, loop_, .. } => {
                vec![seq.clone(), loop_.clone()]
            }
            Op::Atomize { seq }
            | Op::CastNumber { seq }
            | Op::DistinctValues { seq }
            | Op::DocOrderDistinct { seq }
            | Op::PosFilter { seq, .. }
            | Op::Subsequence { seq, .. } => vec![seq.clone()],
            Op::StringValue { seq, loop_ } => vec![seq.clone(), loop_.clone()],
            Op::StringFn { args, loop_, .. } => {
                let mut v = args.clone();
                v.push(loop_.clone());
                v
            }
            Op::NumFn { arg, .. } => vec![arg.clone()],
            Op::ElemCtor {
                loop_,
                attrs,
                content,
                ..
            } => {
                let mut v = vec![loop_.clone()];
                v.extend(attrs.iter().map(|(_, p)| p.clone()));
                v.extend(content.iter().cloned());
                v
            }
        }
    }

    /// Short operator name for debug dumps and plan statistics.
    pub fn op_name(&self) -> &'static str {
        match &self.op {
            Op::LoopOne => "loop",
            Op::ConstSeq { .. } => "const",
            Op::DocRoot { .. } => "doc",
            Op::ExternalVar { .. } => "extern",
            Op::NestFromSeq { .. } => "nest(ρ)",
            Op::NestFromJoin { .. } => "nest(⋈)",
            Op::NestLoop { .. } => "nest-loop",
            Op::NestVar { .. } => "nest-var",
            Op::NestVarPos { .. } => "nest-pos",
            Op::LiftThrough { .. } => "lift(⋈)",
            Op::BackMap { .. } => "backmap(⋈ρ)",
            Op::SelectIters { .. } => "σ-iters",
            Op::RestrictToIters { .. } => "⋉",
            Op::Union { .. } => "∪̇",
            Op::AxisStep { .. } => "scj",
            Op::AttrStep { .. } => "attr",
            Op::Arith { .. } => "arith",
            Op::Neg { .. } => "neg",
            Op::ValueCmp { .. } => "cmp",
            Op::GeneralCmp { .. } => "cmp∃",
            Op::BoolAndOr { .. } => "bool",
            Op::BoolNot { .. } => "not",
            Op::Ebv { .. } => "ebv",
            Op::Empty { .. } => "empty",
            Op::Aggregate { .. } => "agg",
            Op::Atomize { .. } => "data",
            Op::StringValue { .. } => "string",
            Op::CastNumber { .. } => "number",
            Op::StringFn { .. } => "strfn",
            Op::NumFn { .. } => "numfn",
            Op::DistinctValues { .. } => "distinct",
            Op::DocOrderDistinct { .. } => "docorder-δ",
            Op::PosFilter { .. } => "pos-σ",
            Op::Subsequence { .. } => "subseq",
            Op::ElemCtor { .. } => "elem",
        }
    }

    /// Render the DAG as an indented tree (shared nodes are expanded once and
    /// referenced by id afterwards) — useful for `EXPLAIN`-style output.
    pub fn explain(self: &Arc<Self>) -> String {
        let mut out = String::new();
        let mut seen = std::collections::HashSet::new();
        fn walk(
            p: &PlanRef,
            depth: usize,
            seen: &mut std::collections::HashSet<usize>,
            out: &mut String,
        ) {
            out.push_str(&"  ".repeat(depth));
            if !seen.insert(p.id) {
                out.push_str(&format!("[{}] {} (shared)\n", p.id, p.op_name()));
                return;
            }
            out.push_str(&format!("[{}] {}\n", p.id, p.op_name()));
            for c in p.children() {
                walk(&c, depth + 1, seen, out);
            }
        }
        walk(self, 0, &mut seen, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(id: usize, op: Op) -> PlanRef {
        Arc::new(Plan {
            id,
            op,
            props: Props::default(),
        })
    }

    #[test]
    fn operator_count_counts_shared_nodes_once() {
        let loop_ = mk(0, Op::LoopOne);
        let a = mk(
            1,
            Op::ConstSeq {
                loop_: loop_.clone(),
                items: vec![Item::Int(1)],
            },
        );
        let b = mk(
            2,
            Op::ConstSeq {
                loop_: loop_.clone(),
                items: vec![Item::Int(2)],
            },
        );
        let top = mk(3, Op::Union { parts: vec![a, b] });
        assert_eq!(top.operator_count(), 4);
    }

    #[test]
    fn explain_mentions_operators() {
        let loop_ = mk(0, Op::LoopOne);
        let c = mk(
            1,
            Op::ConstSeq {
                loop_,
                items: vec![Item::Int(1)],
            },
        );
        let s = c.explain();
        assert!(s.contains("const"));
        assert!(s.contains("loop"));
    }
}
