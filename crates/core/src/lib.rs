//! # mxq-xquery — a relational XQuery processor (the Pathfinder reproduction)
//!
//! This crate is the primary contribution of the MonetDB/XQuery reproduction:
//! an XQuery compiler and executor that represents XML documents and XQuery
//! item sequences *purely* as relational tables and evaluates queries with
//! relational algebra, exactly as described in the SIGMOD 2006 paper.
//!
//! The pipeline:
//!
//! 1. [`parser`] — XQuery text → AST ([`ast`]);
//! 2. [`compile`] — loop-lifting compilation into the relational algebra of
//!    [`algebra`], including join recognition (Section 4.1);
//! 3. [`exec`] — evaluation of the plan DAG over the column-store kernel
//!    (`mxq-engine`), the XML storage (`mxq-xmldb`) and the loop-lifted
//!    staircase join (`mxq-staircase`), with all optimizations of the paper
//!    individually switchable through [`ExecConfig`].
//!
//! The public API mirrors MonetDB/XQuery's *server* shape ([`db`]):
//!
//! * a [`Database`] owns the shredded documents behind a single-writer /
//!   many-reader lock and an LRU plan cache, and is shared via `Arc`;
//! * each client opens a cheap [`Session`] ([`Database::session`]) carrying
//!   its own [`ExecConfig`] and statistics;
//! * [`Session::prepare`] parses + compiles a statement **once** into a
//!   [`Prepared`] handle — external variables declared with
//!   `declare variable $x external;` are bound per execution with
//!   [`Prepared::bind`] — and [`Session::execute`] auto-detects query
//!   vs. update text ([`StatementResult`]);
//! * results stream ([`QueryResult::into_iter`],
//!   [`Session::execute_streaming`]) instead of forcing one big string.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use mxq_xquery::Database;
//!
//! let db = Arc::new(Database::new());
//! db.load_document("books.xml",
//!     "<books><book year=\"2004\"><title>DB</title></book>\
//!      <book year=\"2006\"><title>XML</title></book></books>").unwrap();
//!
//! let mut session = db.session();
//! let result = session
//!     .query("for $b in doc(\"books.xml\")/books/book where $b/@year >= 2005 \
//!             return $b/title/text()")
//!     .unwrap();
//! assert_eq!(result.serialize(), "XML");
//!
//! // compile once, execute many times with different bindings
//! let stmt = session
//!     .prepare("declare variable $year external; \
//!               count(doc(\"books.xml\")/books/book[@year >= $year])")
//!     .unwrap();
//! assert_eq!(stmt.bind("year", 2000).query().unwrap().serialize(), "2");
//! assert_eq!(stmt.bind("year", 2005).query().unwrap().serialize(), "1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod analysis;
pub mod ast;
pub mod compile;
pub mod config;
pub mod db;
pub mod durability;
pub mod exec;
pub mod params;
pub mod parser;
pub mod pul;

use std::fmt;

use mxq_xmldb::{ShredError, StoreError};

pub use algebra::{Plan, PlanRef};
pub use analysis::{
    analyze, explain_annotated, simplify, Analysis, NodeProps, PlanViolation, Rewrite,
};
pub use ast::Statement;
pub use compile::{CompileError, Compiler};
pub use config::{ExecConfig, ExecStats};
pub use db::{
    Binder, Database, DatabaseStats, Prepared, QueryReport, QueryResult, ResultStream, Session,
    SessionStats, StatementResult, StoreReadGuard, UpdateReport,
};
pub use durability::{DurabilityError, DurabilityOptions};
pub use exec::{serialize_items, serialize_items_snapshot, ExecError, Executor};
pub use params::Params;
pub use parser::{parse_expr, parse_query, parse_statement, parse_update, ParseError};
pub use pul::{PendingUpdateList, PulError, UpdateKind, UpdatePlan, UpdatePrimitive};

/// Any error a database/session/engine call can produce.
///
/// Implements [`std::error::Error`] with a [`source`](std::error::Error::source)
/// chain pointing at the phase-specific error (shred, parse, compile,
/// execute, update apply), so callers can use `?` with `anyhow`-style
/// handling and still inspect the failing phase.
#[derive(Debug)]
pub enum Error {
    /// XML shredding failed.
    Shred(ShredError),
    /// Query parsing failed.
    Parse(ParseError),
    /// Compilation failed.
    Compile(CompileError),
    /// Execution failed.
    Exec(ExecError),
    /// Collecting or checking a pending update list failed.
    Update(PulError),
    /// Publishing updated document pages to the store failed (e.g. the
    /// target fragment id is unknown or transient).
    Store(StoreError),
    /// The plan verifier found a structural invariant violation in a
    /// compiled plan — a compiler or rewrite bug, caught at prepare time.
    PlanInvariant(PlanViolation),
    /// A statement of the wrong kind was passed to a kind-specific entry
    /// point (e.g. an updating statement to [`Session::query`]).
    WrongStatementKind {
        /// The statement kind the entry point expected.
        expected: &'static str,
    },
    /// The durability layer failed: a WAL append/fsync, a checkpoint
    /// write, or recovery of an on-disk state.  For WAL failures during an
    /// update the in-memory store is untouched — the statement failed as a
    /// whole.
    Durability(DurabilityError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Shred(e) => write!(f, "shredding failed: {e}"),
            Error::Parse(e) => write!(f, "{e}"),
            Error::Compile(e) => write!(f, "compilation failed: {e}"),
            Error::Exec(e) => write!(f, "execution failed: {e}"),
            Error::Update(e) => write!(f, "update failed: {e}"),
            Error::Store(e) => write!(f, "store publish failed: {e}"),
            Error::PlanInvariant(v) => write!(f, "plan invariant violated: {v}"),
            Error::WrongStatementKind { expected } => {
                write!(
                    f,
                    "statement is not a {expected} (use `execute` for mixed text)"
                )
            }
            Error::Durability(e) => write!(f, "durability failure: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Shred(e) => Some(e),
            Error::Parse(e) => Some(e),
            Error::Compile(e) => Some(e),
            Error::Exec(e) => Some(e),
            Error::Update(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::PlanInvariant(v) => Some(v),
            Error::WrongStatementKind { .. } => None,
            Error::Durability(e) => Some(e),
        }
    }
}

impl From<ShredError> for Error {
    fn from(e: ShredError) -> Self {
        Error::Shred(e)
    }
}
impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        Error::Store(e)
    }
}
impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}
impl From<CompileError> for Error {
    fn from(e: CompileError) -> Self {
        Error::Compile(e)
    }
}
impl From<ExecError> for Error {
    fn from(e: ExecError) -> Self {
        Error::Exec(e)
    }
}
impl From<PulError> for Error {
    fn from(e: PulError) -> Self {
        Error::Update(e)
    }
}
impl From<PlanViolation> for Error {
    fn from(v: PlanViolation) -> Self {
        Error::PlanInvariant(v)
    }
}
impl From<DurabilityError> for Error {
    fn from(e: DurabilityError) -> Self {
        Error::Durability(e)
    }
}

pub use mxq_wal::SyncPolicy;
pub use mxq_xmldb::{DEFAULT_FILL_PERCENT, DEFAULT_PAGE_SIZE};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn engine() -> Session {
        Arc::new(Database::new()).session()
    }

    fn engine_with(xml: &str) -> Session {
        let s = engine();
        s.database().load_document("doc.xml", xml).unwrap();
        s
    }

    #[test]
    fn constant_and_arithmetic_queries() {
        let mut e = engine();
        assert_eq!(e.query("1 + 2 * 3").unwrap().serialize(), "7");
        assert_eq!(e.query("(1, 2, 3)").unwrap().serialize(), "1 2 3");
        assert_eq!(e.query("10 div 4").unwrap().serialize(), "2.5");
        assert_eq!(e.query("7 mod 2").unwrap().serialize(), "1");
        assert_eq!(e.query("\"a\"").unwrap().serialize(), "a");
    }

    #[test]
    fn flwor_with_conditional_matches_paper_example() {
        // the running example of Section 2.1
        let mut e = engine();
        let r = e
            .query("for $v in (3, 4, 5, 6) return if ($v mod 2 = 0) then \"even\" else \"odd\"")
            .unwrap();
        assert_eq!(r.serialize(), "odd even odd even");
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn path_steps_and_predicates() {
        let mut e = engine_with(
            "<site><people><person id=\"p0\"><name>Ann</name></person>\
             <person id=\"p1\"><name>Bob</name></person></people></site>",
        );
        let r = e
            .query(
                "for $p in doc(\"doc.xml\")/site/people/person[@id = \"p1\"] return $p/name/text()",
            )
            .unwrap();
        assert_eq!(r.serialize(), "Bob");
        let r = e.query("count(doc(\"doc.xml\")//person)").unwrap();
        assert_eq!(r.serialize(), "2");
        let r = e
            .query("doc(\"doc.xml\")/site/people/person[2]/name/text()")
            .unwrap();
        assert_eq!(r.serialize(), "Bob");
        let r = e
            .query("doc(\"doc.xml\")/site/people/person[last()]/@id")
            .unwrap();
        assert_eq!(r.serialize(), "p1");
    }

    #[test]
    fn element_construction_and_nesting() {
        let mut e = engine_with("<a><b>x</b><b>y</b></a>");
        let r = e
            .query(
                "for $b in doc(\"doc.xml\")/a/b return <item n=\"{$b/text()}\">{$b/text()}</item>",
            )
            .unwrap();
        assert_eq!(
            r.serialize(),
            "<item n=\"x\">x</item><item n=\"y\">y</item>"
        );
    }

    #[test]
    fn aggregates_and_let() {
        let mut e = engine_with("<a><v>1</v><v>2</v><v>3</v></a>");
        let r = e
            .query("let $vs := doc(\"doc.xml\")/a/v return sum($vs) + count($vs)")
            .unwrap();
        assert_eq!(r.serialize(), "9");
        let r = e.query("avg(doc(\"doc.xml\")/a/v/text())").unwrap();
        assert_eq!(r.serialize(), "2");
    }

    #[test]
    fn where_clause_join_queries_match_under_all_configs() {
        let xml = "<db><people><p id=\"1\"/><p id=\"2\"/><p id=\"3\"/></people>\
                   <orders><o buyer=\"1\"/><o buyer=\"1\"/><o buyer=\"3\"/></orders></db>";
        let q = "for $p in doc(\"doc.xml\")/db/people/p \
                 return <r id=\"{$p/@id}\">{count(for $o in doc(\"doc.xml\")/db/orders/o \
                                                  where $o/@buyer = $p/@id return $o)}</r>";
        let mut with = engine();
        with.database().load_document("doc.xml", xml).unwrap();
        let mut without = Arc::new(Database::new()).session_with_config(ExecConfig {
            join_recognition: false,
            ..ExecConfig::default()
        });
        without.database().load_document("doc.xml", xml).unwrap();
        let a = with.query(q).unwrap();
        let b = without.query(q).unwrap();
        assert_eq!(a.serialize(), b.serialize());
        assert_eq!(
            a.serialize(),
            "<r id=\"1\">2</r><r id=\"2\">0</r><r id=\"3\">1</r>"
        );
    }

    #[test]
    fn order_by_sorts_results() {
        let mut e = engine_with("<a><i k=\"3\">c</i><i k=\"1\">a</i><i k=\"2\">b</i></a>");
        let r = e
            .query("for $i in doc(\"doc.xml\")/a/i order by $i/@k return $i/text()")
            .unwrap();
        assert_eq!(r.serialize(), "abc");
        let r = e
            .query("for $i in doc(\"doc.xml\")/a/i order by $i/@k descending return $i/text()")
            .unwrap();
        assert_eq!(r.serialize(), "cba");
    }

    #[test]
    fn quantified_and_logical() {
        let mut e = engine_with("<a><v>1</v><v>5</v></a>");
        assert_eq!(
            e.query("some $v in doc(\"doc.xml\")/a/v satisfies $v/text() > 4")
                .unwrap()
                .serialize(),
            "true"
        );
        assert_eq!(
            e.query("every $v in doc(\"doc.xml\")/a/v satisfies $v/text() > 4")
                .unwrap()
                .serialize(),
            "false"
        );
        assert_eq!(
            e.query("empty(doc(\"doc.xml\")/a/missing) and exists(doc(\"doc.xml\")/a/v)")
                .unwrap()
                .serialize(),
            "true"
        );
    }

    #[test]
    fn string_functions() {
        let mut e = engine_with("<a><d>pure gold ring</d></a>");
        assert_eq!(
            e.query("contains(string(doc(\"doc.xml\")/a/d), \"gold\")")
                .unwrap()
                .serialize(),
            "true"
        );
        assert_eq!(
            e.query("concat(\"a\", \"-\", \"b\")").unwrap().serialize(),
            "a-b"
        );
        assert_eq!(e.query("string-length(\"abcd\")").unwrap().serialize(), "4");
    }

    #[test]
    fn user_defined_functions() {
        let mut e = engine();
        let r = e
            .query("declare function local:twice($x) { 2 * $x }; local:twice(21)")
            .unwrap();
        assert_eq!(r.serialize(), "42");
    }

    #[test]
    fn report_counts_plan_operators() {
        let mut e = engine_with("<a><b/><b/></a>");
        let (_, report) = e
            .query_with_report("for $b in doc(\"doc.xml\")/a/b return <x>{$b}</x>")
            .unwrap();
        assert!(report.plan_operators >= 8);
        assert!(report.stats.ops_evaluated >= 8);
    }

    #[test]
    fn errors_are_reported() {
        let mut e = engine();
        assert!(matches!(e.query("for $x"), Err(Error::Parse(_))));
        assert!(matches!(e.query("$undefined"), Err(Error::Compile(_))));
        assert!(matches!(
            e.query("doc(\"missing.xml\")/a"),
            Err(Error::Exec(_))
        ));
    }

    #[test]
    fn errors_expose_a_source_chain() {
        use std::error::Error as StdError;
        let mut e = engine();
        let err = e.query("for $x").unwrap_err();
        let src = err.source().expect("parse errors carry a source");
        assert!(src.downcast_ref::<ParseError>().is_some());
        let err = e.query("$undefined").unwrap_err();
        assert!(err
            .source()
            .unwrap()
            .downcast_ref::<CompileError>()
            .is_some());
        let err = e.query("doc(\"nope.xml\")/a").unwrap_err();
        assert!(err.source().unwrap().downcast_ref::<ExecError>().is_some());
        // the chain works through a boxed dyn Error (anyhow-style `?` usage)
        fn boxed(e: &mut Session) -> Result<(), Box<dyn StdError>> {
            e.query("for $x")?;
            Ok(())
        }
        assert!(boxed(&mut e).is_err());
    }
}
