//! # mxq-xquery — a relational XQuery processor (the Pathfinder reproduction)
//!
//! This crate is the primary contribution of the MonetDB/XQuery reproduction:
//! an XQuery compiler and executor that represents XML documents and XQuery
//! item sequences *purely* as relational tables and evaluates queries with
//! relational algebra, exactly as described in the SIGMOD 2006 paper.
//!
//! The pipeline:
//!
//! 1. [`parser`] — XQuery text → AST ([`ast`]);
//! 2. [`compile`] — loop-lifting compilation into the relational algebra of
//!    [`algebra`], including join recognition (Section 4.1);
//! 3. [`exec`] — evaluation of the plan DAG over the column-store kernel
//!    (`mxq-engine`), the XML storage (`mxq-xmldb`) and the loop-lifted
//!    staircase join (`mxq-staircase`), with all optimizations of the paper
//!    individually switchable through [`ExecConfig`].
//!
//! # Quickstart
//!
//! ```
//! use mxq_xquery::XQueryEngine;
//!
//! let mut engine = XQueryEngine::new();
//! engine.load_document("books.xml",
//!     "<books><book year=\"2004\"><title>DB</title></book>\
//!      <book year=\"2006\"><title>XML</title></book></books>").unwrap();
//! let result = engine
//!     .execute("for $b in doc(\"books.xml\")/books/book where $b/@year >= 2005 \
//!               return $b/title/text()")
//!     .unwrap();
//! assert_eq!(result.serialize(), "XML");
//! ```

#![warn(missing_docs)]

pub mod algebra;
pub mod ast;
pub mod compile;
pub mod config;
pub mod exec;
pub mod parser;

use std::fmt;

use mxq_engine::Item;
use mxq_xmldb::{DocStore, ShredError};

pub use algebra::{Plan, PlanRef};
pub use compile::{CompileError, Compiler};
pub use config::{ExecConfig, ExecStats};
pub use exec::{serialize_items, ExecError, Executor};
pub use parser::{parse_expr, parse_query, ParseError};

/// Any error an [`XQueryEngine`] call can produce.
#[derive(Debug)]
pub enum Error {
    /// XML shredding failed.
    Shred(ShredError),
    /// Query parsing failed.
    Parse(ParseError),
    /// Compilation failed.
    Compile(CompileError),
    /// Execution failed.
    Exec(ExecError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Shred(e) => write!(f, "{e}"),
            Error::Parse(e) => write!(f, "{e}"),
            Error::Compile(e) => write!(f, "{e}"),
            Error::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ShredError> for Error {
    fn from(e: ShredError) -> Self {
        Error::Shred(e)
    }
}
impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}
impl From<CompileError> for Error {
    fn from(e: CompileError) -> Self {
        Error::Compile(e)
    }
}
impl From<ExecError> for Error {
    fn from(e: ExecError) -> Self {
        Error::Exec(e)
    }
}

/// The result of a query: the item sequence plus its XML/text serialization.
#[derive(Debug, Clone)]
pub struct QueryResult {
    items: Vec<Item>,
    serialized: String,
}

impl QueryResult {
    /// The result items in sequence order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items in the result sequence.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the result is the empty sequence.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// XML/text serialization of the result sequence.
    pub fn serialize(&self) -> &str {
        &self.serialized
    }
}

/// Diagnostics of one query execution: plan size and runtime counters.
#[derive(Debug, Clone, Default)]
pub struct QueryReport {
    /// Number of algebra operators in the compiled plan (the paper reports an
    /// average of 86 for XMark).
    pub plan_operators: usize,
    /// Runtime statistics.
    pub stats: ExecStats,
}

/// The public facade: a document store plus a configuration, able to parse,
/// compile and execute queries.
pub struct XQueryEngine {
    store: DocStore,
    config: ExecConfig,
}

impl Default for XQueryEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl XQueryEngine {
    /// Engine with the fully optimized default configuration.
    pub fn new() -> Self {
        Self::with_config(ExecConfig::default())
    }

    /// Engine with an explicit configuration (used by the ablation benches).
    pub fn with_config(config: ExecConfig) -> Self {
        XQueryEngine {
            store: DocStore::new(),
            config,
        }
    }

    /// Change the configuration (affects subsequent `execute` calls).
    pub fn set_config(&mut self, config: ExecConfig) {
        self.config = config;
    }

    /// The current configuration.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// Shred and load an XML document under the given name (the name is what
    /// `fn:doc("name")` refers to).
    pub fn load_document(&mut self, name: &str, xml: &str) -> Result<(), Error> {
        self.store.load_xml(name, xml)?;
        Ok(())
    }

    /// Load an already shredded document.
    pub fn load_shredded(&mut self, doc: mxq_xmldb::Document) {
        self.store.add_document(doc);
    }

    /// Access the underlying document store.
    pub fn store(&self) -> &DocStore {
        &self.store
    }

    /// Discard all nodes constructed by previous queries (benchmarks call
    /// this between runs so the transient container does not grow without
    /// bound).
    pub fn reset_transient(&mut self) {
        self.store.clear_transient();
    }

    /// Parse + compile a query and return the plan (for inspection, e.g.
    /// `plan.explain()` or `plan.operator_count()`).
    pub fn compile(&self, query: &str) -> Result<PlanRef, Error> {
        let parsed = parse_query(query)?;
        let plan = Compiler::new(self.config).compile_query(&parsed)?;
        Ok(plan)
    }

    /// Execute a query and return its result.
    pub fn execute(&mut self, query: &str) -> Result<QueryResult, Error> {
        self.execute_with_report(query).map(|(r, _)| r)
    }

    /// Execute a query, also returning plan/runtime diagnostics.
    pub fn execute_with_report(
        &mut self,
        query: &str,
    ) -> Result<(QueryResult, QueryReport), Error> {
        let parsed = parse_query(query)?;
        let plan = Compiler::new(self.config).compile_query(&parsed)?;
        let plan_operators = plan.operator_count();
        let mut executor = Executor::new(&mut self.store, self.config);
        let items = executor.eval_result(&plan)?;
        let stats = executor.stats;
        let serialized = serialize_items(&self.store, &items);
        Ok((
            QueryResult { items, serialized },
            QueryReport {
                plan_operators,
                stats,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with(xml: &str) -> XQueryEngine {
        let mut e = XQueryEngine::new();
        e.load_document("doc.xml", xml).unwrap();
        e
    }

    #[test]
    fn constant_and_arithmetic_queries() {
        let mut e = XQueryEngine::new();
        assert_eq!(e.execute("1 + 2 * 3").unwrap().serialize(), "7");
        assert_eq!(e.execute("(1, 2, 3)").unwrap().serialize(), "1 2 3");
        assert_eq!(e.execute("10 div 4").unwrap().serialize(), "2.5");
        assert_eq!(e.execute("7 mod 2").unwrap().serialize(), "1");
        assert_eq!(e.execute("\"a\"").unwrap().serialize(), "a");
    }

    #[test]
    fn flwor_with_conditional_matches_paper_example() {
        // the running example of Section 2.1
        let mut e = XQueryEngine::new();
        let r = e
            .execute("for $v in (3, 4, 5, 6) return if ($v mod 2 = 0) then \"even\" else \"odd\"")
            .unwrap();
        assert_eq!(r.serialize(), "odd even odd even");
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn path_steps_and_predicates() {
        let mut e = engine_with(
            "<site><people><person id=\"p0\"><name>Ann</name></person>\
             <person id=\"p1\"><name>Bob</name></person></people></site>",
        );
        let r = e
            .execute(
                "for $p in doc(\"doc.xml\")/site/people/person[@id = \"p1\"] return $p/name/text()",
            )
            .unwrap();
        assert_eq!(r.serialize(), "Bob");
        let r = e.execute("count(doc(\"doc.xml\")//person)").unwrap();
        assert_eq!(r.serialize(), "2");
        let r = e
            .execute("doc(\"doc.xml\")/site/people/person[2]/name/text()")
            .unwrap();
        assert_eq!(r.serialize(), "Bob");
        let r = e
            .execute("doc(\"doc.xml\")/site/people/person[last()]/@id")
            .unwrap();
        assert_eq!(r.serialize(), "p1");
    }

    #[test]
    fn element_construction_and_nesting() {
        let mut e = engine_with("<a><b>x</b><b>y</b></a>");
        let r = e
            .execute(
                "for $b in doc(\"doc.xml\")/a/b return <item n=\"{$b/text()}\">{$b/text()}</item>",
            )
            .unwrap();
        assert_eq!(
            r.serialize(),
            "<item n=\"x\">x</item><item n=\"y\">y</item>"
        );
    }

    #[test]
    fn aggregates_and_let() {
        let mut e = engine_with("<a><v>1</v><v>2</v><v>3</v></a>");
        let r = e
            .execute("let $vs := doc(\"doc.xml\")/a/v return sum($vs) + count($vs)")
            .unwrap();
        assert_eq!(r.serialize(), "9");
        let r = e.execute("avg(doc(\"doc.xml\")/a/v/text())").unwrap();
        assert_eq!(r.serialize(), "2");
    }

    #[test]
    fn where_clause_join_queries_match_under_all_configs() {
        let xml = "<db><people><p id=\"1\"/><p id=\"2\"/><p id=\"3\"/></people>\
                   <orders><o buyer=\"1\"/><o buyer=\"1\"/><o buyer=\"3\"/></orders></db>";
        let q = "for $p in doc(\"doc.xml\")/db/people/p \
                 return <r id=\"{$p/@id}\">{count(for $o in doc(\"doc.xml\")/db/orders/o \
                                                  where $o/@buyer = $p/@id return $o)}</r>";
        let mut with = XQueryEngine::new();
        with.load_document("doc.xml", xml).unwrap();
        let mut without = XQueryEngine::with_config(ExecConfig {
            join_recognition: false,
            ..ExecConfig::default()
        });
        without.load_document("doc.xml", xml).unwrap();
        let a = with.execute(q).unwrap();
        let b = without.execute(q).unwrap();
        assert_eq!(a.serialize(), b.serialize());
        assert_eq!(
            a.serialize(),
            "<r id=\"1\">2</r><r id=\"2\">0</r><r id=\"3\">1</r>"
        );
    }

    #[test]
    fn order_by_sorts_results() {
        let mut e = engine_with("<a><i k=\"3\">c</i><i k=\"1\">a</i><i k=\"2\">b</i></a>");
        let r = e
            .execute("for $i in doc(\"doc.xml\")/a/i order by $i/@k return $i/text()")
            .unwrap();
        assert_eq!(r.serialize(), "abc");
        let r = e
            .execute("for $i in doc(\"doc.xml\")/a/i order by $i/@k descending return $i/text()")
            .unwrap();
        assert_eq!(r.serialize(), "cba");
    }

    #[test]
    fn quantified_and_logical() {
        let mut e = engine_with("<a><v>1</v><v>5</v></a>");
        assert_eq!(
            e.execute("some $v in doc(\"doc.xml\")/a/v satisfies $v/text() > 4")
                .unwrap()
                .serialize(),
            "true"
        );
        assert_eq!(
            e.execute("every $v in doc(\"doc.xml\")/a/v satisfies $v/text() > 4")
                .unwrap()
                .serialize(),
            "false"
        );
        assert_eq!(
            e.execute("empty(doc(\"doc.xml\")/a/missing) and exists(doc(\"doc.xml\")/a/v)")
                .unwrap()
                .serialize(),
            "true"
        );
    }

    #[test]
    fn string_functions() {
        let mut e = engine_with("<a><d>pure gold ring</d></a>");
        assert_eq!(
            e.execute("contains(string(doc(\"doc.xml\")/a/d), \"gold\")")
                .unwrap()
                .serialize(),
            "true"
        );
        assert_eq!(
            e.execute("concat(\"a\", \"-\", \"b\")")
                .unwrap()
                .serialize(),
            "a-b"
        );
        assert_eq!(
            e.execute("string-length(\"abcd\")").unwrap().serialize(),
            "4"
        );
    }

    #[test]
    fn user_defined_functions() {
        let mut e = XQueryEngine::new();
        let r = e
            .execute("declare function local:twice($x) { 2 * $x }; local:twice(21)")
            .unwrap();
        assert_eq!(r.serialize(), "42");
    }

    #[test]
    fn report_counts_plan_operators() {
        let mut e = engine_with("<a><b/><b/></a>");
        let (_, report) = e
            .execute_with_report("for $b in doc(\"doc.xml\")/a/b return <x>{$b}</x>")
            .unwrap();
        assert!(report.plan_operators >= 8);
        assert!(report.stats.ops_evaluated >= 8);
    }

    #[test]
    fn errors_are_reported() {
        let mut e = XQueryEngine::new();
        assert!(matches!(e.execute("for $x"), Err(Error::Parse(_))));
        assert!(matches!(e.execute("$undefined"), Err(Error::Compile(_))));
        assert!(matches!(
            e.execute("doc(\"missing.xml\")/a"),
            Err(Error::Exec(_))
        ));
    }
}
