//! # mxq-xquery — a relational XQuery processor (the Pathfinder reproduction)
//!
//! This crate is the primary contribution of the MonetDB/XQuery reproduction:
//! an XQuery compiler and executor that represents XML documents and XQuery
//! item sequences *purely* as relational tables and evaluates queries with
//! relational algebra, exactly as described in the SIGMOD 2006 paper.
//!
//! The pipeline:
//!
//! 1. [`parser`] — XQuery text → AST ([`ast`]);
//! 2. [`compile`] — loop-lifting compilation into the relational algebra of
//!    [`algebra`], including join recognition (Section 4.1);
//! 3. [`exec`] — evaluation of the plan DAG over the column-store kernel
//!    (`mxq-engine`), the XML storage (`mxq-xmldb`) and the loop-lifted
//!    staircase join (`mxq-staircase`), with all optimizations of the paper
//!    individually switchable through [`ExecConfig`].
//!
//! # Quickstart
//!
//! ```
//! use mxq_xquery::XQueryEngine;
//!
//! let mut engine = XQueryEngine::new();
//! engine.load_document("books.xml",
//!     "<books><book year=\"2004\"><title>DB</title></book>\
//!      <book year=\"2006\"><title>XML</title></book></books>").unwrap();
//! let result = engine
//!     .execute("for $b in doc(\"books.xml\")/books/book where $b/@year >= 2005 \
//!               return $b/title/text()")
//!     .unwrap();
//! assert_eq!(result.serialize(), "XML");
//! ```

#![warn(missing_docs)]

pub mod algebra;
pub mod ast;
pub mod compile;
pub mod config;
pub mod exec;
pub mod parser;
pub mod pul;

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use mxq_engine::{Item, NodeId};
use mxq_xmldb::{
    DocStore, DocumentBuilder, DocumentColumns, NodeKind, PagedDocument, ShredError, UpdateStats,
    TRANSIENT_FRAG,
};

pub use algebra::{Plan, PlanRef};
pub use compile::{CompileError, Compiler};
pub use config::{ExecConfig, ExecStats};
pub use exec::{serialize_items, ExecError, Executor};
pub use parser::{parse_expr, parse_query, parse_update, ParseError};
pub use pul::{PendingUpdateList, PulError, UpdateKind, UpdatePlan, UpdatePrimitive};

/// Any error an [`XQueryEngine`] call can produce.
#[derive(Debug)]
pub enum Error {
    /// XML shredding failed.
    Shred(ShredError),
    /// Query parsing failed.
    Parse(ParseError),
    /// Compilation failed.
    Compile(CompileError),
    /// Execution failed.
    Exec(ExecError),
    /// Collecting or checking a pending update list failed.
    Update(PulError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Shred(e) => write!(f, "{e}"),
            Error::Parse(e) => write!(f, "{e}"),
            Error::Compile(e) => write!(f, "{e}"),
            Error::Exec(e) => write!(f, "{e}"),
            Error::Update(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ShredError> for Error {
    fn from(e: ShredError) -> Self {
        Error::Shred(e)
    }
}
impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}
impl From<CompileError> for Error {
    fn from(e: CompileError) -> Self {
        Error::Compile(e)
    }
}
impl From<ExecError> for Error {
    fn from(e: ExecError) -> Self {
        Error::Exec(e)
    }
}
impl From<PulError> for Error {
    fn from(e: PulError) -> Self {
        Error::Update(e)
    }
}

/// The result of a query: the item sequence plus its XML/text serialization.
#[derive(Debug, Clone)]
pub struct QueryResult {
    items: Vec<Item>,
    serialized: String,
}

impl QueryResult {
    /// The result items in sequence order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items in the result sequence.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the result is the empty sequence.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// XML/text serialization of the result sequence.
    pub fn serialize(&self) -> &str {
        &self.serialized
    }
}

/// Diagnostics of one query execution: plan size and runtime counters.
#[derive(Debug, Clone, Default)]
pub struct QueryReport {
    /// Number of algebra operators in the compiled plan (the paper reports an
    /// average of 86 for XMark).
    pub plan_operators: usize,
    /// Runtime statistics.
    pub stats: ExecStats,
}

/// Diagnostics of one update execution.
#[derive(Debug, Clone, Default)]
pub struct UpdateReport {
    /// Number of updating statements in the executed text.
    pub statements: usize,
    /// Number of update primitives applied (after delete deduplication).
    pub primitives: usize,
    /// Number of distinct documents mutated.
    pub documents_touched: usize,
    /// Storage-level cost counters accumulated over the touched documents.
    pub stats: UpdateStats,
}

/// Default logical page size for the paged update scheme.
pub const DEFAULT_PAGE_SIZE: usize = 64;
/// Default page fill factor (percent) for the paged update scheme.
pub const DEFAULT_FILL_PERCENT: u8 = 75;

/// The public facade: a document store plus a configuration, able to parse,
/// compile and execute queries — and, through [`XQueryEngine::execute_update`],
/// XQuery Update Facility statements over the paged storage scheme.
pub struct XQueryEngine {
    store: DocStore,
    config: ExecConfig,
    /// Paged (updatable) representation per mutated fragment — the source of
    /// truth once a document has been updated.
    paged: HashMap<u32, PagedDocument>,
    /// Fragments whose paged state is newer than the read-only container in
    /// `store` (re-materialized lazily before the next query).
    dirty: HashSet<u32>,
    /// Cached relational exports, invalidated when their document mutates.
    columns: HashMap<u32, Arc<DocumentColumns>>,
    page_size: usize,
    fill_percent: u8,
}

impl Default for XQueryEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl XQueryEngine {
    /// Engine with the fully optimized default configuration.
    pub fn new() -> Self {
        Self::with_config(ExecConfig::default())
    }

    /// Engine with an explicit configuration (used by the ablation benches).
    pub fn with_config(config: ExecConfig) -> Self {
        XQueryEngine {
            store: DocStore::new(),
            config,
            paged: HashMap::new(),
            dirty: HashSet::new(),
            columns: HashMap::new(),
            page_size: DEFAULT_PAGE_SIZE,
            fill_percent: DEFAULT_FILL_PERCENT,
        }
    }

    /// Change the configuration (affects subsequent `execute` calls).
    pub fn set_config(&mut self, config: ExecConfig) {
        self.config = config;
    }

    /// The current configuration.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// Shred and load an XML document under the given name (the name is what
    /// `fn:doc("name")` refers to).
    pub fn load_document(&mut self, name: &str, xml: &str) -> Result<(), Error> {
        self.store.load_xml(name, xml)?;
        Ok(())
    }

    /// Load an already shredded document.
    pub fn load_shredded(&mut self, doc: mxq_xmldb::Document) {
        self.store.add_document(doc);
    }

    /// Access the underlying document store.
    pub fn store(&self) -> &DocStore {
        &self.store
    }

    /// Discard all nodes constructed by previous queries (benchmarks call
    /// this between runs so the transient container does not grow without
    /// bound).
    pub fn reset_transient(&mut self) {
        self.store.clear_transient();
    }

    /// Parse + compile a query and return the plan (for inspection, e.g.
    /// `plan.explain()` or `plan.operator_count()`).
    pub fn compile(&self, query: &str) -> Result<PlanRef, Error> {
        let parsed = parse_query(query)?;
        let plan = Compiler::new(self.config).compile_query(&parsed)?;
        Ok(plan)
    }

    /// Execute a query and return its result.
    pub fn execute(&mut self, query: &str) -> Result<QueryResult, Error> {
        self.execute_with_report(query).map(|(r, _)| r)
    }

    /// Tune the paged update scheme (logical page size in tuples, fill
    /// factor in percent).  Affects documents paged after the call.
    ///
    /// # Panics
    /// Panics unless `page_size` is a power of two ≥ 2 and
    /// `fill_percent ∈ (0, 100]`.
    pub fn set_page_policy(&mut self, page_size: usize, fill_percent: u8) {
        assert!(
            page_size.is_power_of_two() && page_size >= 2,
            "page_size must be a power of two >= 2"
        );
        assert!(
            (1..=100).contains(&fill_percent),
            "fill_percent must be in 1..=100"
        );
        self.page_size = page_size;
        self.fill_percent = fill_percent;
    }

    /// Re-materialize every updated document into the read-only store so
    /// subsequent queries observe the post-update state.  Called implicitly
    /// by `execute*`, `execute_update` and `document_columns`; only needed
    /// directly when inspecting [`XQueryEngine::store`] after an update.
    pub fn sync(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let frags: Vec<u32> = self.dirty.drain().collect();
        for frag in frags {
            let doc = self.paged[&frag].to_document();
            self.store.replace_document(frag, doc);
        }
    }

    /// The cached relational export ([`DocumentColumns`]) of a loaded
    /// document, recomputed — dictionaries included — after every update
    /// that touches the document.  Returns `None` for unknown names.
    pub fn document_columns(&mut self, name: &str) -> Option<Arc<DocumentColumns>> {
        self.sync();
        let frag = self.store.lookup(name)?;
        Some(
            self.columns
                .entry(frag)
                .or_insert_with(|| Arc::new(DocumentColumns::new(self.store.container(frag))))
                .clone(),
        )
    }

    /// Execute one or more comma-separated XQuery Update Facility statements.
    ///
    /// All target and source expressions are evaluated first, against the
    /// unchanged store (snapshot isolation); the collected pending update
    /// list is conflict-checked and then applied atomically to the paged
    /// representation of every touched document.  Queries issued afterwards
    /// observe the post-update state.
    pub fn execute_update(&mut self, text: &str) -> Result<UpdateReport, Error> {
        let parsed = parse_update(text)?;
        let mut compiler = Compiler::new(self.config);
        let uplan = compiler.compile_update(&parsed)?;
        self.sync();

        // phase 1: snapshot evaluation of every statement's plans
        struct Evaled {
            kind: UpdateKind,
            targets: Vec<Item>,
            attr: Option<String>,
            source: Option<Vec<Item>>,
        }
        let mut evaled = Vec::with_capacity(uplan.statements.len());
        {
            let mut exec = Executor::new(&mut self.store, self.config);
            for stmt in &uplan.statements {
                let (targets, attr) = match &stmt.target {
                    pul::UpdateTarget::Nodes(p) => (exec.eval_result(p)?, None),
                    pul::UpdateTarget::Attribute { elem, name } => {
                        (exec.eval_result(elem)?, Some(name.clone()))
                    }
                };
                let source = match &stmt.source {
                    Some(p) => Some(exec.eval_result(p)?),
                    None => None,
                };
                evaled.push(Evaled {
                    kind: stmt.kind,
                    targets,
                    attr,
                    source,
                });
            }
        }

        // phase 2: build the pending update list (validation + conflicts)
        let mut pul = PendingUpdateList::new();
        let collected: Result<(), Error> = (|| {
            for ev in &evaled {
                self.collect_primitives(
                    ev.kind,
                    &ev.targets,
                    ev.attr.as_deref(),
                    &ev.source,
                    &mut pul,
                )?;
            }
            Ok(())
        })();
        // content has been copied into the primitives' own fragments; nodes
        // constructed while evaluating the sources are no longer referenced.
        // Cleared on the error path too, or failed updates would leak their
        // constructed source nodes into the transient container.
        self.store.clear_transient();
        collected?;

        // phase 3: atomic application to the paged scheme
        let frags = pul.fragments();
        let mut applied = 0;
        let mut stats = UpdateStats::default();
        for &frag in &frags {
            let paged = self.paged.entry(frag).or_insert_with(|| {
                PagedDocument::from_document(
                    self.store.container(frag),
                    self.page_size,
                    self.fill_percent,
                )
            });
            let before = paged.stats;
            applied += pul.apply_to(frag, paged);
            stats.accumulate(&paged.stats.delta_since(&before));
            self.dirty.insert(frag);
            self.columns.remove(&frag);
        }
        Ok(UpdateReport {
            statements: uplan.statements.len(),
            primitives: applied,
            documents_touched: frags.len(),
            stats,
        })
    }

    /// Turn one evaluated statement into update primitives.
    fn collect_primitives(
        &self,
        kind: UpdateKind,
        targets: &[Item],
        attr: Option<&str>,
        source: &Option<Vec<Item>>,
        pul: &mut PendingUpdateList,
    ) -> Result<(), Error> {
        // attribute-addressed statements (delete/replace value/rename @name)
        if let Some(name) = attr {
            match kind {
                // `delete nodes …/@name` accepts any number of owning
                // elements (bulk attribute strip); a missing attribute is an
                // empty target and deletes nothing
                UpdateKind::Delete => {
                    for item in targets {
                        let elem = self.node_target(item, "attribute delete")?;
                        self.require_kind(elem, &[NodeKind::Element], "attribute owner")?;
                        pul.add(UpdatePrimitive::RemoveAttribute {
                            elem,
                            name: name.to_string(),
                        })?;
                    }
                }
                // `replace value of node …/@name` upserts: when the
                // attribute is missing it is created.  This is a deliberate
                // extension — the subset has no computed attribute
                // constructors, so this is its attribute-insertion form.
                UpdateKind::ReplaceValue => {
                    let elem = self.single_node(targets, "replace value of attribute")?;
                    self.require_kind(elem, &[NodeKind::Element], "attribute owner")?;
                    pul.add(UpdatePrimitive::SetAttribute {
                        elem,
                        name: name.to_string(),
                        value: self.source_string(source),
                    })?;
                }
                UpdateKind::Rename => {
                    let elem = self.single_node(targets, "rename attribute")?;
                    self.require_kind(elem, &[NodeKind::Element], "attribute owner")?;
                    // renaming a non-existent attribute is an empty target
                    if self
                        .store
                        .container(elem.frag)
                        .attribute(elem.pre, name)
                        .is_none()
                    {
                        return Err(PulError::ExactlyOne {
                            what: "rename attribute",
                            got: 0,
                        }
                        .into());
                    }
                    let new_name = self.source_string(source);
                    if !pul::valid_qname(&new_name) {
                        return Err(PulError::InvalidName(new_name).into());
                    }
                    pul.add(UpdatePrimitive::RenameAttribute {
                        elem,
                        name: name.to_string(),
                        new_name,
                    })?;
                }
                _ => unreachable!("compiler rejects other attribute-target kinds"),
            }
            return Ok(());
        }

        match kind {
            UpdateKind::InsertInto { first } => {
                let parent = self.single_node(targets, "insert into")?;
                self.require_kind(
                    parent,
                    &[NodeKind::Element, NodeKind::Document],
                    "insert target",
                )?;
                let content = self.materialize_content(source.as_deref().unwrap_or(&[]));
                if !content.is_empty() {
                    pul.add(UpdatePrimitive::InsertInto {
                        parent,
                        first,
                        content,
                    })?;
                }
            }
            UpdateKind::InsertBefore | UpdateKind::InsertAfter => {
                let target = self.single_node(targets, "insert before/after")?;
                self.require_non_root(target)?;
                let content = self.materialize_content(source.as_deref().unwrap_or(&[]));
                if !content.is_empty() {
                    pul.add(if kind == UpdateKind::InsertBefore {
                        UpdatePrimitive::InsertBefore { target, content }
                    } else {
                        UpdatePrimitive::InsertAfter { target, content }
                    })?;
                }
            }
            UpdateKind::Delete => {
                for item in targets {
                    let target = self.node_target(item, "delete")?;
                    self.require_non_root(target)?;
                    pul.add(UpdatePrimitive::Delete { target })?;
                }
            }
            UpdateKind::ReplaceNode => {
                let target = self.single_node(targets, "replace node")?;
                self.require_non_root(target)?;
                let content = self.materialize_content(source.as_deref().unwrap_or(&[]));
                pul.add(UpdatePrimitive::ReplaceNode { target, content })?;
            }
            UpdateKind::ReplaceValue => {
                let target = self.single_node(targets, "replace value of node")?;
                pul.add(UpdatePrimitive::ReplaceValue {
                    target,
                    value: self.source_string(source),
                })?;
            }
            UpdateKind::Rename => {
                let target = self.single_node(targets, "rename node")?;
                self.require_kind(
                    target,
                    &[NodeKind::Element, NodeKind::ProcessingInstruction],
                    "rename target",
                )?;
                let name = self.source_string(source);
                if !pul::valid_qname(&name) {
                    return Err(PulError::InvalidName(name).into());
                }
                pul.add(UpdatePrimitive::Rename { target, name })?;
            }
        }
        Ok(())
    }

    fn node_target(&self, item: &Item, what: &'static str) -> Result<NodeId, Error> {
        let node = item.as_node().ok_or(PulError::NotANode(what))?;
        if node.frag == TRANSIENT_FRAG {
            return Err(PulError::TransientTarget.into());
        }
        Ok(node)
    }

    fn single_node(&self, targets: &[Item], what: &'static str) -> Result<NodeId, Error> {
        if targets.len() != 1 {
            return Err(PulError::ExactlyOne {
                what,
                got: targets.len(),
            }
            .into());
        }
        self.node_target(&targets[0], what)
    }

    fn require_kind(&self, node: NodeId, kinds: &[NodeKind], what: &str) -> Result<(), Error> {
        let kind = self.store.container(node.frag).kind(node.pre);
        if kinds.contains(&kind) {
            Ok(())
        } else {
            Err(PulError::WrongTargetKind(format!("{what} has node kind {kind:?}")).into())
        }
    }

    /// Structural updates must keep the document rooted: fragment roots
    /// (document nodes / root elements at level 0) cannot be deleted,
    /// replaced or given siblings.
    fn require_non_root(&self, node: NodeId) -> Result<(), Error> {
        if self.store.container(node.frag).level(node.pre) == 0 {
            return Err(PulError::TargetIsRoot.into());
        }
        Ok(())
    }

    /// Copy an evaluated content sequence into a private fragment document:
    /// node items are deep-copied (XQUF inserts copies), adjacent atomics
    /// merge into space-separated text nodes, and document nodes contribute
    /// their children.
    fn materialize_content(&self, items: &[Item]) -> mxq_xmldb::Document {
        let mut b = DocumentBuilder::new("#update-content");
        let mut pending_text = String::new();
        for item in items {
            match item {
                Item::Node(n) => {
                    if !pending_text.is_empty() {
                        b.text(&pending_text);
                        pending_text.clear();
                    }
                    let src = self.store.container(n.frag);
                    if src.kind(n.pre) == NodeKind::Document {
                        for child in src.children(n.pre) {
                            b.copy_subtree(src, child);
                        }
                    } else {
                        b.copy_subtree(src, n.pre);
                    }
                }
                atomic => {
                    if !pending_text.is_empty() {
                        pending_text.push(' ');
                    }
                    pending_text.push_str(&atomic.string_value());
                }
            }
        }
        if !pending_text.is_empty() {
            b.text(&pending_text);
        }
        b.finish()
    }

    /// The string value of a source sequence (for `replace value of` and
    /// `rename`): item string values joined by single spaces.
    fn source_string(&self, source: &Option<Vec<Item>>) -> String {
        let Some(items) = source else {
            return String::new();
        };
        items
            .iter()
            .map(|i| match i {
                Item::Node(n) => self.store.string_value(*n),
                atomic => atomic.string_value(),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Execute a query, also returning plan/runtime diagnostics.
    pub fn execute_with_report(
        &mut self,
        query: &str,
    ) -> Result<(QueryResult, QueryReport), Error> {
        self.sync();
        let parsed = parse_query(query)?;
        let plan = Compiler::new(self.config).compile_query(&parsed)?;
        let plan_operators = plan.operator_count();
        let mut executor = Executor::new(&mut self.store, self.config);
        let items = executor.eval_result(&plan)?;
        let stats = executor.stats;
        let serialized = serialize_items(&self.store, &items);
        Ok((
            QueryResult { items, serialized },
            QueryReport {
                plan_operators,
                stats,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with(xml: &str) -> XQueryEngine {
        let mut e = XQueryEngine::new();
        e.load_document("doc.xml", xml).unwrap();
        e
    }

    #[test]
    fn constant_and_arithmetic_queries() {
        let mut e = XQueryEngine::new();
        assert_eq!(e.execute("1 + 2 * 3").unwrap().serialize(), "7");
        assert_eq!(e.execute("(1, 2, 3)").unwrap().serialize(), "1 2 3");
        assert_eq!(e.execute("10 div 4").unwrap().serialize(), "2.5");
        assert_eq!(e.execute("7 mod 2").unwrap().serialize(), "1");
        assert_eq!(e.execute("\"a\"").unwrap().serialize(), "a");
    }

    #[test]
    fn flwor_with_conditional_matches_paper_example() {
        // the running example of Section 2.1
        let mut e = XQueryEngine::new();
        let r = e
            .execute("for $v in (3, 4, 5, 6) return if ($v mod 2 = 0) then \"even\" else \"odd\"")
            .unwrap();
        assert_eq!(r.serialize(), "odd even odd even");
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn path_steps_and_predicates() {
        let mut e = engine_with(
            "<site><people><person id=\"p0\"><name>Ann</name></person>\
             <person id=\"p1\"><name>Bob</name></person></people></site>",
        );
        let r = e
            .execute(
                "for $p in doc(\"doc.xml\")/site/people/person[@id = \"p1\"] return $p/name/text()",
            )
            .unwrap();
        assert_eq!(r.serialize(), "Bob");
        let r = e.execute("count(doc(\"doc.xml\")//person)").unwrap();
        assert_eq!(r.serialize(), "2");
        let r = e
            .execute("doc(\"doc.xml\")/site/people/person[2]/name/text()")
            .unwrap();
        assert_eq!(r.serialize(), "Bob");
        let r = e
            .execute("doc(\"doc.xml\")/site/people/person[last()]/@id")
            .unwrap();
        assert_eq!(r.serialize(), "p1");
    }

    #[test]
    fn element_construction_and_nesting() {
        let mut e = engine_with("<a><b>x</b><b>y</b></a>");
        let r = e
            .execute(
                "for $b in doc(\"doc.xml\")/a/b return <item n=\"{$b/text()}\">{$b/text()}</item>",
            )
            .unwrap();
        assert_eq!(
            r.serialize(),
            "<item n=\"x\">x</item><item n=\"y\">y</item>"
        );
    }

    #[test]
    fn aggregates_and_let() {
        let mut e = engine_with("<a><v>1</v><v>2</v><v>3</v></a>");
        let r = e
            .execute("let $vs := doc(\"doc.xml\")/a/v return sum($vs) + count($vs)")
            .unwrap();
        assert_eq!(r.serialize(), "9");
        let r = e.execute("avg(doc(\"doc.xml\")/a/v/text())").unwrap();
        assert_eq!(r.serialize(), "2");
    }

    #[test]
    fn where_clause_join_queries_match_under_all_configs() {
        let xml = "<db><people><p id=\"1\"/><p id=\"2\"/><p id=\"3\"/></people>\
                   <orders><o buyer=\"1\"/><o buyer=\"1\"/><o buyer=\"3\"/></orders></db>";
        let q = "for $p in doc(\"doc.xml\")/db/people/p \
                 return <r id=\"{$p/@id}\">{count(for $o in doc(\"doc.xml\")/db/orders/o \
                                                  where $o/@buyer = $p/@id return $o)}</r>";
        let mut with = XQueryEngine::new();
        with.load_document("doc.xml", xml).unwrap();
        let mut without = XQueryEngine::with_config(ExecConfig {
            join_recognition: false,
            ..ExecConfig::default()
        });
        without.load_document("doc.xml", xml).unwrap();
        let a = with.execute(q).unwrap();
        let b = without.execute(q).unwrap();
        assert_eq!(a.serialize(), b.serialize());
        assert_eq!(
            a.serialize(),
            "<r id=\"1\">2</r><r id=\"2\">0</r><r id=\"3\">1</r>"
        );
    }

    #[test]
    fn order_by_sorts_results() {
        let mut e = engine_with("<a><i k=\"3\">c</i><i k=\"1\">a</i><i k=\"2\">b</i></a>");
        let r = e
            .execute("for $i in doc(\"doc.xml\")/a/i order by $i/@k return $i/text()")
            .unwrap();
        assert_eq!(r.serialize(), "abc");
        let r = e
            .execute("for $i in doc(\"doc.xml\")/a/i order by $i/@k descending return $i/text()")
            .unwrap();
        assert_eq!(r.serialize(), "cba");
    }

    #[test]
    fn quantified_and_logical() {
        let mut e = engine_with("<a><v>1</v><v>5</v></a>");
        assert_eq!(
            e.execute("some $v in doc(\"doc.xml\")/a/v satisfies $v/text() > 4")
                .unwrap()
                .serialize(),
            "true"
        );
        assert_eq!(
            e.execute("every $v in doc(\"doc.xml\")/a/v satisfies $v/text() > 4")
                .unwrap()
                .serialize(),
            "false"
        );
        assert_eq!(
            e.execute("empty(doc(\"doc.xml\")/a/missing) and exists(doc(\"doc.xml\")/a/v)")
                .unwrap()
                .serialize(),
            "true"
        );
    }

    #[test]
    fn string_functions() {
        let mut e = engine_with("<a><d>pure gold ring</d></a>");
        assert_eq!(
            e.execute("contains(string(doc(\"doc.xml\")/a/d), \"gold\")")
                .unwrap()
                .serialize(),
            "true"
        );
        assert_eq!(
            e.execute("concat(\"a\", \"-\", \"b\")")
                .unwrap()
                .serialize(),
            "a-b"
        );
        assert_eq!(
            e.execute("string-length(\"abcd\")").unwrap().serialize(),
            "4"
        );
    }

    #[test]
    fn user_defined_functions() {
        let mut e = XQueryEngine::new();
        let r = e
            .execute("declare function local:twice($x) { 2 * $x }; local:twice(21)")
            .unwrap();
        assert_eq!(r.serialize(), "42");
    }

    #[test]
    fn report_counts_plan_operators() {
        let mut e = engine_with("<a><b/><b/></a>");
        let (_, report) = e
            .execute_with_report("for $b in doc(\"doc.xml\")/a/b return <x>{$b}</x>")
            .unwrap();
        assert!(report.plan_operators >= 8);
        assert!(report.stats.ops_evaluated >= 8);
    }

    #[test]
    fn errors_are_reported() {
        let mut e = XQueryEngine::new();
        assert!(matches!(e.execute("for $x"), Err(Error::Parse(_))));
        assert!(matches!(e.execute("$undefined"), Err(Error::Compile(_))));
        assert!(matches!(
            e.execute("doc(\"missing.xml\")/a"),
            Err(Error::Exec(_))
        ));
    }
}
