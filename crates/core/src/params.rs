//! External-variable bindings for prepared statements.
//!
//! A query whose prolog declares `declare variable $x external;` is compiled
//! once with the variable left symbolic ([`crate::algebra::Op::ExternalVar`])
//! and executed many times with different values supplied through a
//! [`Params`] set — the compile-once/execute-many split MonetDB/XQuery's
//! server mode relies on.

use std::collections::HashMap;

use mxq_engine::Item;

/// A set of external-variable bindings, mapping variable names (without the
/// leading `$`) to XQuery item sequences.
///
/// Scalars bind through anything convertible to an [`Item`]
/// (`i64`, `f64`, `bool`, `&str`, `String`, …); whole sequences bind through
/// [`Params::set_seq`].
#[derive(Debug, Clone, Default)]
pub struct Params {
    map: HashMap<String, Vec<Item>>,
}

impl Params {
    /// An empty binding set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a variable to a single item, replacing any previous binding.
    /// Returns `&mut self` for chaining.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Item>) -> &mut Self {
        self.map.insert(name.into(), vec![value.into()]);
        self
    }

    /// Bind a variable to an item sequence (possibly empty), replacing any
    /// previous binding.
    pub fn set_seq(&mut self, name: impl Into<String>, values: Vec<Item>) -> &mut Self {
        self.map.insert(name.into(), values);
        self
    }

    /// The bound sequence for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&[Item]> {
        self.map.get(name).map(|v| v.as_slice())
    }

    /// True if `name` is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over the bound (name, sequence) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Item])> {
        self.map.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut p = Params::new();
        p.set("x", 42).set("name", "person0").set("flag", true);
        p.set_seq("seq", vec![Item::Int(1), Item::Int(2)]);
        assert_eq!(p.get("x"), Some(&[Item::Int(42)][..]));
        assert_eq!(p.get("seq").map(|s| s.len()), Some(2));
        assert!(p.contains("flag"));
        assert!(!p.contains("missing"));
        assert_eq!(p.len(), 4);
        // rebinding replaces
        p.set("x", 7);
        assert_eq!(p.get("x"), Some(&[Item::Int(7)][..]));
        assert_eq!(p.len(), 4);
    }
}
